//! Exact event-driven (Gillespie / SSA) simulation of the rumor process.
//!
//! Unlike the synchronous ABM, the SSA introduces no time-discretization
//! error: waiting times are exponential and exactly one event fires at a
//! time. Per-node event rates are kept in a Fenwick (binary indexed)
//! tree so sampling and updating are `O(log n)` per event.
//!
//! Per-node rates:
//!
//! * susceptible `u`: immunization `ε1` plus infection
//!   `λ(k_u)·(1/k_u)·Σ_{v ∈ N(u), infected} ω(k_v)/k_v`
//!   (the exact per-node form of the mean-field hazard `λ(k_u)Θ`);
//! * infected `u`: blocking `ε2`;
//! * each degree class `c` with recovered nodes: demographic recycling
//!   R→S at the class-level rate `α·size_c` (a uniformly random
//!   recovered node of the class flips), matching the mean-field
//!   conserving convention.

use crate::abm::{build_tables, seed_states, AbmConfig};
use crate::{NodeState, Result, SimError, SimTrajectory};
use rand::Rng;
use rumor_core::params::ModelParams;
use rumor_net::graph::Graph;

/// Fenwick tree over non-negative per-node rates, supporting point
/// updates and sampling an index proportionally to its rate.
#[derive(Debug, Clone)]
pub(crate) struct RateTree {
    tree: Vec<f64>,
    rates: Vec<f64>,
}

impl RateTree {
    pub fn new(n: usize) -> Self {
        RateTree {
            tree: vec![0.0; n + 1],
            rates: vec![0.0; n],
        }
    }

    pub fn total(&self) -> f64 {
        self.prefix(self.rates.len())
    }

    #[cfg(test)]
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// Sets node `i`'s rate to `r >= 0`.
    pub fn set(&mut self, i: usize, r: f64) {
        let delta = r - self.rates[i];
        if delta == 0.0 {
            return;
        }
        self.rates[i] = r;
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> f64 {
        let mut s = 0.0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Samples an index with probability proportional to its rate;
    /// `target` must lie in `[0, total())`.
    pub fn sample(&self, target: f64) -> usize {
        let n = self.rates.len();
        let mut idx = 0usize;
        let mut bit = n.next_power_of_two();
        let mut remaining = target;
        while bit > 0 {
            let next = idx + bit;
            if next < self.tree.len() && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                idx = next;
            }
            bit >>= 1;
        }
        idx.min(n - 1)
    }
}

/// Runs an exact stochastic simulation. Reuses [`AbmConfig`] (its `dt`
/// is used only as the recording interval).
///
/// # Errors
///
/// Same as [`crate::abm::run`].
pub fn run(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    rng: &mut impl Rng,
) -> Result<SimTrajectory> {
    if !(cfg.dt > 0.0) || !(cfg.tf > 0.0) || cfg.dt > cfg.tf {
        return Err(SimError::InvalidConfig(format!(
            "need 0 < dt <= tf, got dt = {}, tf = {}",
            cfg.dt, cfg.tf
        )));
    }
    if cfg.eps1 < 0.0 || cfg.eps2 < 0.0 || cfg.alpha < 0.0 {
        return Err(SimError::InvalidConfig("rates must be non-negative".into()));
    }
    if !(cfg.initial_infected > 0.0 && cfg.initial_infected <= 1.0) {
        return Err(SimError::InvalidConfig(format!(
            "initial infected fraction must lie in (0, 1], got {}",
            cfg.initial_infected
        )));
    }
    let tables = build_tables(graph, params)?;
    let n = graph.node_count();
    let mut states = seed_states(graph, cfg.initial_infected, rng);
    let active_count = (0..n).filter(|&u| graph.degree(u) > 0).count().max(1);

    // Infection pressure on u: Σ_{v ∈ N(u), infected} ω(k_v)/k_v.
    let mut pressure = vec![0.0; n];
    for u in 0..n {
        if states[u] == NodeState::Infected {
            for &v in graph.neighbors(u) {
                pressure[v as usize] += tables.omega_over_k[u];
            }
        }
    }

    let node_rate = |u: usize, st: NodeState, pressure_u: f64| -> f64 {
        match st {
            NodeState::Susceptible => {
                let k = graph.degree(u);
                if k == 0 {
                    0.0
                } else {
                    cfg.eps1 + tables.lambda[u] * pressure_u / k as f64
                }
            }
            NodeState::Infected => cfg.eps2,
            NodeState::Recovered => 0.0,
        }
    };

    // Slots 0..n hold per-node rates; slots n..n+n_class hold the
    // class-level demographic recycle rates (α·size_c while the class
    // has recovered nodes).
    let n_class = tables.class_size.len();
    let mut tree = RateTree::new(n + n_class);
    for u in 0..n {
        tree.set(u, node_rate(u, states[u], pressure[u]));
    }
    // Recovered-node pools per class for O(1) uniform sampling.
    let mut recovered_pool: Vec<Vec<usize>> = vec![Vec::new(); n_class];
    let mut pool_pos = vec![usize::MAX; n];
    let pool_insert =
        |u: usize, pools: &mut Vec<Vec<usize>>, pos: &mut Vec<usize>, tree: &mut RateTree| {
            let c = tables.class[u];
            if pools[c].is_empty() && cfg.alpha > 0.0 {
                tree.set(n + c, cfg.alpha * tables.class_size[c] as f64);
            }
            pos[u] = pools[c].len();
            pools[c].push(u);
        };
    let pool_remove = |u: usize,
                       pools: &mut Vec<Vec<usize>>,
                       pos: &mut Vec<usize>,
                       tree: &mut RateTree,
                       class: &[usize],
                       class_size: &[usize]| {
        let _ = class_size;
        let c = class[u];
        let idx = pos[u];
        let last = *pools[c].last().expect("pool non-empty");
        pools[c].swap_remove(idx);
        if last != u {
            pos[last] = idx;
        }
        pos[u] = usize::MAX;
        if pools[c].is_empty() {
            tree.set(n + c, 0.0);
        }
    };

    let mut traj = SimTrajectory::new(tables.class_size.len());
    let mut counts = StateCounts::from_states(&states, &tables);
    counts.record(&mut traj, 0.0, active_count);

    let mut t = 0.0;
    let mut next_record = cfg.dt;
    loop {
        let total = tree.total();
        if total <= 1e-300 {
            break;
        }
        let wait = -rng.gen_range(f64::EPSILON..1.0_f64).ln() / total;
        t += wait;
        if t > cfg.tf {
            break;
        }
        while next_record < t && next_record <= cfg.tf {
            counts.record(&mut traj, next_record, active_count);
            next_record += cfg.dt;
        }
        let slot = tree.sample(rng.gen_range(0.0..total));
        if slot >= n {
            // Demographic recycling: a uniformly random recovered node of
            // class `slot - n` becomes susceptible again.
            let c = slot - n;
            let pool = &recovered_pool[c];
            let u = pool[rng.gen_range(0..pool.len())];
            pool_remove(
                u,
                &mut recovered_pool,
                &mut pool_pos,
                &mut tree,
                &tables.class,
                &tables.class_size,
            );
            states[u] = NodeState::Susceptible;
            counts.transition(&tables, u, NodeState::Recovered, NodeState::Susceptible);
            tree.set(u, node_rate(u, NodeState::Susceptible, pressure[u]));
            continue;
        }
        let u = slot;
        match states[u] {
            NodeState::Susceptible => {
                // Split the rate between immunization and infection.
                let k = graph.degree(u) as f64;
                let inf_rate = tables.lambda[u] * pressure[u] / k;
                let total_u = cfg.eps1 + inf_rate;
                if rng.gen_range(0.0..total_u) < cfg.eps1 {
                    // Immunized.
                    states[u] = NodeState::Recovered;
                    counts.transition(&tables, u, NodeState::Susceptible, NodeState::Recovered);
                    tree.set(u, 0.0);
                    pool_insert(u, &mut recovered_pool, &mut pool_pos, &mut tree);
                } else {
                    // Infected: update own rate and neighbors' pressures.
                    states[u] = NodeState::Infected;
                    counts.transition(&tables, u, NodeState::Susceptible, NodeState::Infected);
                    tree.set(u, cfg.eps2);
                    for &v in graph.neighbors(u) {
                        let v = v as usize;
                        pressure[v] += tables.omega_over_k[u];
                        if states[v] == NodeState::Susceptible {
                            tree.set(v, node_rate(v, NodeState::Susceptible, pressure[v]));
                        }
                    }
                }
            }
            NodeState::Infected => {
                // Blocked.
                states[u] = NodeState::Recovered;
                counts.transition(&tables, u, NodeState::Infected, NodeState::Recovered);
                tree.set(u, 0.0);
                pool_insert(u, &mut recovered_pool, &mut pool_pos, &mut tree);
                for &v in graph.neighbors(u) {
                    let v = v as usize;
                    pressure[v] -= tables.omega_over_k[u];
                    if pressure[v] < 0.0 {
                        pressure[v] = 0.0; // numeric dust
                    }
                    if states[v] == NodeState::Susceptible {
                        tree.set(v, node_rate(v, NodeState::Susceptible, pressure[v]));
                    }
                }
            }
            NodeState::Recovered => unreachable!("recovered nodes carry zero rate"),
        }
    }
    // Flush remaining record points (process may have gone quiet early).
    while next_record <= cfg.tf + 1e-12 {
        counts.record(&mut traj, next_record.min(cfg.tf), active_count);
        next_record += cfg.dt;
    }
    Ok(traj)
}

/// Incremental aggregate counters, avoiding full rescans per record.
struct StateCounts {
    s: usize,
    i: usize,
    r: usize,
    class_i: Vec<usize>,
    class_size: Vec<usize>,
}

impl StateCounts {
    fn from_states(states: &[NodeState], tables: &crate::abm::RateTables) -> Self {
        let mut c = StateCounts {
            s: 0,
            i: 0,
            r: 0,
            class_i: vec![0; tables.class_size.len()],
            class_size: tables.class_size.clone(),
        };
        for (u, st) in states.iter().enumerate() {
            if tables.class[u] == usize::MAX {
                continue;
            }
            match st {
                NodeState::Susceptible => c.s += 1,
                NodeState::Infected => {
                    c.i += 1;
                    c.class_i[tables.class[u]] += 1;
                }
                NodeState::Recovered => c.r += 1,
            }
        }
        c
    }

    fn transition(
        &mut self,
        tables: &crate::abm::RateTables,
        u: usize,
        from: NodeState,
        to: NodeState,
    ) {
        let class = tables.class[u];
        match from {
            NodeState::Susceptible => self.s -= 1,
            NodeState::Infected => {
                self.i -= 1;
                self.class_i[class] -= 1;
            }
            NodeState::Recovered => self.r -= 1,
        }
        match to {
            NodeState::Susceptible => self.s += 1,
            NodeState::Infected => {
                self.i += 1;
                self.class_i[class] += 1;
            }
            NodeState::Recovered => self.r += 1,
        }
    }

    fn record(&self, traj: &mut SimTrajectory, t: f64, active: usize) {
        let class_frac: Vec<f64> = self
            .class_i
            .iter()
            .zip(&self.class_size)
            .map(|(&c, &n)| if n > 0 { c as f64 / n as f64 } else { 0.0 })
            .collect();
        traj.push(
            t,
            self.s as f64 / active as f64,
            self.i as f64 / active as f64,
            self.r as f64 / active as f64,
            &class_frac,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;
    use rumor_net::generators::barabasi_albert;

    fn setup(n: usize, lambda0: f64) -> (Graph, ModelParams) {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(n, 3, &mut rng).unwrap();
        let classes = DegreeClasses::from_graph(&g).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        (g, p)
    }

    #[test]
    fn rate_tree_sampling_matches_rates() {
        let mut tree = RateTree::new(4);
        tree.set(0, 1.0);
        tree.set(2, 3.0);
        assert!((tree.total() - 4.0).abs() < 1e-12);
        assert_eq!(tree.rate(2), 3.0);
        // Deterministic targets map into the correct buckets.
        assert_eq!(tree.sample(0.5), 0);
        assert_eq!(tree.sample(1.5), 2);
        assert_eq!(tree.sample(3.9), 2);
        tree.set(2, 0.0);
        assert!((tree.total() - 1.0).abs() < 1e-12);
        assert_eq!(tree.sample(0.99), 0);
    }

    #[test]
    fn rate_tree_statistical_sampling() {
        let mut tree = RateTree::new(3);
        tree.set(0, 1.0);
        tree.set(1, 2.0);
        tree.set(2, 7.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[tree.sample(rng.gen_range(0.0..tree.total()))] += 1;
        }
        let f2 = counts[2] as f64 / 20_000.0;
        assert!((f2 - 0.7).abs() < 0.02, "hub fraction {f2}");
    }

    #[test]
    fn extinction_under_strong_blocking() {
        let (g, p) = setup(600, 0.3);
        let cfg = AbmConfig {
            tf: 100.0,
            dt: 1.0,
            eps1: 0.05,
            eps2: 0.4,
            ..Default::default()
        };
        let traj = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(5)).unwrap();
        assert!(traj.final_infected() < 0.01);
    }

    #[test]
    fn takeoff_without_countermeasures() {
        let (g, p) = setup(600, 5.0);
        let cfg = AbmConfig {
            tf: 40.0,
            dt: 1.0,
            initial_infected: 0.02,
            ..Default::default()
        };
        let traj = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(6)).unwrap();
        assert!(traj.final_infected() > 0.3, "got {}", traj.final_infected());
    }

    #[test]
    fn fractions_sum_to_one_at_every_record() {
        let (g, p) = setup(400, 0.5);
        let cfg = AbmConfig {
            tf: 20.0,
            dt: 0.5,
            eps1: 0.02,
            eps2: 0.05,
            ..Default::default()
        };
        let traj = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(8)).unwrap();
        for idx in 0..traj.len() {
            let total = traj.s()[idx] + traj.i()[idx] + traj.r()[idx];
            assert!((total - 1.0).abs() < 1e-9);
        }
        // Recording reaches tf.
        assert!((traj.times().last().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_synchronous_abm_on_average() {
        let (g, p) = setup(800, 1.0);
        let cfg = AbmConfig {
            tf: 20.0,
            dt: 0.05,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 20,
            ..Default::default()
        };
        // Average a few runs of each simulator and compare final R.
        let mut ssa_r = 0.0;
        let mut abm_r = 0.0;
        const RUNS: u64 = 5;
        for seed in 0..RUNS {
            ssa_r += run(&g, &p, &cfg, &mut StdRng::seed_from_u64(seed))
                .unwrap()
                .r()
                .last()
                .unwrap();
            abm_r += crate::abm::run(&g, &p, &cfg, &mut StdRng::seed_from_u64(100 + seed))
                .unwrap()
                .r()
                .last()
                .unwrap();
        }
        let (ssa_r, abm_r) = (ssa_r / RUNS as f64, abm_r / RUNS as f64);
        assert!(
            (ssa_r - abm_r).abs() < 0.1,
            "ssa {ssa_r} vs abm {abm_r} should roughly agree"
        );
    }

    #[test]
    fn config_validation() {
        let (g, p) = setup(100, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        for bad in [
            AbmConfig {
                dt: 0.0,
                ..Default::default()
            },
            AbmConfig {
                eps2: -1.0,
                ..Default::default()
            },
            AbmConfig {
                initial_infected: 2.0,
                ..Default::default()
            },
        ] {
            assert!(run(&g, &p, &bad, &mut rng).is_err());
        }
    }
}
