//! Ensemble averaging of stochastic runs and comparison with the
//! mean-field ODE.

use crate::abm::AbmConfig;
use crate::{Result, SimError, SimTrajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_core::control::ConstantControl;
use rumor_core::params::ModelParams;
use rumor_core::simulate::{simulate_grid, SimulateOptions};
use rumor_core::state::NetworkState;
use rumor_net::graph::Graph;
use rumor_numerics::stats::RunningStats;

/// Which stochastic simulator an ensemble uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simulator {
    /// The synchronous discrete-time ABM.
    Synchronous,
    /// The exact Gillespie SSA.
    Gillespie,
}

/// Mean ± stddev of the population-wide infected fraction over time,
/// averaged across independent runs.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnsembleResult {
    /// The shared record grid.
    pub times: Vec<f64>,
    /// Mean infected fraction per sample.
    pub i_mean: Vec<f64>,
    /// Standard deviation per sample.
    pub i_std: Vec<f64>,
    /// Number of runs aggregated.
    pub runs: usize,
}

/// Runs `n_runs` independent stochastic simulations (seeds
/// `base_seed, base_seed+1, …`) and aggregates the infected fraction.
///
/// # Errors
///
/// * [`SimError::InvalidConfig`] if `n_runs == 0` or runs record on
///   different grids.
/// * Propagated per-run failures.
pub fn run_ensemble(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    simulator: Simulator,
    n_runs: usize,
    base_seed: u64,
) -> Result<EnsembleResult> {
    if n_runs == 0 {
        return Err(SimError::InvalidConfig("need at least one run".into()));
    }
    let mut stats: Vec<RunningStats> = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    for r in 0..n_runs {
        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(r as u64));
        let traj: SimTrajectory = match simulator {
            Simulator::Synchronous => crate::abm::run(graph, params, cfg, &mut rng)?,
            Simulator::Gillespie => crate::gillespie::run(graph, params, cfg, &mut rng)?,
        };
        if r == 0 {
            times = traj.times().to_vec();
            stats = vec![RunningStats::new(); times.len()];
        } else if traj.len() != times.len() {
            return Err(SimError::InvalidConfig(format!(
                "run {r} recorded {} samples, expected {}",
                traj.len(),
                times.len()
            )));
        }
        for (slot, &v) in stats.iter_mut().zip(traj.i()) {
            slot.push(v);
        }
    }
    Ok(EnsembleResult {
        times,
        i_mean: stats.iter().map(|s| s.mean().unwrap_or(0.0)).collect(),
        i_std: stats
            .iter()
            .map(|s| s.std_dev().unwrap_or(0.0))
            .collect(),
        runs: n_runs,
    })
}

/// Integrates the mean-field ODE on the ensemble's grid and returns the
/// *population-wide* infected fraction predicted by the mean field
/// (`Σ_k P(k) I_k(t)`), comparable sample-by-sample with
/// [`EnsembleResult::i_mean`].
///
/// # Errors
///
/// Propagates core-model failures.
pub fn mean_field_reference(
    params: &ModelParams,
    cfg: &AbmConfig,
    times: &[f64],
) -> Result<Vec<f64>> {
    let init = NetworkState::initial_uniform(params.n_classes(), cfg.initial_infected)?;
    let traj = simulate_grid(
        params,
        ConstantControl::new(cfg.eps1, cfg.eps2),
        &init,
        times,
        &SimulateOptions::default(),
    )?;
    let probs = params.classes().probabilities().to_vec();
    Ok(traj
        .states()
        .iter()
        .map(|st| st.i().iter().zip(&probs).map(|(i, p)| i * p).sum())
        .collect())
}

/// Maximum absolute deviation between the ensemble mean and the
/// mean-field prediction — the headline number of the ABM-vs-ODE
/// validation experiment.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] on grid-length mismatch.
pub fn max_deviation(ensemble: &EnsembleResult, mean_field: &[f64]) -> Result<f64> {
    if ensemble.i_mean.len() != mean_field.len() {
        return Err(SimError::InvalidConfig(format!(
            "series lengths differ: {} vs {}",
            ensemble.i_mean.len(),
            mean_field.len()
        )));
    }
    Ok(ensemble
        .i_mean
        .iter()
        .zip(mean_field)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;
    use rumor_net::generators::barabasi_albert;

    fn setup(n: usize, lambda0: f64) -> (Graph, ModelParams) {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(n, 3, &mut rng).unwrap();
        let classes = DegreeClasses::from_graph(&g).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        (g, p)
    }

    fn cfg() -> AbmConfig {
        AbmConfig {
            alpha: 0.0,
            dt: 0.1,
            tf: 15.0,
            eps1: 0.02,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 10,
        }
    }

    #[test]
    fn demographic_abm_tracks_mean_field_with_inflow() {
        // α > 0: recovered users recycle into susceptibles; the endemic
        // mean-field level should be matched by the synchronous ABM.
        let (g, base) = setup(2_000, 1.0);
        let p = ModelParams::builder(base.classes().clone())
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        let cfg = AbmConfig {
            alpha: 0.01,
            dt: 0.1,
            tf: 80.0,
            eps1: 0.02,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 50,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Synchronous, 6, 23).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        let tail = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail < 0.03, "tail deviation {tail}");
    }

    #[test]
    fn gillespie_demography_tracks_mean_field() {
        // Both simulators support the inflow α; the exact SSA must match
        // the endemic mean-field level too.
        let (g, base) = setup(1_500, 1.0);
        let p = ModelParams::builder(base.classes().clone())
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        let cfg = AbmConfig {
            alpha: 0.01,
            dt: 1.0,
            tf: 80.0,
            eps1: 0.02,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 1,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Gillespie, 5, 31).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        // Quenched-graph endemic levels sit slightly off the annealed
        // mean field; accept a modest systematic offset.
        let tail = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail < 0.06, "tail deviation {tail}");
        // Both settle at a clearly endemic (nonzero) level.
        assert!(*ens.i_mean.last().unwrap() > 0.01);
        assert!(*mf.last().unwrap() > 0.01);
    }

    #[test]
    fn ensemble_reduces_variance() {
        let (g, p) = setup(400, 0.5);
        let small = run_ensemble(&g, &p, &cfg(), Simulator::Synchronous, 2, 0).unwrap();
        let large = run_ensemble(&g, &p, &cfg(), Simulator::Synchronous, 10, 0).unwrap();
        assert_eq!(small.times, large.times);
        assert_eq!(large.runs, 10);
        // Mean estimates exist everywhere and stddev is finite.
        assert!(large.i_std.iter().all(|v| v.is_finite()));
        assert!(large.i_mean.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn zero_runs_rejected() {
        let (g, p) = setup(100, 0.5);
        assert!(run_ensemble(&g, &p, &cfg(), Simulator::Synchronous, 0, 0).is_err());
    }

    #[test]
    fn mean_field_tracks_abm_ensemble() {
        // The headline validation: mean-field ODE vs ABM ensemble on a
        // BA graph. Agreement is approximate (mean field ignores degree
        // correlations and stochastic die-out), so assert a loose bound.
        let (g, p) = setup(2000, 1.0);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 0.1,
            tf: 60.0,
            eps1: 0.01,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 20,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Synchronous, 8, 42).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        // Mean field is an annealed approximation; on a quenched BA
        // graph transient deviations of ~0.1 at the peak are expected.
        let dev = max_deviation(&ens, &mf).unwrap();
        assert!(dev < 0.2, "max deviation {dev} too large");
        // The tails must agree tightly: both decay to extinction.
        let tail_dev = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail_dev < 0.03, "tail deviation {tail_dev}");
        assert!(ens.i_mean.last().unwrap() < &0.05);
        assert!(mf.last().unwrap() < &0.05);
    }

    #[test]
    fn gillespie_ensemble_also_tracks_mean_field() {
        let (g, p) = setup(1000, 1.0);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 1.0,
            tf: 50.0,
            eps1: 0.01,
            eps2: 0.15,
            initial_infected: 0.05,
            record_every: 1,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Gillespie, 6, 7).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        let dev = max_deviation(&ens, &mf).unwrap();
        assert!(dev < 0.2, "max deviation {dev} too large");
        let tail_dev = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail_dev < 0.03, "tail deviation {tail_dev}");
    }

    #[test]
    fn max_deviation_validates_lengths() {
        let e = EnsembleResult {
            times: vec![0.0, 1.0],
            i_mean: vec![0.1, 0.2],
            i_std: vec![0.0, 0.0],
            runs: 1,
        };
        assert!(max_deviation(&e, &[0.1]).is_err());
        assert!((max_deviation(&e, &[0.1, 0.1]).unwrap() - 0.1).abs() < 1e-12);
    }
}
