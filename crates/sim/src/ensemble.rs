//! Ensemble averaging of stochastic runs and comparison with the
//! mean-field ODE.
//!
//! # Parallelism and determinism
//!
//! Ensembles fan their replicas out across worker threads through
//! [`rumor_par`]. Every replica is a pure function of its `(index,
//! seed)` pair — seeds follow the serial scheme `base_seed,
//! base_seed+1, …` and each replica owns its `StdRng` — and the
//! trajectories come back in replica order, after which the statistics
//! are merged **serially in replica order** into the same
//! [`RunningStats`] accumulators the serial path uses. Aggregate means,
//! standard deviations, failure records and quorum outcomes are
//! therefore bit-identical for every thread count, including 1.
//!
//! The worker count resolves through [`rumor_par::resolve_threads`]:
//! an explicit `threads` argument (the `*_threads` variants), else the
//! process-wide override installed by the CLI's `--threads` flag, else
//! the `RUMOR_THREADS` environment variable, else the machine's
//! available parallelism.

use crate::abm::AbmConfig;
use crate::{Result, SimError, SimTrajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_core::control::ConstantControl;
use rumor_core::params::ModelParams;
use rumor_core::simulate::{simulate_grid, SimulateOptions};
use rumor_core::state::NetworkState;
use rumor_net::graph::Graph;
use rumor_numerics::stats::RunningStats;

/// Which stochastic simulator an ensemble uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simulator {
    /// The synchronous discrete-time ABM.
    Synchronous,
    /// The exact Gillespie SSA.
    Gillespie,
}

/// Mean ± stddev of the population-wide infected fraction over time,
/// averaged across independent runs.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleResult {
    /// The shared record grid.
    pub times: Vec<f64>,
    /// Mean infected fraction per sample.
    pub i_mean: Vec<f64>,
    /// Standard deviation per sample.
    pub i_std: Vec<f64>,
    /// Number of runs aggregated.
    pub runs: usize,
}

/// Runs one replica of a simulator with its own freshly seeded RNG.
fn run_replica(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    simulator: Simulator,
    seed: u64,
) -> Result<SimTrajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    match simulator {
        Simulator::Synchronous => crate::abm::run(graph, params, cfg, &mut rng),
        Simulator::Gillespie => crate::gillespie::run(graph, params, cfg, &mut rng),
    }
}

/// Runs `n_runs` independent stochastic simulations (seeds
/// `base_seed, base_seed+1, …`) and aggregates the infected fraction.
///
/// Replicas execute in parallel (see the module docs for the worker
/// count resolution and the determinism contract); the output is
/// bit-identical to a serial run.
///
/// # Errors
///
/// * [`SimError::InvalidConfig`] if `n_runs == 0` or runs record on
///   different grids.
/// * Propagated per-run failures.
pub fn run_ensemble(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    simulator: Simulator,
    n_runs: usize,
    base_seed: u64,
) -> Result<EnsembleResult> {
    run_ensemble_threads(graph, params, cfg, simulator, n_runs, base_seed, None)
}

/// [`run_ensemble`] with an explicit worker count (`None` resolves the
/// process default). `Some(1)` forces a serial run.
///
/// # Errors
///
/// Same as [`run_ensemble`].
pub fn run_ensemble_threads(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    simulator: Simulator,
    n_runs: usize,
    base_seed: u64,
    threads: Option<usize>,
) -> Result<EnsembleResult> {
    if n_runs == 0 {
        return Err(SimError::InvalidConfig("need at least one run".into()));
    }
    let workers = rumor_par::resolve_threads(threads);
    let mut ens_span = rumor_obs::span("sim.ensemble");
    if ens_span.active() {
        ens_span.field("runs", n_runs);
        ens_span.field("workers", workers);
    }
    let trajectories = rumor_par::par_map_indexed(n_runs, workers, |r| {
        let mut sp = rumor_obs::span("sim.replica");
        sp.field("replica", r);
        run_replica(
            graph,
            params,
            cfg,
            simulator,
            base_seed.wrapping_add(r as u64),
        )
    });
    // Serial merge in replica order — identical to the sequential loop,
    // including its error semantics (the first failing replica's error
    // is the one reported).
    let mut stats: Vec<RunningStats> = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    for (r, traj) in trajectories.into_iter().enumerate() {
        let traj = traj?;
        if r == 0 {
            times = traj.times().to_vec();
            stats = vec![RunningStats::new(); times.len()];
        } else if traj.len() != times.len() {
            return Err(SimError::InvalidConfig(format!(
                "run {r} recorded {} samples, expected {}",
                traj.len(),
                times.len()
            )));
        }
        for (slot, &v) in stats.iter_mut().zip(traj.i()) {
            slot.push(v);
        }
    }
    Ok(EnsembleResult {
        times,
        i_mean: stats.iter().map(|s| s.mean().unwrap_or(0.0)).collect(),
        i_std: stats.iter().map(|s| s.std_dev().unwrap_or(0.0)).collect(),
        runs: n_runs,
    })
}

/// One excluded replica: which run failed, with which seed, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaFailure {
    /// Zero-based replica index.
    pub replica: usize,
    /// The seed the replica ran with (for deterministic reproduction).
    pub seed: u64,
    /// The failure, rendered (source errors are not `Clone`).
    pub reason: String,
}

/// Fault-isolation policy of an ensemble run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolationPolicy {
    /// Fraction of replicas (in `(0, 1]`) that must succeed for the
    /// aggregate to be returned at all; below this the whole run fails
    /// with [`SimError::QuorumNotMet`].
    pub quorum: f64,
}

impl Default for IsolationPolicy {
    fn default() -> Self {
        IsolationPolicy { quorum: 0.5 }
    }
}

impl IsolationPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a quorum outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !(self.quorum > 0.0 && self.quorum <= 1.0) {
            return Err(SimError::InvalidConfig(format!(
                "quorum must lie in (0, 1], got {}",
                self.quorum
            )));
        }
        Ok(())
    }

    /// Minimum number of successful replicas out of `attempted`.
    pub fn required(&self, attempted: usize) -> usize {
        ((self.quorum * attempted as f64).ceil() as usize).max(1)
    }
}

/// An ensemble aggregate that survived replica failures: the statistics
/// cover the surviving replicas only, and every exclusion is recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolatedEnsemble {
    /// Statistics over the surviving replicas (`result.runs` counts the
    /// survivors, not the attempts).
    pub result: EnsembleResult,
    /// One record per failed replica, in replica order.
    pub failures: Vec<ReplicaFailure>,
    /// Replicas attempted in total.
    pub attempted: usize,
}

impl IsolatedEnsemble {
    /// `true` when at least one replica had to be excluded.
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// One-line human-readable summary for logs and CLI output.
    pub fn summary(&self) -> String {
        if self.failures.is_empty() {
            format!("all {} replicas succeeded", self.attempted)
        } else {
            format!(
                "DEGRADED: {}/{} replicas succeeded ({} excluded)",
                self.result.runs,
                self.attempted,
                self.failures.len()
            )
        }
    }
}

/// Runs `n_runs` replicas through `runner`, isolating per-replica
/// failures: a replica that errors — or records on a different grid than
/// the first surviving replica — is excluded and recorded instead of
/// poisoning the whole ensemble.
///
/// The runner receives `(replica_index, seed)` with seeds
/// `base_seed, base_seed+1, …`, so a failed replica can be re-run in
/// isolation. This is also the deterministic fault-injection seam the
/// tests use: a runner that fails on schedule exercises every isolation
/// path reproducibly.
///
/// Replicas execute in parallel; the runner must therefore be a pure
/// `Fn` (a function of `(index, seed)` only). Exclusion records and
/// quorum outcomes are evaluated serially in replica order and are
/// bit-identical for every thread count.
///
/// # Errors
///
/// * [`SimError::InvalidConfig`] if `n_runs == 0` or the policy is
///   invalid.
/// * [`SimError::QuorumNotMet`] if fewer than `policy.required(n_runs)`
///   replicas survive.
pub fn run_ensemble_isolated_with<F>(
    n_runs: usize,
    base_seed: u64,
    policy: &IsolationPolicy,
    runner: F,
) -> Result<IsolatedEnsemble>
where
    F: Fn(usize, u64) -> Result<SimTrajectory> + Sync,
{
    run_ensemble_isolated_with_threads(n_runs, base_seed, policy, None, runner)
}

/// [`run_ensemble_isolated_with`] with an explicit worker count (`None`
/// resolves the process default). `Some(1)` forces a serial run.
///
/// # Errors
///
/// Same as [`run_ensemble_isolated_with`].
pub fn run_ensemble_isolated_with_threads<F>(
    n_runs: usize,
    base_seed: u64,
    policy: &IsolationPolicy,
    threads: Option<usize>,
    runner: F,
) -> Result<IsolatedEnsemble>
where
    F: Fn(usize, u64) -> Result<SimTrajectory> + Sync,
{
    policy.validate()?;
    if n_runs == 0 {
        return Err(SimError::InvalidConfig("need at least one run".into()));
    }
    let workers = rumor_par::resolve_threads(threads);
    let mut ens_span = rumor_obs::span("sim.ensemble_isolated");
    if ens_span.active() {
        ens_span.field("runs", n_runs);
        ens_span.field("workers", workers);
    }
    let outcomes = rumor_par::par_map_indexed(n_runs, workers, |r| {
        let mut sp = rumor_obs::span("sim.replica");
        sp.field("replica", r);
        runner(r, base_seed.wrapping_add(r as u64))
    });
    // Serial merge in replica order: grid from the first *surviving*
    // replica, later grid mismatches become exclusions, stats accumulate
    // in replica order — exactly the sequential semantics.
    let mut stats: Vec<RunningStats> = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    let mut failures: Vec<ReplicaFailure> = Vec::new();
    let mut succeeded = 0usize;
    for (r, outcome) in outcomes.into_iter().enumerate() {
        let seed = base_seed.wrapping_add(r as u64);
        let traj = match outcome {
            Ok(t) => t,
            Err(e) => {
                rumor_obs::event(
                    "sim.exclusion",
                    &[("replica", r.into()), ("reason", e.to_string().into())],
                );
                rumor_obs::add("sim.replicas_excluded", 1);
                failures.push(ReplicaFailure {
                    replica: r,
                    seed,
                    reason: e.to_string(),
                });
                continue;
            }
        };
        if succeeded == 0 {
            times = traj.times().to_vec();
            stats = vec![RunningStats::new(); times.len()];
        } else if traj.len() != times.len() {
            rumor_obs::event(
                "sim.exclusion",
                &[("replica", r.into()), ("reason", "grid mismatch".into())],
            );
            rumor_obs::add("sim.replicas_excluded", 1);
            failures.push(ReplicaFailure {
                replica: r,
                seed,
                reason: format!("recorded {} samples, expected {}", traj.len(), times.len()),
            });
            continue;
        }
        for (slot, &v) in stats.iter_mut().zip(traj.i()) {
            slot.push(v);
        }
        succeeded += 1;
    }
    let required = policy.required(n_runs);
    rumor_obs::event(
        "sim.quorum",
        &[
            ("succeeded", succeeded.into()),
            ("required", required.into()),
            ("attempted", n_runs.into()),
            ("met", (succeeded >= required).into()),
        ],
    );
    if ens_span.active() {
        ens_span.field("succeeded", succeeded);
        ens_span.field("excluded", failures.len());
    }
    if succeeded < required {
        rumor_obs::add("sim.quorum_failures", 1);
        return Err(SimError::QuorumNotMet {
            succeeded,
            required,
            attempted: n_runs,
        });
    }
    Ok(IsolatedEnsemble {
        result: EnsembleResult {
            times,
            i_mean: stats.iter().map(|s| s.mean().unwrap_or(0.0)).collect(),
            i_std: stats.iter().map(|s| s.std_dev().unwrap_or(0.0)).collect(),
            runs: succeeded,
        },
        failures,
        attempted: n_runs,
    })
}

/// Fault-isolated variant of [`run_ensemble`]: one failed or poisoned
/// replica is excluded and recorded, and the ensemble continues as long
/// as the quorum holds.
///
/// # Errors
///
/// See [`run_ensemble_isolated_with`].
pub fn run_ensemble_isolated(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    simulator: Simulator,
    n_runs: usize,
    base_seed: u64,
    policy: &IsolationPolicy,
) -> Result<IsolatedEnsemble> {
    run_ensemble_isolated_threads(
        graph, params, cfg, simulator, n_runs, base_seed, policy, None,
    )
}

/// [`run_ensemble_isolated`] with an explicit worker count (`None`
/// resolves the process default). `Some(1)` forces a serial run.
///
/// # Errors
///
/// See [`run_ensemble_isolated_with`].
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_isolated_threads(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    simulator: Simulator,
    n_runs: usize,
    base_seed: u64,
    policy: &IsolationPolicy,
    threads: Option<usize>,
) -> Result<IsolatedEnsemble> {
    run_ensemble_isolated_with_threads(n_runs, base_seed, policy, threads, |_, seed| {
        run_replica(graph, params, cfg, simulator, seed)
    })
}

/// Integrates the mean-field ODE on the ensemble's grid and returns the
/// *population-wide* infected fraction predicted by the mean field
/// (`Σ_k P(k) I_k(t)`), comparable sample-by-sample with
/// [`EnsembleResult::i_mean`].
///
/// # Errors
///
/// Propagates core-model failures.
pub fn mean_field_reference(
    params: &ModelParams,
    cfg: &AbmConfig,
    times: &[f64],
) -> Result<Vec<f64>> {
    let init = NetworkState::initial_uniform(params.n_classes(), cfg.initial_infected)?;
    let traj = simulate_grid(
        params,
        ConstantControl::new(cfg.eps1, cfg.eps2),
        &init,
        times,
        &SimulateOptions::default(),
    )?;
    let probs = params.classes().probabilities().to_vec();
    Ok(traj
        .states()
        .iter()
        .map(|st| st.i().iter().zip(&probs).map(|(i, p)| i * p).sum())
        .collect())
}

/// Maximum absolute deviation between the ensemble mean and the
/// mean-field prediction — the headline number of the ABM-vs-ODE
/// validation experiment.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] on grid-length mismatch.
pub fn max_deviation(ensemble: &EnsembleResult, mean_field: &[f64]) -> Result<f64> {
    if ensemble.i_mean.len() != mean_field.len() {
        return Err(SimError::InvalidConfig(format!(
            "series lengths differ: {} vs {}",
            ensemble.i_mean.len(),
            mean_field.len()
        )));
    }
    Ok(ensemble
        .i_mean
        .iter()
        .zip(mean_field)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;
    use rumor_net::generators::barabasi_albert;

    fn setup(n: usize, lambda0: f64) -> (Graph, ModelParams) {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(n, 3, &mut rng).unwrap();
        let classes = DegreeClasses::from_graph(&g).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        (g, p)
    }

    fn cfg() -> AbmConfig {
        AbmConfig {
            alpha: 0.0,
            dt: 0.1,
            tf: 15.0,
            eps1: 0.02,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 10,
        }
    }

    #[test]
    fn demographic_abm_tracks_mean_field_with_inflow() {
        // α > 0: recovered users recycle into susceptibles; the endemic
        // mean-field level should be matched by the synchronous ABM.
        let (g, base) = setup(2_000, 1.0);
        let p = ModelParams::builder(base.classes().clone())
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        let cfg = AbmConfig {
            alpha: 0.01,
            dt: 0.1,
            tf: 80.0,
            eps1: 0.02,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 50,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Synchronous, 6, 23).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        let tail = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail < 0.04, "tail deviation {tail}");
    }

    #[test]
    fn gillespie_demography_tracks_mean_field() {
        // Both simulators support the inflow α; the exact SSA must match
        // the endemic mean-field level too.
        let (g, base) = setup(1_500, 1.0);
        let p = ModelParams::builder(base.classes().clone())
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        let cfg = AbmConfig {
            alpha: 0.01,
            dt: 1.0,
            tf: 80.0,
            eps1: 0.02,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 1,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Gillespie, 5, 31).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        // Quenched-graph endemic levels sit slightly off the annealed
        // mean field; accept a modest systematic offset.
        let tail = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail < 0.06, "tail deviation {tail}");
        // Both settle at a clearly endemic (nonzero) level.
        assert!(*ens.i_mean.last().unwrap() > 0.01);
        assert!(*mf.last().unwrap() > 0.01);
    }

    #[test]
    fn ensemble_reduces_variance() {
        let (g, p) = setup(400, 0.5);
        let small = run_ensemble(&g, &p, &cfg(), Simulator::Synchronous, 2, 0).unwrap();
        let large = run_ensemble(&g, &p, &cfg(), Simulator::Synchronous, 10, 0).unwrap();
        assert_eq!(small.times, large.times);
        assert_eq!(large.runs, 10);
        // Mean estimates exist everywhere and stddev is finite.
        assert!(large.i_std.iter().all(|v| v.is_finite()));
        assert!(large.i_mean.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn zero_runs_rejected() {
        let (g, p) = setup(100, 0.5);
        assert!(run_ensemble(&g, &p, &cfg(), Simulator::Synchronous, 0, 0).is_err());
    }

    #[test]
    fn mean_field_tracks_abm_ensemble() {
        // The headline validation: mean-field ODE vs ABM ensemble on a
        // BA graph. Agreement is approximate (mean field ignores degree
        // correlations and stochastic die-out), so assert a loose bound.
        let (g, p) = setup(2000, 1.0);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 0.1,
            tf: 60.0,
            eps1: 0.01,
            eps2: 0.1,
            initial_infected: 0.05,
            record_every: 20,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Synchronous, 8, 42).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        // Mean field is an annealed approximation; on a quenched BA
        // graph transient deviations of ~0.1 at the peak are expected.
        let dev = max_deviation(&ens, &mf).unwrap();
        assert!(dev < 0.2, "max deviation {dev} too large");
        // The tails must agree tightly: both decay to extinction.
        let tail_dev = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail_dev < 0.03, "tail deviation {tail_dev}");
        assert!(ens.i_mean.last().unwrap() < &0.05);
        assert!(mf.last().unwrap() < &0.05);
    }

    #[test]
    fn gillespie_ensemble_also_tracks_mean_field() {
        let (g, p) = setup(1000, 1.0);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 1.0,
            tf: 50.0,
            eps1: 0.01,
            eps2: 0.15,
            initial_infected: 0.05,
            record_every: 1,
        };
        let ens = run_ensemble(&g, &p, &cfg, Simulator::Gillespie, 6, 7).unwrap();
        let mf = mean_field_reference(&p, &cfg, &ens.times).unwrap();
        let dev = max_deviation(&ens, &mf).unwrap();
        assert!(dev < 0.2, "max deviation {dev} too large");
        let tail_dev = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail_dev < 0.03, "tail deviation {tail_dev}");
    }

    /// Deterministic synthetic trajectory with `len` samples whose
    /// infected fraction is constant at `level`.
    fn synth_traj(len: usize, level: f64) -> SimTrajectory {
        let mut t = SimTrajectory::new(1);
        for k in 0..len {
            t.push(k as f64, 1.0 - level, level, 0.0, &[level]);
        }
        t
    }

    #[test]
    fn poisoned_replica_is_excluded_and_recorded() {
        // ISSUE acceptance criterion: one poisoned replica out of five
        // must not sink the ensemble — stats cover the four survivors
        // and the exclusion is on record with its seed.
        let policy = IsolationPolicy::default();
        let ens = run_ensemble_isolated_with(5, 100, &policy, |r, _| {
            if r == 2 {
                Err(SimError::Inconsistent(
                    "injected NaN in replica state".into(),
                ))
            } else {
                Ok(synth_traj(4, 0.25))
            }
        })
        .unwrap();
        assert!(ens.degraded());
        assert_eq!(ens.result.runs, 4);
        assert_eq!(ens.attempted, 5);
        assert_eq!(ens.failures.len(), 1);
        assert_eq!(ens.failures[0].replica, 2);
        assert_eq!(ens.failures[0].seed, 102);
        assert!(ens.failures[0].reason.contains("NaN"));
        assert!(ens.summary().contains("DEGRADED"));
        assert!(ens.result.i_mean.iter().all(|&m| (m - 0.25).abs() < 1e-12));
    }

    #[test]
    fn clean_run_is_not_degraded() {
        let policy = IsolationPolicy::default();
        let ens = run_ensemble_isolated_with(3, 0, &policy, |_, _| Ok(synth_traj(3, 0.1))).unwrap();
        assert!(!ens.degraded());
        assert_eq!(ens.result.runs, 3);
        assert_eq!(ens.summary(), "all 3 replicas succeeded");
    }

    #[test]
    fn mismatched_grid_counts_as_failure() {
        let policy = IsolationPolicy::default();
        let ens = run_ensemble_isolated_with(3, 0, &policy, |r, _| {
            Ok(synth_traj(if r == 1 { 7 } else { 4 }, 0.2))
        })
        .unwrap();
        assert_eq!(ens.result.runs, 2);
        assert_eq!(ens.failures.len(), 1);
        assert!(ens.failures[0].reason.contains("expected 4"));
    }

    #[test]
    fn quorum_violation_is_an_error() {
        // 4 of 5 fail: below the default 50% quorum → hard error that
        // carries the counts.
        let policy = IsolationPolicy::default();
        let err = run_ensemble_isolated_with(5, 0, &policy, |r, _| {
            if r == 0 {
                Ok(synth_traj(3, 0.2))
            } else {
                Err(SimError::Inconsistent("poisoned".into()))
            }
        })
        .unwrap_err();
        match err {
            SimError::QuorumNotMet {
                succeeded,
                required,
                attempted,
            } => {
                assert_eq!((succeeded, required, attempted), (1, 3, 5));
            }
            other => panic!("expected QuorumNotMet, got {other}"),
        }
    }

    #[test]
    fn all_replicas_failed_vs_quorum_met() {
        // All failed: even a minimal quorum cannot be met.
        let lax = IsolationPolicy { quorum: 0.01 };
        let err = run_ensemble_isolated_with(4, 0, &lax, |_, _| {
            Err(SimError::Inconsistent("dead".into()))
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::QuorumNotMet {
                succeeded: 0,
                required: 1,
                ..
            }
        ));
        // Same failure rate, but one survivor satisfies the lax quorum.
        let ens = run_ensemble_isolated_with(4, 0, &lax, |r, _| {
            if r == 3 {
                Ok(synth_traj(2, 0.5))
            } else {
                Err(SimError::Inconsistent("dead".into()))
            }
        })
        .unwrap();
        assert_eq!(ens.result.runs, 1);
        assert_eq!(ens.failures.len(), 3);
    }

    #[test]
    fn isolation_policy_validation() {
        assert!(IsolationPolicy { quorum: 0.0 }.validate().is_err());
        assert!(IsolationPolicy { quorum: 1.5 }.validate().is_err());
        assert!(IsolationPolicy { quorum: f64::NAN }.validate().is_err());
        assert!(IsolationPolicy::default().validate().is_ok());
        assert_eq!(IsolationPolicy { quorum: 1.0 }.required(7), 7);
        assert_eq!(IsolationPolicy { quorum: 0.5 }.required(5), 3);
        assert!(
            run_ensemble_isolated_with(0, 0, &IsolationPolicy::default(), |_, _| Ok(synth_traj(
                1, 0.0
            )))
            .is_err()
        );
    }

    #[test]
    fn isolated_wrapper_matches_strict_ensemble_when_clean() {
        // With no faults the isolated wrapper must reproduce the strict
        // path exactly: same seeds, same statistics.
        let (g, p) = setup(300, 0.5);
        let strict = run_ensemble(&g, &p, &cfg(), Simulator::Synchronous, 3, 11).unwrap();
        let isolated = run_ensemble_isolated(
            &g,
            &p,
            &cfg(),
            Simulator::Synchronous,
            3,
            11,
            &IsolationPolicy::default(),
        )
        .unwrap();
        assert!(!isolated.degraded());
        assert_eq!(isolated.result, strict);
    }

    #[test]
    fn max_deviation_validates_lengths() {
        let e = EnsembleResult {
            times: vec![0.0, 1.0],
            i_mean: vec![0.1, 0.2],
            i_std: vec![0.0, 0.0],
            runs: 1,
        };
        assert!(max_deviation(&e, &[0.1]).is_err());
        assert!((max_deviation(&e, &[0.1, 0.1]).unwrap() - 0.1).abs() < 1e-12);
    }
}
