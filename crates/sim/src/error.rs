use std::fmt;

/// Errors produced by the agent-based simulators.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation configuration was invalid.
    InvalidConfig(String),
    /// The graph and parameters disagree (e.g. a node degree missing
    /// from the degree-class partition).
    Inconsistent(String),
    /// Too many ensemble replicas failed for the aggregate to be
    /// trustworthy under the configured isolation policy.
    QuorumNotMet {
        /// Replicas that produced a usable trajectory.
        succeeded: usize,
        /// Minimum successes the policy demanded.
        required: usize,
        /// Replicas attempted in total.
        attempted: usize,
    },
    /// An underlying core-model failure.
    Core(rumor_core::CoreError),
    /// An underlying network failure.
    Net(rumor_net::NetError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation configuration: {msg}"),
            SimError::Inconsistent(msg) => write!(f, "graph/parameter inconsistency: {msg}"),
            SimError::QuorumNotMet {
                succeeded,
                required,
                attempted,
            } => write!(
                f,
                "ensemble quorum not met: {succeeded}/{attempted} replicas succeeded, required {required}"
            ),
            SimError::Core(e) => write!(f, "core model error: {e}"),
            SimError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rumor_core::CoreError> for SimError {
    fn from(e: rumor_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<rumor_net::NetError> for SimError {
    fn from(e: rumor_net::NetError) -> Self {
        SimError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::SimError;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = SimError::InvalidConfig("dt must be positive".into());
        assert!(e.to_string().contains("dt"));
        assert!(e.source().is_none());
        let c: SimError = rumor_net::NetError::EmptyGraph.into();
        assert!(c.source().is_some());
    }
}
