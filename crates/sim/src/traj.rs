//! Recorded agent-based trajectories.

use crate::{Result, SimError};

/// A recorded stochastic trajectory: aggregate S/I/R *fractions* of the
/// whole population over time, plus per-degree-class infected fractions
/// for comparison with the mean-field `I_k(t)` curves.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrajectory {
    times: Vec<f64>,
    s_frac: Vec<f64>,
    i_frac: Vec<f64>,
    r_frac: Vec<f64>,
    /// `class_i[k][t_idx]`: infected fraction within degree class `k`.
    class_i: Vec<Vec<f64>>,
}

impl SimTrajectory {
    /// An empty trajectory tracking `n_classes` degree classes.
    ///
    /// Public because the runner passed to
    /// [`crate::ensemble::run_ensemble_isolated_with`] must be able to
    /// produce trajectories — e.g. synthetic ones in fault-injection
    /// tests.
    pub fn new(n_classes: usize) -> Self {
        SimTrajectory {
            times: Vec::new(),
            s_frac: Vec::new(),
            i_frac: Vec::new(),
            r_frac: Vec::new(),
            class_i: vec![Vec::new(); n_classes],
        }
    }

    /// Appends one sample: time, aggregate S/I/R fractions, and the
    /// per-class infected fractions (extra entries are ignored).
    pub fn push(&mut self, t: f64, s: f64, i: f64, r: f64, class_i: &[f64]) {
        self.times.push(t);
        self.s_frac.push(s);
        self.i_frac.push(i);
        self.r_frac.push(r);
        for (store, &v) in self.class_i.iter_mut().zip(class_i) {
            store.push(v);
        }
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Population-wide susceptible fraction per sample.
    pub fn s(&self) -> &[f64] {
        &self.s_frac
    }

    /// Population-wide infected fraction per sample.
    pub fn i(&self) -> &[f64] {
        &self.i_frac
    }

    /// Population-wide recovered fraction per sample.
    pub fn r(&self) -> &[f64] {
        &self.r_frac
    }

    /// Number of degree classes tracked.
    pub fn n_classes(&self) -> usize {
        self.class_i.len()
    }

    /// Infected fraction within degree class `k` per sample.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `k` is out of range.
    pub fn class_infected(&self, k: usize) -> Result<&[f64]> {
        self.class_i
            .get(k)
            .map(Vec::as_slice)
            .ok_or_else(|| SimError::InvalidConfig(format!("class index {k} out of range")))
    }

    /// Final infected fraction.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn final_infected(&self) -> f64 {
        *self.i_frac.last().expect("empty trajectory")
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut t = SimTrajectory::new(2);
        t.push(0.0, 0.9, 0.1, 0.0, &[0.1, 0.2]);
        t.push(1.0, 0.8, 0.1, 0.1, &[0.05, 0.15]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.times(), &[0.0, 1.0]);
        assert_eq!(t.s(), &[0.9, 0.8]);
        assert_eq!(t.i(), &[0.1, 0.1]);
        assert_eq!(t.r(), &[0.0, 0.1]);
        assert_eq!(t.n_classes(), 2);
        assert_eq!(t.class_infected(1).unwrap(), &[0.2, 0.15]);
        assert!(t.class_infected(5).is_err());
        assert_eq!(t.final_infected(), 0.1);
    }
}
