//! Contiguous per-agent state arenas for large-scale ABM replicas.
//!
//! The pre-arena simulator kept the active-node set as a `Vec<usize>`
//! (8 bytes per node — 8 MB of index traffic per step at 1M nodes) and
//! allocated a fresh per-class probability vector every step. This
//! module packs everything the step loop touches into flat, exact-sized
//! arenas so a million-node replica fits comfortably and iterates
//! cache-linearly:
//!
//! * [`BitSet`] — the active (non-isolated) node set at one bit per
//!   node (125 KB at 1M nodes), iterated in ascending node order so the
//!   RNG consumption order is **identical** to the old index-vector
//!   walk — bit-for-bit trajectory parity at equal seeds is pinned by
//!   `tests/abm_arena_identity.rs`.
//! * [`StateArena`] — current and next state codes as two `n`-byte
//!   arrays ([`NodeState`] is a one-byte fieldless enum; asserted
//!   below) with a `commit` that copies next → current, exactly like
//!   the historical `copy_from_slice` double buffer.
//!
//! Neither structure allocates after construction; the step loop in
//! [`crate::abm::run`] performs zero heap allocations per step.

use crate::NodeState;

/// One-byte state codes are what makes the arena an arena: `2 * n`
/// bytes of state for `n` agents.
const _: () = assert!(std::mem::size_of::<NodeState>() == 1);

/// A fixed-capacity bitset over node ids `0..n`, iterated in ascending
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    n: usize,
    ones: usize,
}

impl BitSet {
    /// An empty set over `0..n`.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0u64; n.div_ceil(64)],
            n,
            ones: 0,
        }
    }

    /// Builds the set containing every `u in 0..n` with `pred(u)`.
    pub fn from_pred(n: usize, mut pred: impl FnMut(usize) -> bool) -> Self {
        let mut set = BitSet::new(n);
        for u in 0..n {
            if pred(u) {
                set.insert(u);
            }
        }
        set
    }

    /// Inserts `u`; no-op if already present.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn insert(&mut self, u: usize) {
        assert!(u < self.n, "bit {u} out of range 0..{}", self.n);
        let (w, b) = (u / 64, u % 64);
        if self.words[w] & (1u64 << b) == 0 {
            self.words[w] |= 1u64 << b;
            self.ones += 1;
        }
    }

    /// Whether `u` is in the set (`false` for out-of-range `u`).
    pub fn contains(&self, u: usize) -> bool {
        u < self.n && self.words[u / 64] & (1u64 << (u % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Capacity (the `n` of construction).
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Iterates set bits in ascending order — the same node order as a
    /// sorted index vector, which is what keeps RNG consumption
    /// bit-identical to the pre-arena simulator.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over the set bits of a [`BitSet`].
pub struct BitSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

/// Double-buffered per-agent state codes: two flat `n`-byte arrays and
/// a commit that mirrors the historical `copy_from_slice` hand-over.
#[derive(Debug, Clone)]
pub struct StateArena {
    current: Vec<NodeState>,
    next: Vec<NodeState>,
}

impl StateArena {
    /// Takes ownership of the seeded initial states; `next` starts as a
    /// copy (the synchronous update only writes changed nodes).
    pub fn new(initial: Vec<NodeState>) -> Self {
        let next = initial.clone();
        StateArena {
            current: initial,
            next,
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The committed (current-step) states.
    pub fn current(&self) -> &[NodeState] {
        &self.current
    }

    /// State of node `u` at the current step.
    pub fn get(&self, u: usize) -> NodeState {
        self.current[u]
    }

    /// Stages `state` for node `u`, visible after [`StateArena::commit`].
    pub fn stage(&mut self, u: usize, state: NodeState) {
        self.next[u] = state;
    }

    /// Publishes all staged writes (next → current), leaving `next`
    /// equal to `current` for the following step.
    pub fn commit(&mut self) {
        self.current.copy_from_slice(&self.next);
    }

    /// Split borrow for sharded stepping: the committed states as a
    /// shared slice plus the staging buffer as an exclusive slice, so a
    /// worker pool can hand out disjoint `next` shards while every
    /// shard reads the full `current` snapshot.
    pub fn buffers(&mut self) -> (&[NodeState], &mut [NodeState]) {
        (&self.current, &mut self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_iterates_in_ascending_order() {
        let members = [0usize, 1, 63, 64, 65, 127, 128, 199];
        let mut set = BitSet::new(200);
        // Insert out of order; iteration must still be ascending.
        for &u in members.iter().rev() {
            set.insert(u);
        }
        let got: Vec<usize> = set.iter().collect();
        assert_eq!(got, members);
        assert_eq!(set.count(), members.len());
    }

    #[test]
    fn bitset_matches_index_vector_on_random_membership() {
        // SplitMix64-style pseudo-random membership, no rand dependency.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = move || {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x
        };
        for n in [0usize, 1, 63, 64, 65, 1000] {
            let wanted: Vec<bool> = (0..n).map(|_| step() % 3 == 0).collect();
            let set = BitSet::from_pred(n, |u| wanted[u]);
            let reference: Vec<usize> = (0..n).filter(|&u| wanted[u]).collect();
            assert_eq!(set.iter().collect::<Vec<_>>(), reference, "n = {n}");
            assert_eq!(set.count(), reference.len());
            for u in 0..n {
                assert_eq!(set.contains(u), wanted[u]);
            }
            assert!(!set.contains(n));
        }
    }

    #[test]
    fn bitset_insert_is_idempotent() {
        let mut set = BitSet::new(10);
        set.insert(3);
        set.insert(3);
        assert_eq!(set.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitset_rejects_out_of_range_insert() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn arena_commit_publishes_staged_writes() {
        let mut arena = StateArena::new(vec![NodeState::Susceptible; 4]);
        arena.stage(2, NodeState::Infected);
        // Staged writes are invisible until commit.
        assert_eq!(arena.get(2), NodeState::Susceptible);
        arena.commit();
        assert_eq!(arena.get(2), NodeState::Infected);
        // Uncommitted nodes carry forward.
        assert_eq!(arena.get(0), NodeState::Susceptible);
        assert_eq!(arena.len(), 4);
        assert!(!arena.is_empty());
    }
}
