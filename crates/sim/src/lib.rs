//! Agent-based Monte Carlo validation of the mean-field rumor model.
//!
//! The heterogeneous SIR ODE of `rumor-core` is a *mean-field*
//! approximation: it assumes an uncorrelated network summarized by its
//! degree distribution. This crate implements the microscopic stochastic
//! process whose expectation that mean field approximates, so the
//! reproduction can verify the approximation on the Digg-like graph:
//!
//! * each susceptible `u` contacts one uniformly random neighbor per
//!   unit time; if that neighbor `v` is infected, `u` adopts the rumor
//!   with hazard `λ(k_u) · ω(k_v)/k_v` (which averages to the ODE's
//!   `λ(k_u) Θ(t)` on an uncorrelated network);
//! * susceptibles are immunized at rate `ε1`, spreaders blocked at rate
//!   `ε2`.
//!
//! Two simulators are provided: a synchronous discrete-time ABM
//! ([`abm`]) and an exact event-driven Gillespie SSA ([`gillespie`]).
//! [`ensemble`] averages independent runs and compares against the ODE.
//!
//! Both simulators optionally carry the demographic inflow `α`
//! (recovered users recycle into susceptibles per class at total class
//! rate `α·size_c`, matching the mean-field conserving convention).

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod abm;
pub mod arena;
pub mod ensemble;
pub mod gillespie;

mod error;
mod traj;

pub use error::SimError;
pub use traj::SimTrajectory;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Discrete node states of the agent-based process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Has not heard the rumor, susceptible to it.
    Susceptible,
    /// Believes and spreads the rumor.
    Infected,
    /// Immunized or blocked; inert.
    Recovered,
}
