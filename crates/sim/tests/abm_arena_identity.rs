//! Bit-identity of the arena-based ABM step loop against the retained
//! pre-arena reference implementation.
//!
//! The arena rewrite (flat state bytes + active-node bitset) must not
//! change a single RNG draw: at equal seeds the two simulators consume
//! the generator in the same order and therefore produce *identical*
//! trajectories — not statistically close, but equal to the bit. This
//! is the contract that lets large-scale numbers be compared directly
//! with every pre-arena baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::barabasi_albert;
use rumor_net::graph::{EdgeKind, Graph};
use rumor_sim::abm::{run, run_reference, AbmConfig};

fn params_for(graph: &Graph, lambda0: f64, alpha: f64) -> ModelParams {
    let classes = DegreeClasses::from_graph(graph).unwrap();
    ModelParams::builder(classes)
        .alpha(alpha)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap()
}

fn assert_bit_identical(a: &rumor_sim::SimTrajectory, b: &rumor_sim::SimTrajectory) {
    assert_eq!(a.len(), b.len(), "trajectory lengths differ");
    let pairs = [(a.s(), b.s()), (a.i(), b.i()), (a.r(), b.r())];
    for (xs, ys) in pairs {
        for (idx, (x, y)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {idx}: {x} vs {y}");
        }
    }
    assert_eq!(a, b);
}

#[test]
fn arena_run_is_bit_identical_to_reference_across_seeds() {
    let mut topo_rng = StdRng::seed_from_u64(7);
    let graph = barabasi_albert(600, 3, &mut topo_rng).unwrap();
    let params = params_for(&graph, 0.4, 0.0);
    let cfg = AbmConfig {
        tf: 20.0,
        eps1: 0.05,
        eps2: 0.1,
        ..Default::default()
    };
    for seed in [0u64, 1, 9, 42, 777] {
        let fast = run(&graph, &params, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        let slow = run_reference(&graph, &params, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        assert_bit_identical(&fast, &slow);
    }
}

#[test]
fn arena_run_is_bit_identical_with_recycling_and_isolated_nodes() {
    // Isolated nodes exercise the bitset's sparse-iteration path (the
    // reference walks a filtered index vector); recycling (α > 0)
    // exercises the recovered-per-class scan and the hoisted
    // recycle-probability buffer.
    let mut topo_rng = StdRng::seed_from_u64(11);
    let core = barabasi_albert(300, 2, &mut topo_rng).unwrap();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for u in 0..core.node_count() {
        for &v in core.neighbors(u) {
            if u < v as usize {
                edges.push((u, v as usize));
            }
        }
    }
    // Append 50 isolated nodes past the connected core.
    let graph = Graph::from_edges(core.node_count() + 50, &edges, EdgeKind::Undirected).unwrap();
    let params = params_for(&graph, 0.6, 0.02);
    let cfg = AbmConfig {
        tf: 30.0,
        alpha: 0.02,
        eps1: 0.02,
        eps2: 0.15,
        record_every: 3,
        ..Default::default()
    };
    for seed in [2u64, 13, 1234] {
        let fast = run(&graph, &params, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        let slow = run_reference(&graph, &params, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        assert_bit_identical(&fast, &slow);
    }
}

#[test]
fn arena_run_is_bit_identical_on_heavy_tailed_topology() {
    // A hub-dominated graph concentrates contacts on few nodes; the
    // neighbor-sampling RNG draws must still line up one-for-one.
    let mut topo_rng = StdRng::seed_from_u64(23);
    let graph = barabasi_albert(1000, 6, &mut topo_rng).unwrap();
    let params = params_for(&graph, 1.2, 0.0);
    let cfg = AbmConfig {
        tf: 12.0,
        initial_infected: 0.01,
        eps2: 0.05,
        ..Default::default()
    };
    let fast = run(&graph, &params, &cfg, &mut StdRng::seed_from_u64(5)).unwrap();
    let slow = run_reference(&graph, &params, &cfg, &mut StdRng::seed_from_u64(5)).unwrap();
    assert_bit_identical(&fast, &slow);
}
