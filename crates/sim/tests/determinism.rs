//! Parallel-vs-serial determinism: ensemble statistics, failure records
//! and quorum outcomes must be **bit-identical** for every thread count.
//!
//! These tests pass explicit worker counts through the `*_threads`
//! variants rather than mutating the process-wide override, so they are
//! safe under the test harness's own parallelism.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::barabasi_albert;
use rumor_net::graph::Graph;
use rumor_sim::abm::{run_sharded, run_sharded_reference, AbmConfig, SHARD};
use rumor_sim::ensemble::{
    run_ensemble_isolated_threads, run_ensemble_isolated_with_threads, run_ensemble_threads,
    EnsembleResult, IsolationPolicy, Simulator,
};
use rumor_sim::{SimError, SimTrajectory};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn setup() -> (Graph, ModelParams) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = barabasi_albert(400, 3, &mut rng).unwrap();
    let classes = DegreeClasses::from_graph(&g).unwrap();
    let p = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap();
    (g, p)
}

fn cfg() -> AbmConfig {
    AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 10.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 10,
    }
}

/// Asserts two ensemble results are bit-identical (not merely close).
fn assert_bit_identical(a: &EnsembleResult, b: &EnsembleResult, label: &str) {
    assert_eq!(a.runs, b.runs, "{label}: runs");
    let pairs = [
        (&a.times, &b.times, "times"),
        (&a.i_mean, &b.i_mean, "i_mean"),
        (&a.i_std, &b.i_std, "i_std"),
    ];
    for (xs, ys, field) in pairs {
        assert_eq!(xs.len(), ys.len(), "{label}: {field} length");
        for (i, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: {field}[{i}] differs: {x} vs {y}"
            );
        }
    }
}

#[test]
fn abm_ensemble_bit_identical_across_thread_counts() {
    let (g, p) = setup();
    let serial =
        run_ensemble_threads(&g, &p, &cfg(), Simulator::Synchronous, 8, 42, Some(1)).unwrap();
    for t in THREAD_COUNTS {
        let par =
            run_ensemble_threads(&g, &p, &cfg(), Simulator::Synchronous, 8, 42, Some(t)).unwrap();
        assert_bit_identical(&serial, &par, &format!("abm, {t} threads"));
    }
}

#[test]
fn gillespie_ensemble_bit_identical_across_thread_counts() {
    let (g, p) = setup();
    let cfg = AbmConfig {
        dt: 1.0,
        tf: 20.0,
        record_every: 1,
        ..cfg()
    };
    let serial = run_ensemble_threads(&g, &p, &cfg, Simulator::Gillespie, 6, 11, Some(1)).unwrap();
    for t in THREAD_COUNTS {
        let par = run_ensemble_threads(&g, &p, &cfg, Simulator::Gillespie, 6, 11, Some(t)).unwrap();
        assert_bit_identical(&serial, &par, &format!("gillespie, {t} threads"));
    }
}

#[test]
fn isolated_ensemble_bit_identical_across_thread_counts() {
    let (g, p) = setup();
    let policy = IsolationPolicy::default();
    let serial = run_ensemble_isolated_threads(
        &g,
        &p,
        &cfg(),
        Simulator::Synchronous,
        8,
        17,
        &policy,
        Some(1),
    )
    .unwrap();
    for t in THREAD_COUNTS {
        let par = run_ensemble_isolated_threads(
            &g,
            &p,
            &cfg(),
            Simulator::Synchronous,
            8,
            17,
            &policy,
            Some(t),
        )
        .unwrap();
        assert_bit_identical(
            &serial.result,
            &par.result,
            &format!("isolated, {t} threads"),
        );
        assert_eq!(serial.failures, par.failures, "{t} threads: failures");
        assert_eq!(serial.attempted, par.attempted);
    }
}

#[test]
fn json_tracing_does_not_perturb_ensemble_output() {
    // Observability must be free of observer effects: with the JSON
    // trace sink and rollups enabled, ensemble statistics stay
    // bit-identical to the untraced baseline at every thread count.
    let (g, p) = setup();
    let baseline =
        run_ensemble_threads(&g, &p, &cfg(), Simulator::Synchronous, 8, 42, Some(1)).unwrap();

    let path = std::env::temp_dir().join(format!("rumor_sim_trace_{}.jsonl", std::process::id()));
    rumor_obs::init_file(rumor_obs::LogFormat::Json, &path).expect("open trace file");
    rumor_obs::set_rollup(true);
    for t in [1usize, 4] {
        let traced =
            run_ensemble_threads(&g, &p, &cfg(), Simulator::Synchronous, 8, 42, Some(t)).unwrap();
        assert_bit_identical(&baseline, &traced, &format!("traced, {t} threads"));
    }
    rumor_obs::set_rollup(false);
    rumor_obs::shutdown();

    // The sink received well-formed JSON-lines records for the runs.
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "trace file is empty");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"type\":"), "record without a type: {line}");
    }
    assert!(text.contains("\"name\":\"sim.ensemble\""));
    assert!(text.contains("\"name\":\"sim.replica\""));
    // And the rollup aggregated the replica spans (2 runs x 8 replicas,
    // plus whatever concurrently running tests contributed).
    let snap = rumor_obs::snapshot();
    assert!(
        snap.span_stat("sim.replica").map_or(0, |s| s.count) >= 16,
        "rollup missed replica spans"
    );
}

/// A graph wide enough to span several [`SHARD`]-sized node ranges, so
/// the sharded stepper genuinely fans out instead of collapsing to its
/// single-shard serial path.
fn multi_shard_setup() -> (Graph, ModelParams) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 2 * SHARD + 1_000;
    let g = barabasi_albert(n, 2, &mut rng).unwrap();
    let classes = DegreeClasses::from_graph(&g).unwrap();
    let p = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap();
    (g, p)
}

#[test]
fn sharded_abm_bit_identical_across_inner_pool_sizes() {
    // Tentpole contract, ABM leg: across multiple shards, the pooled
    // stepper reproduces the serial reference bit for bit at every
    // inner pool size.
    let (g, p) = multi_shard_setup();
    let cfg = AbmConfig {
        tf: 1.0,
        eps1: 0.02,
        eps2: 0.1,
        alpha: 0.01,
        record_every: 2,
        ..cfg()
    };
    let reference = run_sharded_reference(&g, &p, &cfg, 77).unwrap();
    assert_eq!(
        run_sharded(&g, &p, &cfg, 77, None).unwrap(),
        reference,
        "no pool"
    );
    for t in THREAD_COUNTS {
        let pool = rumor_par::InnerPool::new(t);
        let pooled = run_sharded(&g, &p, &cfg, 77, Some(&pool)).unwrap();
        assert_eq!(pooled, reference, "{t} inner threads");
    }
}

#[test]
fn sharded_replicas_with_faults_bit_identical_across_outer_and_inner_threads() {
    // Nested parallelism: replica-level (outer) workers each stepping a
    // multi-shard ABM through their own inner pool, with injected
    // replica faults. Statistics and exclusion records must match the
    // fully serial run bit for bit over the whole outer x inner matrix.
    let (g, p) = multi_shard_setup();
    let cfg = AbmConfig {
        tf: 1.0,
        eps1: 0.02,
        eps2: 0.1,
        record_every: 5,
        ..cfg()
    };
    let policy = IsolationPolicy::default();
    let runner = |inner: usize| {
        let (g, p, cfg) = (&g, &p, &cfg);
        move |r: usize, seed: u64| -> Result<SimTrajectory, SimError> {
            if r % 4 == 3 {
                return Err(SimError::Inconsistent(format!(
                    "injected fault in replica {r}"
                )));
            }
            let pool = rumor_par::InnerPool::new(inner);
            run_sharded(g, p, cfg, seed, Some(&pool))
        }
    };
    let serial = run_ensemble_isolated_with_threads(6, 900, &policy, Some(1), runner(1)).unwrap();
    assert!(serial.degraded());
    assert_eq!(serial.failures.len(), 1);
    assert_eq!(serial.result.runs, 5);
    for outer in [1usize, 2, 4] {
        for inner in [1usize, 2, 4] {
            let par =
                run_ensemble_isolated_with_threads(6, 900, &policy, Some(outer), runner(inner))
                    .unwrap();
            assert_bit_identical(
                &serial.result,
                &par.result,
                &format!("outer {outer} x inner {inner}"),
            );
            assert_eq!(
                serial.failures, par.failures,
                "outer {outer} x inner {inner}: failures"
            );
            assert_eq!(serial.attempted, par.attempted);
        }
    }
}

/// Two-rumor compartment model on the small-tier Digg classes (264 of
/// them, so the partitioned kernels genuinely split and the inner pool
/// dispatches instead of collapsing to the single-chunk serial path).
fn two_rumor_params() -> rumor_core::params::ModelParams {
    let dataset =
        rumor_datasets::digg::DiggDataset::synthesize(rumor_datasets::digg::DiggConfig::small())
            .expect("digg small tier");
    ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("two-rumor params")
}

fn two_rumor_initial(n: usize, i0: f64) -> Vec<f64> {
    let mut y0 = vec![0.0; 4 * n];
    for j in 0..n {
        y0[j] = 1.0 - i0;
        y0[n + j] = i0;
    }
    y0
}

#[test]
fn two_rumor_trajectory_bit_identical_across_inner_pool_sizes() {
    // Tentpole contract, compartment leg: the two-rumor RHS runs through
    // the same partitioned kernels as the paper model, so the full state
    // trajectory must be bit-identical with and without an inner pool,
    // at every pool size.
    use rumor_compartments::model::CompartmentModel;
    use rumor_compartments::schedule::ConstantMultiControl;
    use rumor_compartments::simulate::{simulate_compartments, CompartmentSimOptions};
    use rumor_models::two_rumor::TwoRumorModel;

    let p = two_rumor_params();
    let model = TwoRumorModel::from_params(&p, 0.03, 0.05, 0.08, 0.5, 5.0, 10.0).unwrap();
    assert!(
        rumor_core::kernels::partition_count(model.n_classes()) > 1,
        "class count must span several kernel partitions"
    );
    let y0 = two_rumor_initial(model.n_classes(), 0.1);
    let options = CompartmentSimOptions {
        n_out: 41,
        ..Default::default()
    };
    let run = |pool: Option<std::sync::Arc<rumor_par::InnerPool>>| {
        simulate_compartments(
            &model,
            ConstantMultiControl::new(vec![0.05, 0.1]),
            &y0,
            10.0,
            &options,
            pool,
        )
        .unwrap()
    };
    let reference = run(None);
    for t in THREAD_COUNTS {
        let pooled = run(Some(std::sync::Arc::new(rumor_par::InnerPool::new(t))));
        assert_eq!(pooled.times(), reference.times(), "{t} inner threads");
        for (k, (a, b)) in pooled
            .states()
            .iter()
            .zip(reference.states().iter())
            .enumerate()
        {
            for (c, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{t} inner threads: state[{k}][{c}] differs: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn two_rumor_ensemble_bit_identical_across_outer_and_inner_threads() {
    // CI's RUMOR_INNER_THREADS axis, two-rumor leg: replica-level
    // (outer) ensemble workers each integrating the two-rumor
    // compartment ODE through their own inner pool. Merged statistics
    // must match the fully serial run bit for bit over the whole
    // {1,4} x {1,4} outer x inner matrix.
    use rumor_compartments::schedule::ConstantMultiControl;
    use rumor_compartments::simulate::{simulate_compartments, CompartmentSimOptions};
    use rumor_models::two_rumor::TwoRumorModel;

    let p = two_rumor_params();
    let n = p.n_classes();
    let policy = IsolationPolicy::default();
    let runner = |inner: usize| {
        let p = &p;
        move |_r: usize, seed: u64| -> Result<SimTrajectory, SimError> {
            let model = TwoRumorModel::from_params(p, 0.03, 0.05, 0.08, 0.5, 5.0, 10.0)
                .map_err(|e| SimError::Inconsistent(e.to_string()))?;
            // Seed-dependent initial prevalence, deterministic per replica.
            let i0 = 0.02 + (seed % 11) as f64 / 100.0;
            let options = CompartmentSimOptions {
                n_out: 21,
                ..Default::default()
            };
            let pool = std::sync::Arc::new(rumor_par::InnerPool::new(inner));
            let sol = simulate_compartments(
                &model,
                ConstantMultiControl::new(vec![0.05, 0.1]),
                &two_rumor_initial(n, i0),
                10.0,
                &options,
                Some(pool),
            )
            .map_err(|e| SimError::Inconsistent(e.to_string()))?;
            // Fold the 4-band trajectory into the ensemble's s/i/r shape:
            // both rumors count as "infected", the truth level rides in
            // the per-class channel so it enters the merged statistics.
            let mut traj = SimTrajectory::new(1);
            for (k, state) in sol.states().iter().enumerate() {
                let mean = |c: usize| state[c * n..(c + 1) * n].iter().sum::<f64>() / n as f64;
                let (s, i1, i2, r) = (mean(0), mean(1), mean(2), mean(3));
                traj.push(sol.times()[k], s, i1 + i2, r, &[i2]);
            }
            Ok(traj)
        }
    };
    let serial = run_ensemble_isolated_with_threads(6, 4242, &policy, Some(1), runner(1)).unwrap();
    assert!(!serial.degraded());
    assert_eq!(serial.result.runs, 6);
    for outer in [1usize, 4] {
        for inner in [1usize, 4] {
            let par =
                run_ensemble_isolated_with_threads(6, 4242, &policy, Some(outer), runner(inner))
                    .unwrap();
            assert_bit_identical(
                &serial.result,
                &par.result,
                &format!("two-rumor, outer {outer} x inner {inner}"),
            );
            assert_eq!(serial.failures, par.failures);
            assert_eq!(serial.attempted, par.attempted);
        }
    }
}

/// Deterministic synthetic trajectory whose level encodes the seed, so
/// the merged statistics expose any replica-order mixup.
fn synth_traj(len: usize, seed: u64) -> SimTrajectory {
    let level = (seed % 97) as f64 / 97.0;
    let mut t = SimTrajectory::new(1);
    for k in 0..len {
        t.push(k as f64, 1.0 - level, level, 0.0, &[level]);
    }
    t
}

#[test]
fn injected_faults_produce_identical_exclusions_for_every_thread_count() {
    // Replicas 2, 5 and 8 fail; replica 6 records on the wrong grid.
    // Exclusion records (index, seed, reason) and survivor statistics
    // must match the serial run bit for bit at every thread count.
    let policy = IsolationPolicy::default();
    let runner = |r: usize, seed: u64| -> Result<SimTrajectory, SimError> {
        if r % 3 == 2 {
            Err(SimError::Inconsistent(format!("injected fault in {r}")))
        } else if r == 6 {
            Ok(synth_traj(9, seed))
        } else {
            Ok(synth_traj(5, seed))
        }
    };
    let serial = run_ensemble_isolated_with_threads(12, 300, &policy, Some(1), runner).unwrap();
    assert!(serial.degraded());
    assert_eq!(serial.failures.len(), 5);
    assert_eq!(serial.result.runs, 7);
    for t in THREAD_COUNTS {
        let par = run_ensemble_isolated_with_threads(12, 300, &policy, Some(t), runner).unwrap();
        assert_bit_identical(
            &serial.result,
            &par.result,
            &format!("faulted, {t} threads"),
        );
        assert_eq!(serial.failures, par.failures, "{t} threads: failures");
        assert_eq!(serial.attempted, par.attempted);
        assert_eq!(serial.summary(), par.summary());
    }
}

#[test]
fn quorum_violation_is_identical_for_every_thread_count() {
    let policy = IsolationPolicy::default();
    let runner = |r: usize, _seed: u64| -> Result<SimTrajectory, SimError> {
        if r == 0 {
            Ok(synth_traj(3, 1))
        } else {
            Err(SimError::Inconsistent("dead".into()))
        }
    };
    for t in THREAD_COUNTS {
        let err = run_ensemble_isolated_with_threads(5, 0, &policy, Some(t), runner).unwrap_err();
        match err {
            SimError::QuorumNotMet {
                succeeded,
                required,
                attempted,
            } => assert_eq!((succeeded, required, attempted), (1, 3, 5), "{t} threads"),
            other => panic!("{t} threads: expected QuorumNotMet, got {other}"),
        }
    }
}

#[test]
fn strict_ensemble_error_matches_serial_first_failure_semantics() {
    // The strict path reports the error of the smallest failing replica
    // index regardless of which worker hit an error first.
    let (g, p) = setup();
    // A degenerate config that makes every replica fail identically:
    // zero runs is rejected before spawning, so instead drive the
    // isolated runner through the strict merge with a poisoned runner.
    let runner = |r: usize, _seed: u64| -> Result<SimTrajectory, SimError> {
        Err(SimError::Inconsistent(format!("replica {r} poisoned")))
    };
    let policy = IsolationPolicy { quorum: 0.01 };
    for t in THREAD_COUNTS {
        let err = run_ensemble_isolated_with_threads(6, 0, &policy, Some(t), runner).unwrap_err();
        assert!(
            matches!(err, SimError::QuorumNotMet { succeeded: 0, .. }),
            "{t} threads"
        );
    }
    // And the all-success strict path still agrees with itself.
    let a = run_ensemble_threads(&g, &p, &cfg(), Simulator::Synchronous, 4, 5, Some(8)).unwrap();
    let b = run_ensemble_threads(&g, &p, &cfg(), Simulator::Synchronous, 4, 5, Some(1)).unwrap();
    assert_bit_identical(&a, &b, "strict self-agreement");
}
