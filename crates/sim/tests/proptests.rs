//! Property-based tests of the agent-based simulators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::barabasi_albert;
use rumor_net::graph::Graph;
use rumor_sim::abm::{self, AbmConfig};
use rumor_sim::gillespie;

fn setup(seed: u64, lambda0: f64) -> (Graph, ModelParams) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = barabasi_albert(300, 3, &mut rng).unwrap();
    let classes = DegreeClasses::from_graph(&g).unwrap();
    let p = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap();
    (g, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn abm_fractions_always_partition_population(
        seed in 0u64..200,
        eps1 in 0.0..0.3_f64,
        eps2 in 0.0..0.3_f64,
        i0 in 0.01..0.5_f64,
    ) {
        let (g, p) = setup(7, 0.5);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 0.2,
            tf: 6.0,
            eps1,
            eps2,
            initial_infected: i0,
            record_every: 5,
        };
        let traj = abm::run(&g, &p, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        for k in 0..traj.len() {
            let total = traj.s()[k] + traj.i()[k] + traj.r()[k];
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(traj.i()[k] >= 0.0 && traj.i()[k] <= 1.0);
        }
    }

    #[test]
    fn gillespie_fractions_always_partition_population(
        seed in 0u64..200,
        eps2 in 0.01..0.3_f64,
    ) {
        let (g, p) = setup(9, 0.5);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 1.0,
            tf: 8.0,
            eps1: 0.01,
            eps2,
            initial_infected: 0.1,
            record_every: 1,
        };
        let traj = gillespie::run(&g, &p, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        for k in 0..traj.len() {
            let total = traj.s()[k] + traj.i()[k] + traj.r()[k];
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        // Recording grid covers [0, tf].
        prop_assert_eq!(traj.times()[0], 0.0);
        prop_assert!((traj.times().last().unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn without_demography_susceptibles_never_increase(
        seed in 0u64..100,
    ) {
        // With α = 0, S can only shrink (S → I or S → R).
        let (g, p) = setup(11, 0.8);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 0.2,
            tf: 10.0,
            eps1: 0.05,
            eps2: 0.05,
            initial_infected: 0.1,
            record_every: 1,
        };
        let traj = abm::run(&g, &p, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        for w in traj.s().windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
        // And R never decreases.
        for w in traj.r().windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn class_infected_fractions_bounded(
        seed in 0u64..100,
        i0 in 0.05..0.4_f64,
    ) {
        let (g, p) = setup(13, 1.0);
        let cfg = AbmConfig {
            alpha: 0.0,
            dt: 0.25,
            tf: 5.0,
            eps1: 0.0,
            eps2: 0.1,
            initial_infected: i0,
            record_every: 2,
        };
        let traj = abm::run(&g, &p, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        for c in 0..traj.n_classes() {
            for &v in traj.class_infected(c).unwrap() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
