//! Chunked, auto-vectorizable numeric kernels for the per-class hot
//! loops.
//!
//! Every kernel here comes in two forms:
//!
//! * the **chunked** form — fixed-width [`LANES`]-lane loops over
//!   [`slice::chunks_exact`] with a scalar in-order remainder, shaped so
//!   LLVM's auto-vectorizer turns the lane loop into SIMD without any
//!   `unsafe` or intrinsics;
//! * a **scalar reference** (`*_scalar`) — a differently-written plain
//!   indexed implementation with the *same association order* (per-lane
//!   strided sums combined lane 0 → lane `LANES−1`, then the remainder in
//!   order), so the two must agree **bit for bit** on every input.
//!
//! The bit-identity contract is what makes the fast path safe to evolve:
//! `tests/kernel_identity.rs` pins chunked against scalar at class
//! counts {1, 7, 8, 9, 264, 848}, so any future rewrite that silently
//! changes the floating-point association order fails the suite instead
//! of drifting results.
//!
//! Reductions (the `Θ` dot product, the adjoint coupling sum) are the
//! kernels that *need* this treatment: a strict left-fold cannot be
//! vectorized without reassociation, so we fix one deterministic
//! lane-wise association and implement it twice. Element-wise maps (the
//! SIR and costate right-hand sides) are order-free per element; they are
//! chunked over disjoint `split_at_mut` slices so the optimizer can prove
//! independence.
//!
//! On top of the lane-chunked kernels sits the **partitioned** layer
//! (`*_partitioned`, `*_pooled`): fixed [`PART_CHUNK`]-wide partitions
//! whose boundaries depend only on the class count, with per-chunk
//! partials folded in chunk order. The same plan runs serially or on a
//! [`rumor_par::InnerPool`], so a solve is bit-identical at 1..N
//! threads; for `n <= PART_CHUNK` the partitioned reductions equal the
//! plain chunked kernels bit for bit.

/// Fixed vector width of every chunked kernel (f64 lanes). Eight lanes
/// fill one AVX-512 register or two AVX2 registers — wide enough to
/// saturate either, narrow enough that the remainder loop stays cheap at
/// small class counts.
pub const LANES: usize = 8;

/// Chunked dot product `Σ_i a_i b_i`.
///
/// Accumulates into [`LANES`] independent lanes (block-strided), combines
/// the lanes in index order, then folds the remainder in order. The
/// result is deterministic and bit-identical to [`dot_scalar`] — but it
/// is *not* the naive left-fold sum, so compare against the reference,
/// not against `iter().sum()`.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length; release
/// builds truncate to the shorter length via `zip`.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / LANES;
    let split = blocks * LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    let mut total = 0.0;
    for lane in acc {
        total += lane;
    }
    for (x, y) in a[split..n].iter().zip(&b[split..n]) {
        total += x * y;
    }
    total
}

/// Scalar reference for [`dot`]: per-lane strided sequential sums,
/// combined in the same fixed order. Bit-identical to the chunked form
/// by construction.
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let blocks = n / LANES;
    let mut total = 0.0;
    for j in 0..LANES {
        let mut lane = 0.0;
        let mut i = j;
        while i < blocks * LANES {
            lane += a[i] * b[i];
            i += LANES;
        }
        total += lane;
    }
    for i in blocks * LANES..n {
        total += a[i] * b[i];
    }
    total
}

/// Chunked adjoint coupling sum `Σ_i (a_i − b_i) · w_i · s_i` (the
/// network term of the costate `φ̇` equation, with `a = ψ`, `b = φ`,
/// `w = λ`, `s = S`). Same lane association as [`dot`].
pub fn coupling_sum(a: &[f64], b: &[f64], w: &[f64], s: &[f64]) -> f64 {
    debug_assert!(b.len() >= a.len() && w.len() >= a.len() && s.len() >= a.len());
    let n = a.len();
    let blocks = n / LANES;
    let split = blocks * LANES;
    let mut acc = [0.0f64; LANES];
    let mut base = 0;
    while base < split {
        for j in 0..LANES {
            let i = base + j;
            acc[j] += (a[i] - b[i]) * w[i] * s[i];
        }
        base += LANES;
    }
    let mut total = 0.0;
    for lane in acc {
        total += lane;
    }
    for i in split..n {
        total += (a[i] - b[i]) * w[i] * s[i];
    }
    total
}

/// Scalar reference for [`coupling_sum`], strided per lane.
pub fn coupling_sum_scalar(a: &[f64], b: &[f64], w: &[f64], s: &[f64]) -> f64 {
    let n = a.len();
    let blocks = n / LANES;
    let mut total = 0.0;
    for j in 0..LANES {
        let mut lane = 0.0;
        let mut i = j;
        while i < blocks * LANES {
            lane += (a[i] - b[i]) * w[i] * s[i];
            i += LANES;
        }
        total += lane;
    }
    for i in blocks * LANES..n {
        total += (a[i] - b[i]) * w[i] * s[i];
    }
    total
}

/// Chunked element-wise SIR right-hand side (paper Eq. (1)) for one
/// evaluation instant:
///
/// ```text
/// ds_i = α − λ_i s_i Θ − ε1 s_i
/// di_i = λ_i s_i Θ − ε2 i_i
/// dr_i = ε1 s_i + ε2 i_i − recycle
/// ```
///
/// Element-wise maps carry no reduction, so chunking does not change any
/// association — the output is bit-identical to [`sir_rhs_scalar`] *and*
/// to the historical per-index loop. The chunked shape (disjoint
/// `chunks_exact` over every slice) is what lets LLVM keep the three
/// streams in registers and vectorize the body.
#[allow(clippy::too_many_arguments)]
pub fn sir_rhs(
    s: &[f64],
    inf: &[f64],
    lambda: &[f64],
    theta: f64,
    alpha: f64,
    eps1: f64,
    eps2: f64,
    recycle: f64,
    ds: &mut [f64],
    di: &mut [f64],
    dr: &mut [f64],
) {
    let n = s.len();
    // Re-slice every stream to the common length so the optimizer sees
    // one shared bound and drops the per-index checks inside the lanes.
    let (s, inf, lambda) = (&s[..n], &inf[..n], &lambda[..n]);
    let (ds, di, dr) = (&mut ds[..n], &mut di[..n], &mut dr[..n]);
    let split = (n / LANES) * LANES;
    let mut base = 0;
    while base < split {
        for j in 0..LANES {
            let i = base + j;
            let force = lambda[i] * s[i] * theta;
            ds[i] = alpha - force - eps1 * s[i];
            di[i] = force - eps2 * inf[i];
            dr[i] = eps1 * s[i] + eps2 * inf[i] - recycle;
        }
        base += LANES;
    }
    for i in split..n {
        let force = lambda[i] * s[i] * theta;
        ds[i] = alpha - force - eps1 * s[i];
        di[i] = force - eps2 * inf[i];
        dr[i] = eps1 * s[i] + eps2 * inf[i] - recycle;
    }
}

/// Scalar reference for [`sir_rhs`]: the historical plain indexed loop.
#[allow(clippy::too_many_arguments)]
pub fn sir_rhs_scalar(
    s: &[f64],
    inf: &[f64],
    lambda: &[f64],
    theta: f64,
    alpha: f64,
    eps1: f64,
    eps2: f64,
    recycle: f64,
    ds: &mut [f64],
    di: &mut [f64],
    dr: &mut [f64],
) {
    for i in 0..s.len() {
        let force = lambda[i] * s[i] * theta;
        ds[i] = alpha - force - eps1 * s[i];
        di[i] = force - eps2 * inf[i];
        dr[i] = eps1 * s[i] + eps2 * inf[i] - recycle;
    }
}

/// Chunked element-wise costate right-hand side (paper Eqs. (15)–(16),
/// exact-adjoint form) for one evaluation instant, given the already
/// reduced network scalars `theta` and `coupling`:
///
/// ```text
/// dψ_j = −2 c1 ε1² s_j + ψ_j (λ_j Θ + ε1) − φ_j λ_j Θ
/// dφ_j = −2 c2 ε2² i_j + θw_j · coupling + φ_j ε2
/// ```
#[allow(clippy::too_many_arguments)]
pub fn costate_rhs(
    s: &[f64],
    inf: &[f64],
    psi: &[f64],
    phi: &[f64],
    lambda: &[f64],
    theta_w: &[f64],
    theta: f64,
    coupling: f64,
    c1e1sq2: f64,
    c2e2sq2: f64,
    eps1: f64,
    eps2: f64,
    dpsi: &mut [f64],
    dphi: &mut [f64],
) {
    let n = s.len();
    debug_assert!(
        inf.len() == n
            && psi.len() == n
            && phi.len() == n
            && lambda.len() >= n
            && theta_w.len() >= n
            && dpsi.len() == n
            && dphi.len() == n
    );
    let split = (n / LANES) * LANES;
    let mut base = 0;
    while base < split {
        for j in 0..LANES {
            let i = base + j;
            dpsi[i] =
                -c1e1sq2 * s[i] + psi[i] * (lambda[i] * theta + eps1) - phi[i] * lambda[i] * theta;
            dphi[i] = -c2e2sq2 * inf[i] + theta_w[i] * coupling + phi[i] * eps2;
        }
        base += LANES;
    }
    for i in split..n {
        dpsi[i] =
            -c1e1sq2 * s[i] + psi[i] * (lambda[i] * theta + eps1) - phi[i] * lambda[i] * theta;
        dphi[i] = -c2e2sq2 * inf[i] + theta_w[i] * coupling + phi[i] * eps2;
    }
}

/// Scalar reference for [`costate_rhs`]: the plain indexed loop.
#[allow(clippy::too_many_arguments)]
pub fn costate_rhs_scalar(
    s: &[f64],
    inf: &[f64],
    psi: &[f64],
    phi: &[f64],
    lambda: &[f64],
    theta_w: &[f64],
    theta: f64,
    coupling: f64,
    c1e1sq2: f64,
    c2e2sq2: f64,
    eps1: f64,
    eps2: f64,
    dpsi: &mut [f64],
    dphi: &mut [f64],
) {
    for i in 0..s.len() {
        dpsi[i] =
            -c1e1sq2 * s[i] + psi[i] * (lambda[i] * theta + eps1) - phi[i] * lambda[i] * theta;
        dphi[i] = -c2e2sq2 * inf[i] + theta_w[i] * coupling + phi[i] * eps2;
    }
}

/// Fixed partition width (in classes) of the intra-replica work-sharding
/// layer — a multiple of [`LANES`] so every full chunk keeps the 8-lane
/// association intact. Partition boundaries depend only on the problem
/// size, never on the thread count, so the reduction tree (per-chunk
/// lane-wise partials folded in chunk order) is identical at 1..N
/// threads. For `n <= PART_CHUNK` the partitioned reductions collapse to
/// a single chunk and are bit-identical to [`dot`]/[`coupling_sum`];
/// 848 classes (full-scale Digg) split into 4 chunks.
pub const PART_CHUNK: usize = 256;

/// Largest partition count the pooled reductions handle on the stack
/// (`MAX_PARTIALS × PART_CHUNK = 32768` classes); beyond that the
/// partitioned *serial* path runs — same chunk plan, same bits.
pub const MAX_PARTIALS: usize = 128;

/// Number of fixed [`PART_CHUNK`]-wide partitions covering `n` classes.
pub const fn partition_count(n: usize) -> usize {
    rumor_par::chunk_count(n, PART_CHUNK)
}

/// Folds per-chunk partials in chunk order: `p[0] + p[1] + …` (0.0 when
/// empty). This is the ordered reduction tree shared by the serial and
/// pooled partitioned paths.
pub fn combine_partials(partials: &[f64]) -> f64 {
    let mut iter = partials.iter();
    let Some(&first) = iter.next() else {
        return 0.0;
    };
    let mut total = first;
    for &p in iter {
        total += p;
    }
    total
}

/// Serial reduction over the fixed partition plan: evaluates
/// `chunk_val(lo, hi)` per chunk and folds in chunk order.
fn reduce_partitioned(n: usize, chunk_val: impl Fn(usize, usize) -> f64) -> f64 {
    let chunks = partition_count(n);
    let mut total = 0.0;
    for c in 0..chunks {
        let (lo, hi) = rumor_par::chunk_bounds(n, PART_CHUNK, c);
        let partial = chunk_val(lo, hi);
        if c == 0 {
            total = partial;
        } else {
            total += partial;
        }
    }
    total
}

/// Partitioned dot product: per-[`PART_CHUNK`] [`dot`] partials folded in
/// chunk order. Bit-identical to [`dot`] for `n <= PART_CHUNK` and to
/// [`dot_pooled`] at every pool size.
pub fn dot_partitioned(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    reduce_partitioned(n, |lo, hi| dot(&a[lo..hi], &b[lo..hi]))
}

/// Scalar reference for [`dot_partitioned`]: the same chunk plan over
/// [`dot_scalar`] partials.
pub fn dot_partitioned_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    reduce_partitioned(n, |lo, hi| dot_scalar(&a[lo..hi], &b[lo..hi]))
}

/// Pooled [`dot_partitioned`]: chunk partials are computed on the pool's
/// threads into per-chunk slots and folded in chunk order on the calling
/// thread. The chunk plan is thread-count independent, so the result is
/// bit-identical to the serial partitioned form at every pool size.
pub fn dot_pooled(pool: &rumor_par::InnerPool, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let chunks = partition_count(n);
    if pool.threads() <= 1 || chunks <= 1 || chunks > MAX_PARTIALS {
        return dot_partitioned(a, b);
    }
    let mut partials = [0.0f64; MAX_PARTIALS];
    pool.map_into(&mut partials[..chunks], |c| {
        let (lo, hi) = rumor_par::chunk_bounds(n, PART_CHUNK, c);
        dot(&a[lo..hi], &b[lo..hi])
    });
    combine_partials(&partials[..chunks])
}

/// Partitioned adjoint coupling sum; see [`dot_partitioned`].
pub fn coupling_sum_partitioned(a: &[f64], b: &[f64], w: &[f64], s: &[f64]) -> f64 {
    let n = a.len();
    reduce_partitioned(n, |lo, hi| {
        coupling_sum(&a[lo..hi], &b[lo..hi], &w[lo..hi], &s[lo..hi])
    })
}

/// Scalar reference for [`coupling_sum_partitioned`].
pub fn coupling_sum_partitioned_scalar(a: &[f64], b: &[f64], w: &[f64], s: &[f64]) -> f64 {
    let n = a.len();
    reduce_partitioned(n, |lo, hi| {
        coupling_sum_scalar(&a[lo..hi], &b[lo..hi], &w[lo..hi], &s[lo..hi])
    })
}

/// Pooled [`coupling_sum_partitioned`]; see [`dot_pooled`].
pub fn coupling_sum_pooled(
    pool: &rumor_par::InnerPool,
    a: &[f64],
    b: &[f64],
    w: &[f64],
    s: &[f64],
) -> f64 {
    let n = a.len();
    let chunks = partition_count(n);
    if pool.threads() <= 1 || chunks <= 1 || chunks > MAX_PARTIALS {
        return coupling_sum_partitioned(a, b, w, s);
    }
    let mut partials = [0.0f64; MAX_PARTIALS];
    pool.map_into(&mut partials[..chunks], |c| {
        let (lo, hi) = rumor_par::chunk_bounds(n, PART_CHUNK, c);
        coupling_sum(&a[lo..hi], &b[lo..hi], &w[lo..hi], &s[lo..hi])
    });
    combine_partials(&partials[..chunks])
}

/// Pooled [`sir_rhs`]: class chunks are computed on the pool's threads
/// into disjoint output sub-slices. Element-wise maps carry no
/// reduction, so the output is bit-identical to the serial kernel at
/// every pool size and chunking level.
#[allow(clippy::too_many_arguments)]
pub fn sir_rhs_pooled(
    pool: &rumor_par::InnerPool,
    s: &[f64],
    inf: &[f64],
    lambda: &[f64],
    theta: f64,
    alpha: f64,
    eps1: f64,
    eps2: f64,
    recycle: f64,
    ds: &mut [f64],
    di: &mut [f64],
    dr: &mut [f64],
) {
    let n = s.len();
    if pool.threads() <= 1 || partition_count(n) <= 1 {
        sir_rhs(
            s, inf, lambda, theta, alpha, eps1, eps2, recycle, ds, di, dr,
        );
        return;
    }
    let chunks: Vec<(&mut [f64], &mut [f64], &mut [f64])> = ds[..n]
        .chunks_mut(PART_CHUNK)
        .zip(di[..n].chunks_mut(PART_CHUNK))
        .zip(dr[..n].chunks_mut(PART_CHUNK))
        .map(|((a, b), c)| (a, b, c))
        .collect();
    pool.scatter(chunks, |c, (ds_c, di_c, dr_c)| {
        let (lo, hi) = rumor_par::chunk_bounds(n, PART_CHUNK, c);
        sir_rhs(
            &s[lo..hi],
            &inf[lo..hi],
            &lambda[lo..hi],
            theta,
            alpha,
            eps1,
            eps2,
            recycle,
            ds_c,
            di_c,
            dr_c,
        );
    });
}

/// Pooled [`costate_rhs`]; see [`sir_rhs_pooled`].
#[allow(clippy::too_many_arguments)]
pub fn costate_rhs_pooled(
    pool: &rumor_par::InnerPool,
    s: &[f64],
    inf: &[f64],
    psi: &[f64],
    phi: &[f64],
    lambda: &[f64],
    theta_w: &[f64],
    theta: f64,
    coupling: f64,
    c1e1sq2: f64,
    c2e2sq2: f64,
    eps1: f64,
    eps2: f64,
    dpsi: &mut [f64],
    dphi: &mut [f64],
) {
    let n = s.len();
    if pool.threads() <= 1 || partition_count(n) <= 1 {
        costate_rhs(
            s, inf, psi, phi, lambda, theta_w, theta, coupling, c1e1sq2, c2e2sq2, eps1, eps2, dpsi,
            dphi,
        );
        return;
    }
    let chunks: Vec<(&mut [f64], &mut [f64])> = dpsi[..n]
        .chunks_mut(PART_CHUNK)
        .zip(dphi[..n].chunks_mut(PART_CHUNK))
        .collect();
    pool.scatter(chunks, |c, (dpsi_c, dphi_c)| {
        let (lo, hi) = rumor_par::chunk_bounds(n, PART_CHUNK, c);
        costate_rhs(
            &s[lo..hi],
            &inf[lo..hi],
            &psi[lo..hi],
            &phi[lo..hi],
            &lambda[lo..hi],
            &theta_w[lo..hi],
            theta,
            coupling,
            c1e1sq2,
            c2e2sq2,
            eps1,
            eps2,
            dpsi_c,
            dphi_c,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill without pulling `rand` into the
    /// unit tests: SplitMix64 mapped into [lo, hi).
    fn fill(seed: u64, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                lo + (hi - lo) * (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    const SIZES: [usize; 8] = [0, 1, 7, 8, 9, 63, 264, 848];

    #[test]
    fn dot_matches_scalar_bitwise() {
        for &n in &SIZES {
            let a = fill(1, n, -2.0, 2.0);
            let b = fill(2, n, -1.0, 3.0);
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_scalar(&a, &b).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn dot_is_close_to_naive_sum() {
        let a = fill(3, 848, 0.0, 1.0);
        let b = fill(4, 848, 0.0, 1.0);
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12 * naive.abs().max(1.0));
    }

    #[test]
    fn coupling_matches_scalar_bitwise() {
        for &n in &SIZES {
            let a = fill(5, n, -1.0, 1.0);
            let b = fill(6, n, -1.0, 1.0);
            let w = fill(7, n, 0.0, 2.0);
            let s = fill(8, n, 0.0, 1.0);
            assert_eq!(
                coupling_sum(&a, &b, &w, &s).to_bits(),
                coupling_sum_scalar(&a, &b, &w, &s).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn sir_rhs_matches_scalar_bitwise() {
        for &n in &SIZES {
            let s = fill(9, n, 0.0, 1.0);
            let inf = fill(10, n, 0.0, 1.0);
            let lambda = fill(11, n, 0.0, 0.5);
            let (mut ds, mut di, mut dr) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            let (mut ds2, mut di2, mut dr2) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            sir_rhs(
                &s, &inf, &lambda, 0.3, 0.01, 0.2, 0.05, 0.01, &mut ds, &mut di, &mut dr,
            );
            sir_rhs_scalar(
                &s, &inf, &lambda, 0.3, 0.01, 0.2, 0.05, 0.01, &mut ds2, &mut di2, &mut dr2,
            );
            for i in 0..n {
                assert_eq!(ds[i].to_bits(), ds2[i].to_bits());
                assert_eq!(di[i].to_bits(), di2[i].to_bits());
                assert_eq!(dr[i].to_bits(), dr2[i].to_bits());
            }
        }
    }

    #[test]
    fn costate_rhs_matches_scalar_bitwise() {
        for &n in &SIZES {
            let s = fill(12, n, 0.0, 1.0);
            let inf = fill(13, n, 0.0, 1.0);
            let psi = fill(14, n, -1.0, 1.0);
            let phi = fill(15, n, -1.0, 1.0);
            let lambda = fill(16, n, 0.0, 0.5);
            let tw = fill(17, n, 0.0, 0.1);
            let (mut dp, mut df) = (vec![0.0; n], vec![0.0; n]);
            let (mut dp2, mut df2) = (vec![0.0; n], vec![0.0; n]);
            costate_rhs(
                &s, &inf, &psi, &phi, &lambda, &tw, 0.2, 0.7, 0.4, 0.8, 0.1, 0.2, &mut dp, &mut df,
            );
            costate_rhs_scalar(
                &s, &inf, &psi, &phi, &lambda, &tw, 0.2, 0.7, 0.4, 0.8, 0.1, 0.2, &mut dp2,
                &mut df2,
            );
            for i in 0..n {
                assert_eq!(dp[i].to_bits(), dp2[i].to_bits());
                assert_eq!(df[i].to_bits(), df2[i].to_bits());
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot_scalar(&[], &[]), 0.0);
        assert_eq!(coupling_sum(&[], &[], &[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot_partitioned(&[], &[]), 0.0);
        assert_eq!(combine_partials(&[]), 0.0);
    }

    #[test]
    fn partitioned_reductions_match_their_scalar_mirrors_bitwise() {
        for &n in &SIZES {
            let a = fill(21, n, -2.0, 2.0);
            let b = fill(22, n, -1.0, 3.0);
            let w = fill(23, n, 0.0, 2.0);
            let s = fill(24, n, 0.0, 1.0);
            assert_eq!(
                dot_partitioned(&a, &b).to_bits(),
                dot_partitioned_scalar(&a, &b).to_bits(),
                "dot n = {n}"
            );
            assert_eq!(
                coupling_sum_partitioned(&a, &b, &w, &s).to_bits(),
                coupling_sum_partitioned_scalar(&a, &b, &w, &s).to_bits(),
                "coupling n = {n}"
            );
            // Single-partition inputs collapse to the plain chunked form.
            if n <= PART_CHUNK {
                assert_eq!(
                    dot_partitioned(&a, &b).to_bits(),
                    dot(&a, &b).to_bits(),
                    "single-chunk dot n = {n}"
                );
                assert_eq!(
                    coupling_sum_partitioned(&a, &b, &w, &s).to_bits(),
                    coupling_sum(&a, &b, &w, &s).to_bits(),
                    "single-chunk coupling n = {n}"
                );
            }
        }
    }

    #[test]
    fn pooled_kernels_are_bit_identical_to_serial_at_every_pool_size() {
        for &n in &[9usize, 256, 264, 848, 1031] {
            let a = fill(31, n, -2.0, 2.0);
            let b = fill(32, n, -1.0, 3.0);
            let w = fill(33, n, 0.0, 2.0);
            let s = fill(34, n, 0.0, 1.0);
            let dot_serial = dot_partitioned(&a, &b);
            let coup_serial = coupling_sum_partitioned(&a, &b, &w, &s);
            let (mut ds, mut di, mut dr) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            sir_rhs(
                &a, &b, &w, 0.3, 0.01, 0.2, 0.05, 0.01, &mut ds, &mut di, &mut dr,
            );
            let (mut dp, mut df) = (vec![0.0; n], vec![0.0; n]);
            costate_rhs(
                &a, &b, &w, &s, &w, &s, 0.2, 0.7, 0.4, 0.8, 0.1, 0.2, &mut dp, &mut df,
            );
            for threads in [1usize, 2, 4, 8] {
                let pool = rumor_par::InnerPool::new(threads);
                assert_eq!(
                    dot_pooled(&pool, &a, &b).to_bits(),
                    dot_serial.to_bits(),
                    "dot n = {n}, threads = {threads}"
                );
                assert_eq!(
                    coupling_sum_pooled(&pool, &a, &b, &w, &s).to_bits(),
                    coup_serial.to_bits(),
                    "coupling n = {n}, threads = {threads}"
                );
                let (mut ds2, mut di2, mut dr2) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
                sir_rhs_pooled(
                    &pool, &a, &b, &w, 0.3, 0.01, 0.2, 0.05, 0.01, &mut ds2, &mut di2, &mut dr2,
                );
                let (mut dp2, mut df2) = (vec![0.0; n], vec![0.0; n]);
                costate_rhs_pooled(
                    &pool, &a, &b, &w, &s, &w, &s, 0.2, 0.7, 0.4, 0.8, 0.1, 0.2, &mut dp2, &mut df2,
                );
                for i in 0..n {
                    assert_eq!(ds[i].to_bits(), ds2[i].to_bits(), "dS n = {n}, i = {i}");
                    assert_eq!(di[i].to_bits(), di2[i].to_bits(), "dI n = {n}, i = {i}");
                    assert_eq!(dr[i].to_bits(), dr2[i].to_bits(), "dR n = {n}, i = {i}");
                    assert_eq!(dp[i].to_bits(), dp2[i].to_bits(), "dψ n = {n}, i = {i}");
                    assert_eq!(df[i].to_bits(), df2[i].to_bits(), "dφ n = {n}, i = {i}");
                }
            }
        }
    }
}
