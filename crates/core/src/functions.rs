//! The degree-dependent rate functions of the model.
//!
//! Two families parameterize how a node's social connectivity `k` shapes
//! the dynamics:
//!
//! * [`AcceptanceRate`] — `λ(k)`, the probability a susceptible with
//!   degree `k` believes the rumor on contact. The paper's experiments
//!   use `λ(k) = k` scaled to hit a target threshold (see
//!   `equilibrium::calibrate_acceptance`).
//! * [`Infectivity`] — `ω(k)`, how many effective contacts an infected
//!   node of degree `k` produces. The paper argues for the saturating
//!   `ω(k) = k^β/(1 + k^γ)` (Section III) and uses `β = γ = 0.5`.

/// The rumor acceptance rate `λ(k)` of susceptible individuals.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum AcceptanceRate {
    /// Degree-independent acceptance: `λ(k) = λ0`.
    Constant {
        /// The constant acceptance rate.
        lambda0: f64,
    },
    /// Acceptance grows linearly with connectivity: `λ(k) = λ0·k`
    /// (the paper's Section V choice, with `λ0` calibrated).
    LinearInDegree {
        /// Scale factor applied to the degree.
        lambda0: f64,
    },
    /// Acceptance saturates at `λ_max` with half-saturation degree `κ`:
    /// `λ(k) = λ_max · k / (k + κ)`. Keeps `λ(k) < 1` for every degree,
    /// honouring the paper's Section II constraint `0 < λ(k) < 1`.
    Saturating {
        /// Supremum of the acceptance rate.
        lambda_max: f64,
        /// Degree at which half of `lambda_max` is reached.
        half_k: f64,
    },
}

impl AcceptanceRate {
    /// Evaluates `λ(k)`.
    pub fn eval(&self, k: usize) -> f64 {
        let kf = k as f64;
        match *self {
            AcceptanceRate::Constant { lambda0 } => lambda0,
            AcceptanceRate::LinearInDegree { lambda0 } => lambda0 * kf,
            AcceptanceRate::Saturating { lambda_max, half_k } => lambda_max * kf / (kf + half_k),
        }
    }

    /// Returns a copy with every output multiplied by `factor` — the
    /// primitive behind threshold calibration (`r0` is linear in the
    /// acceptance scale for every family).
    pub fn scaled(&self, factor: f64) -> AcceptanceRate {
        match *self {
            AcceptanceRate::Constant { lambda0 } => AcceptanceRate::Constant {
                lambda0: lambda0 * factor,
            },
            AcceptanceRate::LinearInDegree { lambda0 } => AcceptanceRate::LinearInDegree {
                lambda0: lambda0 * factor,
            },
            AcceptanceRate::Saturating { lambda_max, half_k } => AcceptanceRate::Saturating {
                lambda_max: lambda_max * factor,
                half_k,
            },
        }
    }

    /// Validates the family's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AcceptanceRate::Constant { lambda0 } | AcceptanceRate::LinearInDegree { lambda0 } => {
                if !(lambda0 > 0.0) || !lambda0.is_finite() {
                    return Err(format!(
                        "lambda0 must be positive and finite, got {lambda0}"
                    ));
                }
            }
            AcceptanceRate::Saturating { lambda_max, half_k } => {
                if !(lambda_max > 0.0) || !lambda_max.is_finite() {
                    return Err(format!(
                        "lambda_max must be positive and finite, got {lambda_max}"
                    ));
                }
                if !(half_k > 0.0) || !half_k.is_finite() {
                    return Err(format!("half_k must be positive and finite, got {half_k}"));
                }
            }
        }
        Ok(())
    }
}

/// The infectivity `ω(k)` of infected individuals.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Infectivity {
    /// Identical infectivity regardless of degree: `ω(k) = c`
    /// (Yang et al. 2007).
    Constant {
        /// The constant infectivity.
        c: f64,
    },
    /// Infectivity proportional to degree: `ω(k) = k`
    /// (Moreno–Pastor-Satorras–Vespignani 2002).
    Linear,
    /// Saturating nonlinear infectivity `ω(k) = k^β / (1 + k^γ)`
    /// (Zhu–Fu–Chen 2012; the paper's choice with `β = γ = 0.5`).
    Saturating {
        /// Numerator exponent.
        beta: f64,
        /// Denominator exponent.
        gamma: f64,
    },
}

impl Infectivity {
    /// Evaluates `ω(k)`.
    pub fn eval(&self, k: usize) -> f64 {
        let kf = k as f64;
        match *self {
            Infectivity::Constant { c } => c,
            Infectivity::Linear => kf,
            Infectivity::Saturating { beta, gamma } => kf.powf(beta) / (1.0 + kf.powf(gamma)),
        }
    }

    /// The paper's experimental setting: `ω(k) = k^0.5/(1 + k^0.5)`.
    pub fn paper_default() -> Self {
        Infectivity::Saturating {
            beta: 0.5,
            gamma: 0.5,
        }
    }

    /// Validates the family's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Infectivity::Constant { c } => {
                if !(c > 0.0) || !c.is_finite() {
                    return Err(format!("infectivity constant must be positive, got {c}"));
                }
            }
            Infectivity::Linear => {}
            Infectivity::Saturating { beta, gamma } => {
                if !beta.is_finite() || !gamma.is_finite() || beta <= 0.0 || gamma < 0.0 {
                    return Err(format!(
                        "saturating infectivity needs beta > 0 and gamma >= 0, got beta = {beta}, gamma = {gamma}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_families_evaluate() {
        assert_eq!(AcceptanceRate::Constant { lambda0: 0.3 }.eval(10), 0.3);
        assert_eq!(AcceptanceRate::LinearInDegree { lambda0: 0.1 }.eval(5), 0.5);
        let s = AcceptanceRate::Saturating {
            lambda_max: 0.8,
            half_k: 10.0,
        };
        assert!((s.eval(10) - 0.4).abs() < 1e-12);
        assert!(s.eval(100_000) < 0.8);
    }

    #[test]
    fn saturating_acceptance_bounded_below_max() {
        let s = AcceptanceRate::Saturating {
            lambda_max: 0.9,
            half_k: 5.0,
        };
        for k in 1..1000 {
            let v = s.eval(k);
            assert!(v > 0.0 && v < 0.9);
        }
    }

    #[test]
    fn scaled_multiplies_output() {
        for f in [0.5, 2.0] {
            let a = AcceptanceRate::LinearInDegree { lambda0: 0.2 };
            assert!((a.scaled(f).eval(7) - f * a.eval(7)).abs() < 1e-12);
            let c = AcceptanceRate::Constant { lambda0: 0.2 };
            assert!((c.scaled(f).eval(7) - f * c.eval(7)).abs() < 1e-12);
            let s = AcceptanceRate::Saturating {
                lambda_max: 0.4,
                half_k: 3.0,
            };
            assert!((s.scaled(f).eval(7) - f * s.eval(7)).abs() < 1e-12);
        }
    }

    #[test]
    fn acceptance_validation() {
        assert!(AcceptanceRate::Constant { lambda0: 0.1 }.validate().is_ok());
        assert!(AcceptanceRate::Constant { lambda0: 0.0 }
            .validate()
            .is_err());
        assert!(AcceptanceRate::LinearInDegree { lambda0: -1.0 }
            .validate()
            .is_err());
        assert!(AcceptanceRate::Saturating {
            lambda_max: 0.5,
            half_k: 0.0
        }
        .validate()
        .is_err());
        assert!(AcceptanceRate::Constant { lambda0: f64::NAN }
            .validate()
            .is_err());
    }

    #[test]
    fn infectivity_families_evaluate() {
        assert_eq!(Infectivity::Constant { c: 2.0 }.eval(99), 2.0);
        assert_eq!(Infectivity::Linear.eval(7), 7.0);
        let s = Infectivity::paper_default();
        // k = 4: sqrt(4)/(1+sqrt(4)) = 2/3.
        assert!((s.eval(4) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_infectivity_saturates() {
        let s = Infectivity::paper_default();
        // With β = γ the ratio approaches 1 from below.
        assert!(s.eval(1_000_000) < 1.0);
        assert!(s.eval(1_000_000) > s.eval(100));
    }

    #[test]
    fn infectivity_monotone_in_degree_for_paper_default() {
        let s = Infectivity::paper_default();
        let mut prev = 0.0;
        for k in 1..=1000 {
            let v = s.eval(k);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn infectivity_validation() {
        assert!(Infectivity::Constant { c: 1.0 }.validate().is_ok());
        assert!(Infectivity::Constant { c: 0.0 }.validate().is_err());
        assert!(Infectivity::Linear.validate().is_ok());
        assert!(Infectivity::Saturating {
            beta: 0.5,
            gamma: 0.5
        }
        .validate()
        .is_ok());
        assert!(Infectivity::Saturating {
            beta: 0.0,
            gamma: 0.5
        }
        .validate()
        .is_err());
        assert!(Infectivity::Saturating {
            beta: f64::NAN,
            gamma: 0.5
        }
        .validate()
        .is_err());
    }
}
