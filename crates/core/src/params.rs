//! Validated model parameters.

use crate::functions::{AcceptanceRate, Infectivity};
use crate::{CoreError, Result};
use rumor_net::degree::DegreeClasses;

/// Immutable, validated parameters of the heterogeneous SIR rumor model,
/// bound to a degree partition.
///
/// Construct through [`ModelParams::builder`]. The per-class rate vectors
/// `λ_i = λ(k_i)` and `ϕ_i = ω(k_i) P(k_i)` are precomputed so the ODE
/// right-hand side runs in `O(n)` per evaluation with no transcendental
/// calls.
///
/// # Example
///
/// ```
/// use rumor_core::functions::{AcceptanceRate, Infectivity};
/// use rumor_core::params::ModelParams;
/// use rumor_net::degree::DegreeClasses;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classes = DegreeClasses::from_degrees(&[1, 2, 2, 5])?;
/// let params = ModelParams::builder(classes)
///     .alpha(0.01)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
///     .infectivity(Infectivity::paper_default())
///     .build()?;
/// assert_eq!(params.n_classes(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    classes: DegreeClasses,
    alpha: f64,
    acceptance: AcceptanceRate,
    infectivity: Infectivity,
    lambda: Vec<f64>,
    phi: Vec<f64>,
    theta_w: Vec<f64>,
}

impl ModelParams {
    /// Starts building parameters over the given degree partition.
    pub fn builder(classes: DegreeClasses) -> ModelParamsBuilder {
        ModelParamsBuilder {
            classes,
            alpha: 0.0,
            acceptance: AcceptanceRate::LinearInDegree { lambda0: 1.0 },
            infectivity: Infectivity::paper_default(),
        }
    }

    /// The degree partition.
    pub fn classes(&self) -> &DegreeClasses {
        &self.classes
    }

    /// Number of degree classes `n`.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The inflow rate `α` of newly concerned (susceptible) users.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The acceptance-rate family `λ(·)`.
    pub fn acceptance(&self) -> &AcceptanceRate {
        &self.acceptance
    }

    /// The infectivity family `ω(·)`.
    pub fn infectivity(&self) -> &Infectivity {
        &self.infectivity
    }

    /// Precomputed `λ_i = λ(k_i)` for every class.
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// Precomputed `ϕ_i = ω(k_i) P(k_i)` for every class.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Precomputed fused weights `ϕ_i / ⟨k⟩ = ω(k_i) P(k_i) / ⟨k⟩`, so
    /// `Θ = Σ_i theta_w_i · I_i` is a single dot product — the per-call
    /// divide and repeated `phi()` indexing disappear from the ODE and
    /// co-state hot paths.
    pub fn theta_weights(&self) -> &[f64] {
        &self.theta_w
    }

    /// Mean degree `⟨k⟩` of the partition.
    pub fn mean_degree(&self) -> f64 {
        self.classes.mean_degree()
    }

    /// The coupling constant `Σ_i λ_i ϕ_i` that appears in the threshold
    /// `r0 = α Σ λϕ / (⟨k⟩ ε1 ε2)`.
    pub fn lambda_phi_sum(&self) -> f64 {
        self.lambda.iter().zip(&self.phi).map(|(l, p)| l * p).sum()
    }

    /// Returns a copy with the acceptance family replaced (rates are
    /// recomputed; the degree partition and `α` are kept).
    ///
    /// # Errors
    ///
    /// Propagates validation failures of the new family.
    pub fn with_acceptance(&self, acceptance: AcceptanceRate) -> Result<ModelParams> {
        ModelParams::builder(self.classes.clone())
            .alpha(self.alpha)
            .acceptance(acceptance)
            .infectivity(self.infectivity)
            .build()
    }
}

/// Builder for [`ModelParams`].
#[derive(Debug, Clone)]
pub struct ModelParamsBuilder {
    classes: DegreeClasses,
    alpha: f64,
    acceptance: AcceptanceRate,
    infectivity: Infectivity,
}

impl ModelParamsBuilder {
    /// Sets the inflow rate `α ≥ 0` of newly susceptible users.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the acceptance-rate family `λ(·)`.
    pub fn acceptance(mut self, acceptance: AcceptanceRate) -> Self {
        self.acceptance = acceptance;
        self
    }

    /// Sets the infectivity family `ω(·)`.
    pub fn infectivity(mut self, infectivity: Infectivity) -> Self {
        self.infectivity = infectivity;
        self
    }

    /// Validates and finalizes the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `α` is negative or
    /// non-finite, or if either rate family fails its own validation.
    pub fn build(self) -> Result<ModelParams> {
        if !(self.alpha >= 0.0) || !self.alpha.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                message: format!("must be non-negative and finite, got {}", self.alpha),
            });
        }
        self.acceptance
            .validate()
            .map_err(|message| CoreError::InvalidParameter {
                name: "acceptance",
                message,
            })?;
        self.infectivity
            .validate()
            .map_err(|message| CoreError::InvalidParameter {
                name: "infectivity",
                message,
            })?;
        let lambda: Vec<f64> = self
            .classes
            .degrees()
            .iter()
            .map(|&k| self.acceptance.eval(k))
            .collect();
        let phi: Vec<f64> = self
            .classes
            .iter()
            .map(|(k, p)| self.infectivity.eval(k) * p)
            .collect();
        let mean_k = self.classes.mean_degree();
        let theta_w: Vec<f64> = phi.iter().map(|f| f / mean_k).collect();
        Ok(ModelParams {
            classes: self.classes,
            alpha: self.alpha,
            acceptance: self.acceptance,
            infectivity: self.infectivity,
            lambda,
            phi,
            theta_w,
        })
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A tiny three-class partition used across the crate's unit tests.
    pub fn tiny_params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 1, 2, 2, 4]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.1 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> DegreeClasses {
        DegreeClasses::from_degrees(&[1, 1, 2, 4]).unwrap()
    }

    #[test]
    fn builder_produces_precomputed_rates() {
        let p = ModelParams::builder(classes())
            .alpha(0.05)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.1 })
            .infectivity(Infectivity::Linear)
            .build()
            .unwrap();
        assert_eq!(p.n_classes(), 3);
        // λ_i = 0.1 k_i for k = 1, 2, 4.
        assert_eq!(p.lambda(), &[0.1, 0.2, 0.4]);
        // ϕ_i = k_i P(k_i) = 1·0.5, 2·0.25, 4·0.25.
        let expect = [0.5, 0.5, 1.0];
        for (a, b) in p.phi().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((p.mean_degree() - 2.0).abs() < 1e-12);
        assert!((p.lambda_phi_sum() - (0.1 * 0.5 + 0.2 * 0.5 + 0.4 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn theta_weights_are_phi_over_mean_degree() {
        let p = ModelParams::builder(classes())
            .alpha(0.05)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.1 })
            .infectivity(Infectivity::Linear)
            .build()
            .unwrap();
        assert_eq!(p.theta_weights().len(), p.n_classes());
        for (w, f) in p.theta_weights().iter().zip(p.phi()) {
            assert_eq!(*w, f / p.mean_degree(), "fused weight must be ϕ/⟨k⟩");
        }
    }

    #[test]
    fn alpha_validation() {
        assert!(ModelParams::builder(classes()).alpha(-0.1).build().is_err());
        assert!(ModelParams::builder(classes())
            .alpha(f64::NAN)
            .build()
            .is_err());
        assert!(ModelParams::builder(classes()).alpha(0.0).build().is_ok());
    }

    #[test]
    fn rate_family_validation_propagates() {
        let err = ModelParams::builder(classes())
            .acceptance(AcceptanceRate::Constant { lambda0: -1.0 })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidParameter {
                name: "acceptance",
                ..
            }
        ));
        let err = ModelParams::builder(classes())
            .infectivity(Infectivity::Constant { c: 0.0 })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidParameter {
                name: "infectivity",
                ..
            }
        ));
    }

    #[test]
    fn with_acceptance_rescales_lambda() {
        let p = test_support::tiny_params();
        let doubled = p.with_acceptance(p.acceptance().scaled(2.0)).unwrap();
        for (a, b) in p.lambda().iter().zip(doubled.lambda()) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
        // ϕ is untouched.
        assert_eq!(p.phi(), doubled.phi());
    }

    #[test]
    fn default_infectivity_is_papers() {
        let p = ModelParams::builder(classes()).alpha(0.0).build().unwrap();
        assert_eq!(*p.infectivity(), Infectivity::paper_default());
    }
}
