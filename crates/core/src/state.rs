//! The per-class state of the rumor system.
//!
//! [`NetworkState`] holds `(S_i, I_i, R_i)` for every degree class and
//! converts to/from the flat layout used by the ODE integrators:
//! `[S_0..S_{n-1}, I_0..I_{n-1}, R_0..R_{n-1}]`.

use crate::params::ModelParams;
use crate::{CoreError, Result};

/// Densities of susceptible, infected and recovered users per degree
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkState {
    s: Vec<f64>,
    i: Vec<f64>,
    r: Vec<f64>,
}

impl NetworkState {
    /// Creates a state from explicit per-class densities.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the vectors differ in
    /// length, or [`CoreError::InvalidParameter`] if any density is
    /// negative or non-finite.
    pub fn new(s: Vec<f64>, i: Vec<f64>, r: Vec<f64>) -> Result<Self> {
        if s.len() != i.len() || s.len() != r.len() {
            return Err(CoreError::DimensionMismatch {
                expected: s.len(),
                found: i.len().max(r.len()),
            });
        }
        for (name, v) in [("s", &s), ("i", &i), ("r", &r)] {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(CoreError::InvalidParameter {
                    name: "density",
                    message: format!("compartment {name} contains a negative or non-finite value"),
                });
            }
        }
        Ok(NetworkState { s, i, r })
    }

    /// The paper's initial condition: every class starts with infected
    /// fraction `i0`, susceptible `1 − i0`, recovered `0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `i0 ∉ (0, 1]` or
    /// `n == 0`.
    pub fn initial_uniform(n: usize, i0: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n",
                message: "need at least one degree class".into(),
            });
        }
        if !(i0 > 0.0 && i0 <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "i0",
                message: format!("initial infection must lie in (0, 1], got {i0}"),
            });
        }
        Ok(NetworkState {
            s: vec![1.0 - i0; n],
            i: vec![i0; n],
            r: vec![0.0; n],
        })
    }

    /// Initial condition with a distinct infected fraction per class
    /// (`S_i = 1 − I_i`, `R_i = 0`), matching the paper's
    /// `S(t0) = 1 − I(t0), R(t0) = 0` convention.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any fraction is outside
    /// `[0, 1]` or the vector is empty.
    pub fn initial_from_infected(i: Vec<f64>) -> Result<Self> {
        if i.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "i",
                message: "need at least one degree class".into(),
            });
        }
        if i.iter().any(|&x| !(0.0..=1.0).contains(&x)) {
            return Err(CoreError::InvalidParameter {
                name: "i",
                message: "infected fractions must lie in [0, 1]".into(),
            });
        }
        let s: Vec<f64> = i.iter().map(|&x| 1.0 - x).collect();
        let r = vec![0.0; i.len()];
        Ok(NetworkState { s, i, r })
    }

    /// Number of degree classes.
    pub fn n_classes(&self) -> usize {
        self.s.len()
    }

    /// Susceptible densities per class.
    pub fn s(&self) -> &[f64] {
        &self.s
    }

    /// Infected densities per class.
    pub fn i(&self) -> &[f64] {
        &self.i
    }

    /// Recovered densities per class.
    pub fn r(&self) -> &[f64] {
        &self.r
    }

    /// Total infected density `Σ_i I_i` (the objective's terminal term).
    pub fn total_infected(&self) -> f64 {
        self.i.iter().sum()
    }

    /// Total susceptible density `Σ_i S_i`.
    pub fn total_susceptible(&self) -> f64 {
        self.s.iter().sum()
    }

    /// Total recovered density `Σ_i R_i`.
    pub fn total_recovered(&self) -> f64 {
        self.r.iter().sum()
    }

    /// The average rumor infectivity
    /// `Θ = (1/⟨k⟩) Σ_i ϕ(k_i) I_i` (paper Eq. (2) context).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the state and
    /// parameters disagree on the class count.
    pub fn theta(&self, params: &ModelParams) -> Result<f64> {
        if params.n_classes() != self.n_classes() {
            return Err(CoreError::DimensionMismatch {
                expected: params.n_classes(),
                found: self.n_classes(),
            });
        }
        let sum: f64 = params
            .phi()
            .iter()
            .zip(&self.i)
            .map(|(phi, i)| phi * i)
            .sum();
        Ok(sum / params.mean_degree())
    }

    /// Flattens to the integrator layout `[S.., I.., R..]`.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 * self.n_classes());
        out.extend_from_slice(&self.s);
        out.extend_from_slice(&self.i);
        out.extend_from_slice(&self.r);
        out
    }

    /// Reconstructs a state from the integrator layout.
    ///
    /// Small negative densities produced by integration error are clamped
    /// to zero.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `flat.len()` is not a
    /// multiple of 3, or [`CoreError::InvalidParameter`] on non-finite
    /// values.
    pub fn from_flat(flat: &[f64]) -> Result<Self> {
        if flat.len() % 3 != 0 || flat.is_empty() {
            return Err(CoreError::DimensionMismatch {
                expected: 3,
                found: flat.len(),
            });
        }
        if flat.iter().any(|x| !x.is_finite()) {
            return Err(CoreError::InvalidParameter {
                name: "flat",
                message: "state contains non-finite values".into(),
            });
        }
        let n = flat.len() / 3;
        let clamp = |x: f64| x.max(0.0);
        Ok(NetworkState {
            s: flat[..n].iter().copied().map(clamp).collect(),
            i: flat[n..2 * n].iter().copied().map(clamp).collect(),
            r: flat[2 * n..].iter().copied().map(clamp).collect(),
        })
    }

    /// Infinity-norm distance to another state across all compartments —
    /// the `Dist0`/`Dist+` metric of Figs. 2(a) and 3(a).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] on class-count mismatch.
    pub fn dist_inf(&self, other: &NetworkState) -> Result<f64> {
        if self.n_classes() != other.n_classes() {
            return Err(CoreError::DimensionMismatch {
                expected: self.n_classes(),
                found: other.n_classes(),
            });
        }
        let mut d: f64 = 0.0;
        for (a, b) in self.s.iter().zip(&other.s) {
            d = d.max((a - b).abs());
        }
        for (a, b) in self.i.iter().zip(&other.i) {
            d = d.max((a - b).abs());
        }
        for (a, b) in self.r.iter().zip(&other.r) {
            d = d.max((a - b).abs());
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::test_support::tiny_params;

    #[test]
    fn initial_uniform_layout() {
        let st = NetworkState::initial_uniform(3, 0.1).unwrap();
        assert_eq!(st.n_classes(), 3);
        assert!(st.s().iter().all(|&x| (x - 0.9).abs() < 1e-15));
        assert!(st.i().iter().all(|&x| (x - 0.1).abs() < 1e-15));
        assert!(st.r().iter().all(|&x| x == 0.0));
        assert!((st.total_infected() - 0.3).abs() < 1e-12);
        assert!((st.total_susceptible() - 2.7).abs() < 1e-12);
        assert_eq!(st.total_recovered(), 0.0);
    }

    #[test]
    fn initial_uniform_validation() {
        assert!(NetworkState::initial_uniform(0, 0.1).is_err());
        assert!(NetworkState::initial_uniform(3, 0.0).is_err());
        assert!(NetworkState::initial_uniform(3, 1.5).is_err());
        assert!(NetworkState::initial_uniform(3, 1.0).is_ok());
    }

    #[test]
    fn initial_from_infected() {
        let st = NetworkState::initial_from_infected(vec![0.1, 0.5, 0.0]).unwrap();
        assert_eq!(st.s(), &[0.9, 0.5, 1.0]);
        assert!(NetworkState::initial_from_infected(vec![]).is_err());
        assert!(NetworkState::initial_from_infected(vec![1.1]).is_err());
        assert!(NetworkState::initial_from_infected(vec![-0.1]).is_err());
    }

    #[test]
    fn new_validation() {
        assert!(NetworkState::new(vec![0.5], vec![0.5], vec![0.0]).is_ok());
        assert!(NetworkState::new(vec![0.5], vec![0.5, 0.1], vec![0.0]).is_err());
        assert!(NetworkState::new(vec![-0.1], vec![0.5], vec![0.0]).is_err());
        assert!(NetworkState::new(vec![f64::NAN], vec![0.5], vec![0.0]).is_err());
    }

    #[test]
    fn flat_roundtrip() {
        let st = NetworkState::new(vec![0.7, 0.6], vec![0.2, 0.3], vec![0.1, 0.1]).unwrap();
        let flat = st.to_flat();
        assert_eq!(flat, vec![0.7, 0.6, 0.2, 0.3, 0.1, 0.1]);
        let back = NetworkState::from_flat(&flat).unwrap();
        assert_eq!(st, back);
    }

    #[test]
    fn from_flat_clamps_negatives() {
        let st = NetworkState::from_flat(&[-1e-12, 0.5, 0.5]).unwrap();
        assert_eq!(st.s()[0], 0.0);
    }

    #[test]
    fn from_flat_validation() {
        assert!(NetworkState::from_flat(&[0.1, 0.2]).is_err());
        assert!(NetworkState::from_flat(&[]).is_err());
        assert!(NetworkState::from_flat(&[f64::INFINITY, 0.0, 0.0]).is_err());
    }

    #[test]
    fn theta_matches_hand_computation() {
        // tiny_params: degrees [1, 2, 4] with P = [1/2, 1/3, 1/6].
        let p = tiny_params();
        let st = NetworkState::initial_uniform(3, 0.1).unwrap();
        let omega = |k: f64| k.sqrt() / (1.0 + k.sqrt());
        let phi: Vec<f64> = [(1.0, 0.5), (2.0, 1.0 / 3.0), (4.0, 1.0 / 6.0)]
            .iter()
            .map(|&(k, pk)| omega(k) * pk)
            .collect();
        let mean_k = 1.0 * 0.5 + 2.0 / 3.0 + 4.0 / 6.0;
        let expect = phi.iter().map(|f| f * 0.1).sum::<f64>() / mean_k;
        assert!((st.theta(&p).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn theta_dimension_check() {
        let p = tiny_params();
        let st = NetworkState::initial_uniform(2, 0.1).unwrap();
        assert!(st.theta(&p).is_err());
    }

    #[test]
    fn dist_inf_basics() {
        let a = NetworkState::initial_uniform(2, 0.1).unwrap();
        let b = NetworkState::initial_uniform(2, 0.4).unwrap();
        // S differs by 0.3, I differs by 0.3, R identical.
        assert!((a.dist_inf(&b).unwrap() - 0.3).abs() < 1e-15);
        assert_eq!(a.dist_inf(&a).unwrap(), 0.0);
        let c = NetworkState::initial_uniform(3, 0.1).unwrap();
        assert!(a.dist_inf(&c).is_err());
    }
}
