//! The propagation threshold `r0` and the equilibrium solutions of
//! Theorem 1.
//!
//! * `r0 = (α/⟨k⟩) Σ_i λ(k_i) ϕ(k_i) / (ε1 ε2)` — rumors die out when
//!   `r0 ≤ 1` and persist when `r0 > 1` (Theorem 5).
//! * The **rumor-free equilibrium** `E0`: `S_i = α/ε1, I_i = 0,
//!   R_i = 1 − α/ε1` — always exists.
//! * The **endemic equilibrium** `E+`: exists iff `r0 > 1`, obtained by
//!   solving the scalar fixed-point equation `F(Θ*) = 0` (paper Eq. (5))
//!   with Brent's method and back-substituting Eq. (4).

use crate::params::ModelParams;
use crate::state::NetworkState;
use crate::{CoreError, Result};
use rumor_numerics::roots::{brent, RootConfig};

fn validate_eps(eps1: f64, eps2: f64) -> Result<()> {
    if !(eps1 > 0.0) || !eps1.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "eps1",
            message: format!("must be positive and finite, got {eps1}"),
        });
    }
    if !(eps2 > 0.0) || !eps2.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "eps2",
            message: format!("must be positive and finite, got {eps2}"),
        });
    }
    Ok(())
}

/// The propagation threshold
/// `r0 = (α/⟨k⟩) Σ_i λ(k_i) ϕ(k_i) / (ε1 ε2)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if either countermeasure rate
/// is non-positive (the threshold diverges without countermeasures).
pub fn r0(params: &ModelParams, eps1: f64, eps2: f64) -> Result<f64> {
    validate_eps(eps1, eps2)?;
    Ok(params.alpha() * params.lambda_phi_sum() / (params.mean_degree() * eps1 * eps2))
}

/// The rumor-free equilibrium `E0` (Theorem 1, case 1):
/// `S_i = α/ε1, I_i = 0, R_i = 1 − α/ε1` for every class.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] if `ε1 ≤ 0`, `ε2 ≤ 0`, or
///   `α > ε1` (which would make `S_i > 1` and `R_i < 0`).
pub fn zero_equilibrium(params: &ModelParams, eps1: f64, eps2: f64) -> Result<NetworkState> {
    validate_eps(eps1, eps2)?;
    let s = params.alpha() / eps1;
    if s > 1.0 {
        return Err(CoreError::InvalidParameter {
            name: "alpha",
            message: format!(
                "alpha/eps1 = {s} exceeds 1; the rumor-free equilibrium leaves the density simplex"
            ),
        });
    }
    let n = params.n_classes();
    NetworkState::new(vec![s; n], vec![0.0; n], vec![1.0 - s; n])
}

/// The endemic (positive) equilibrium `E+` (Theorem 1, case 2).
///
/// Solves `F(Θ*) = 1 − (1/⟨k⟩) Σ_i α λ_i ϕ_i / (ε2 (λ_i Θ* + ε1)) = 0`
/// for `Θ* > 0`, then
///
/// ```text
/// I⁺_i = α λ_i Θ⁺ / (ε2 (λ_i Θ⁺ + ε1))
/// S⁺_i = α / (λ_i Θ⁺ + ε1)
/// R⁺_i = 1 − S⁺_i − I⁺_i
/// ```
///
/// # Example
///
/// ```
/// use rumor_core::equilibrium::{calibrate_acceptance, positive_equilibrium};
/// use rumor_core::functions::AcceptanceRate;
/// use rumor_core::params::ModelParams;
/// use rumor_net::degree::DegreeClasses;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3])?;
/// let base = ModelParams::builder(classes)
///     .alpha(0.01)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
///     .build()?;
/// // Supercritical regime: the endemic equilibrium exists.
/// let (params, _) = calibrate_acceptance(&base, 2.0, 0.1, 0.05)?;
/// let eplus = positive_equilibrium(&params, 0.1, 0.05)?;
/// assert!(eplus.i().iter().all(|&i| i > 0.0));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::NoEndemicEquilibrium`] when `r0 ≤ 1` (Theorem 1 case 1).
/// * [`CoreError::InvalidParameter`] if the resulting densities leave
///   `[0, 1]` (the parameters then violate the paper's solution space Ω).
pub fn positive_equilibrium(params: &ModelParams, eps1: f64, eps2: f64) -> Result<NetworkState> {
    let threshold = r0(params, eps1, eps2)?;
    if threshold <= 1.0 {
        return Err(CoreError::NoEndemicEquilibrium { r0: threshold });
    }
    let theta_star = solve_theta_star(params, eps1, eps2)?;
    let n = params.n_classes();
    let mut s = Vec::with_capacity(n);
    let mut i = Vec::with_capacity(n);
    let mut r = Vec::with_capacity(n);
    for j in 0..n {
        let lam = params.lambda()[j];
        let denom = lam * theta_star + eps1;
        let sj = params.alpha() / denom;
        let ij = params.alpha() * lam * theta_star / (eps2 * denom);
        let rj = 1.0 - sj - ij;
        if !(0.0..=1.0).contains(&sj) || !(0.0..=1.0).contains(&ij) || rj < -1e-9 {
            return Err(CoreError::InvalidParameter {
                name: "equilibrium",
                message: format!(
                    "endemic equilibrium leaves the density simplex in class {j}: S = {sj}, I = {ij}, R = {rj}"
                ),
            });
        }
        s.push(sj);
        i.push(ij);
        r.push(rj.max(0.0));
    }
    NetworkState::new(s, i, r)
}

/// Solves the fixed-point equation `F(Θ*) = 0` of Eq. (5) for the
/// endemic coupling `Θ⁺ > 0`.
///
/// `F` is strictly increasing with `F(0⁺) = 1 − r0 < 0` and
/// `F(∞) = 1`, so a unique positive root exists whenever `r0 > 1`.
///
/// # Errors
///
/// Propagates threshold validation and root-search failures.
pub fn solve_theta_star(params: &ModelParams, eps1: f64, eps2: f64) -> Result<f64> {
    let threshold = r0(params, eps1, eps2)?;
    if threshold <= 1.0 {
        return Err(CoreError::NoEndemicEquilibrium { r0: threshold });
    }
    let f = |theta: f64| -> f64 {
        let mut sum = 0.0;
        for j in 0..params.n_classes() {
            let lam = params.lambda()[j];
            let phi = params.phi()[j];
            sum += params.alpha() * lam * phi / (eps2 * (lam * theta + eps1));
        }
        1.0 - sum / params.mean_degree()
    };
    // Bracket the root: F(tiny) < 0; double until positive.
    let lo = 1e-16;
    let mut hi = 1.0;
    let mut guard = 0;
    while f(hi) < 0.0 {
        hi *= 2.0;
        guard += 1;
        if guard > 200 {
            return Err(CoreError::InvalidParameter {
                name: "theta",
                message: "failed to bracket the endemic fixed point".into(),
            });
        }
    }
    let root = brent(
        f,
        lo,
        hi,
        &RootConfig {
            x_tol: 1e-14,
            f_tol: 1e-13,
            max_iter: 300,
        },
    )?;
    Ok(root.x)
}

/// Rescales the acceptance-rate family so that `r0` exactly equals
/// `target_r0` under the given countermeasures — the calibration knob
/// described in DESIGN.md §2 (`r0` is linear in the acceptance scale).
///
/// Returns the new parameters and the scale factor applied.
///
/// # Example
///
/// ```
/// use rumor_core::equilibrium::{calibrate_acceptance, r0};
/// use rumor_core::functions::AcceptanceRate;
/// use rumor_core::params::ModelParams;
/// use rumor_net::degree::DegreeClasses;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3])?;
/// let params = ModelParams::builder(classes)
///     .alpha(0.01)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
///     .build()?;
/// // Hit the paper's printed subcritical threshold exactly.
/// let (calibrated, _factor) = calibrate_acceptance(&params, 0.7220, 0.2, 0.05)?;
/// assert!((r0(&calibrated, 0.2, 0.05)? - 0.7220).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] if `target_r0 ≤ 0` or the current
///   threshold is zero (e.g. `α = 0`).
pub fn calibrate_acceptance(
    params: &ModelParams,
    target_r0: f64,
    eps1: f64,
    eps2: f64,
) -> Result<(ModelParams, f64)> {
    if !(target_r0 > 0.0) || !target_r0.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "target_r0",
            message: format!("must be positive and finite, got {target_r0}"),
        });
    }
    let current = r0(params, eps1, eps2)?;
    if current == 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "r0",
            message: "current threshold is zero (is alpha positive?); cannot calibrate".into(),
        });
    }
    let factor = target_r0 / current;
    let calibrated = params.with_acceptance(params.acceptance().scaled(factor))?;
    Ok((calibrated, factor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params(alpha: f64, lambda0: f64) -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(alpha)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    #[test]
    fn r0_matches_formula_single_class() {
        let classes = DegreeClasses::from_degrees(&[3, 3]).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.02)
            .acceptance(AcceptanceRate::Constant { lambda0: 0.4 })
            .infectivity(Infectivity::Linear)
            .build()
            .unwrap();
        // Single class k = 3: λ = 0.4, ϕ = 3·1 = 3, ⟨k⟩ = 3.
        // r0 = α λ ϕ / (⟨k⟩ ε1 ε2) = 0.02·0.4·3/(3·0.1·0.05).
        let expect = 0.02 * 0.4 * 3.0 / (3.0 * 0.1 * 0.05);
        assert!((r0(&p, 0.1, 0.05).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn r0_scales_linearly_in_alpha_and_inverse_in_eps() {
        let p1 = params(0.01, 0.1);
        let p2 = params(0.02, 0.1);
        let a = r0(&p1, 0.1, 0.1).unwrap();
        let b = r0(&p2, 0.1, 0.1).unwrap();
        assert!((b / a - 2.0).abs() < 1e-12);
        let c = r0(&p1, 0.2, 0.1).unwrap();
        assert!((a / c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn r0_rejects_zero_countermeasures() {
        let p = params(0.01, 0.1);
        assert!(r0(&p, 0.0, 0.1).is_err());
        assert!(r0(&p, 0.1, 0.0).is_err());
        assert!(r0(&p, -0.1, 0.1).is_err());
    }

    #[test]
    fn zero_equilibrium_structure() {
        let p = params(0.01, 0.1);
        let e0 = zero_equilibrium(&p, 0.2, 0.05).unwrap();
        for j in 0..e0.n_classes() {
            assert!((e0.s()[j] - 0.05).abs() < 1e-12);
            assert_eq!(e0.i()[j], 0.0);
            assert!((e0.r()[j] - 0.95).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_equilibrium_rejects_alpha_above_eps1() {
        let p = params(0.5, 0.1);
        assert!(zero_equilibrium(&p, 0.2, 0.05).is_err());
    }

    #[test]
    fn positive_equilibrium_requires_supercritical() {
        let p = params(0.01, 0.001);
        let t = r0(&p, 0.2, 0.05).unwrap();
        assert!(t < 1.0);
        assert!(matches!(
            positive_equilibrium(&p, 0.2, 0.05),
            Err(CoreError::NoEndemicEquilibrium { .. })
        ));
    }

    #[test]
    fn positive_equilibrium_is_a_fixed_point() {
        // Supercritical setting.
        let p = params(0.01, 0.5);
        let (eps1, eps2) = (0.05, 0.02);
        assert!(r0(&p, eps1, eps2).unwrap() > 1.0);
        let ep = positive_equilibrium(&p, eps1, eps2).unwrap();
        // Verify dS/dt = dI/dt = 0 at E+ (System (3)).
        let theta = ep.theta(&p).unwrap();
        for j in 0..p.n_classes() {
            let lam = p.lambda()[j];
            let ds = p.alpha() - lam * ep.s()[j] * theta - eps1 * ep.s()[j];
            let di = lam * ep.s()[j] * theta - eps2 * ep.i()[j];
            assert!(ds.abs() < 1e-9, "class {j}: dS = {ds}");
            assert!(di.abs() < 1e-9, "class {j}: dI = {di}");
        }
        // All infected densities strictly positive.
        assert!(ep.i().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn theta_star_solves_f() {
        let p = params(0.01, 0.5);
        let (eps1, eps2) = (0.05, 0.02);
        let theta = solve_theta_star(&p, eps1, eps2).unwrap();
        assert!(theta > 0.0);
        // Θ from the back-substituted equilibrium must agree.
        let ep = positive_equilibrium(&p, eps1, eps2).unwrap();
        assert!((ep.theta(&p).unwrap() - theta).abs() < 1e-10);
    }

    #[test]
    fn theta_star_subcritical_errors() {
        let p = params(0.001, 0.001);
        assert!(matches!(
            solve_theta_star(&p, 0.2, 0.05),
            Err(CoreError::NoEndemicEquilibrium { .. })
        ));
    }

    #[test]
    fn calibration_hits_target_exactly() {
        let p = params(0.01, 0.1);
        for target in [0.7220, 1.0, 2.1661] {
            let (cal, factor) = calibrate_acceptance(&p, target, 0.2, 0.05).unwrap();
            let got = r0(&cal, 0.2, 0.05).unwrap();
            assert!((got - target).abs() < 1e-10, "target {target}, got {got}");
            assert!(factor > 0.0);
        }
    }

    #[test]
    fn calibration_validation() {
        let p = params(0.01, 0.1);
        assert!(calibrate_acceptance(&p, 0.0, 0.2, 0.05).is_err());
        assert!(calibrate_acceptance(&p, -1.0, 0.2, 0.05).is_err());
        let zero_alpha = params(0.0, 0.1);
        assert!(calibrate_acceptance(&zero_alpha, 1.0, 0.2, 0.05).is_err());
    }

    #[test]
    fn calibrated_factor_scales_lambda() {
        let p = params(0.01, 0.1);
        let (cal, factor) = calibrate_acceptance(&p, 2.0, 0.2, 0.05).unwrap();
        for (a, b) in p.lambda().iter().zip(cal.lambda()) {
            assert!((a * factor - b).abs() < 1e-12);
        }
    }
}
