//! The heterogeneous SIR ODE system (paper Eq. (1)).

use crate::control::ControlSchedule;
use crate::params::ModelParams;
use rumor_ode::system::OdeSystem;
use rumor_par::InnerPool;
use std::sync::Arc;

/// How the recovered compartment treats the inflow `α`.
///
/// The paper prints `dR/dt = ε1 S + ε2 I` (Eq. (1)), under which the total
/// density grows at rate `α` — yet its own solution space Ω asserts
/// `S + I + R = 1` and its figures show `R → 1 − α/ε1`. The figures are
/// only consistent with an inflow that *recycles* recovered users into
/// susceptibles, i.e. `dR/dt = ε1 S + ε2 I − α`. Both conventions share
/// identical `S`/`I` dynamics (the first two equations do not involve
/// `R`), so the threshold `r0`, the equilibria's `S`/`I` components and
/// the optimal control are unaffected; only `R` trajectories and the
/// `Dist` metrics differ. See DESIGN.md §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MassConvention {
    /// `dR/dt = ε1 S + ε2 I − α`: preserves `S + I + R = 1`, matches the
    /// paper's figures. The default.
    #[default]
    Conserving,
    /// `dR/dt = ε1 S + ε2 I`: the system exactly as printed; total mass
    /// grows at rate `α`.
    AsPrinted,
}

/// The coupled `3n`-dimensional rumor ODE system under a countermeasure
/// schedule.
///
/// State layout: `[S_0..S_{n-1}, I_0..I_{n-1}, R_0..R_{n-1}]`.
///
/// # Example
///
/// ```
/// use rumor_core::control::ConstantControl;
/// use rumor_core::functions::{AcceptanceRate, Infectivity};
/// use rumor_core::model::RumorModel;
/// use rumor_core::params::ModelParams;
/// use rumor_core::state::NetworkState;
/// use rumor_net::degree::DegreeClasses;
/// use rumor_ode::integrator::Adaptive;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3])?;
/// let params = ModelParams::builder(classes)
///     .alpha(0.01)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
///     .build()?;
/// let model = RumorModel::new(&params, ConstantControl::new(0.2, 0.05));
/// let y0 = NetworkState::initial_uniform(params.n_classes(), 0.05)?.to_flat();
/// let sol = Adaptive::new().integrate(&model, 0.0, &y0, 10.0)?;
/// assert_eq!(sol.last_state().len(), 3 * params.n_classes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RumorModel<'p, C> {
    params: &'p ModelParams,
    control: C,
    convention: MassConvention,
    /// Optional intra-replica worker pool for the Θ reduction and the
    /// element-wise RHS map. The partitioned kernels are bit-identical
    /// with and without a pool (see `kernels::PART_CHUNK`), so this only
    /// affects wall-clock, never results.
    pool: Option<Arc<InnerPool>>,
}

impl<'p, C: ControlSchedule> RumorModel<'p, C> {
    /// Binds parameters to a countermeasure schedule under the default
    /// (mass-conserving) convention.
    pub fn new(params: &'p ModelParams, control: C) -> Self {
        Self::with_convention(params, control, MassConvention::default())
    }

    /// Binds parameters to a schedule with an explicit
    /// [`MassConvention`].
    pub fn with_convention(
        params: &'p ModelParams,
        control: C,
        convention: MassConvention,
    ) -> Self {
        RumorModel {
            params,
            control,
            convention,
            pool: None,
        }
    }

    /// Attaches (or detaches, with `None`) an intra-replica worker pool.
    /// Splits the per-class kernels across the pool's threads; output is
    /// bit-identical to the pool-less model at every pool size.
    pub fn with_pool(mut self, pool: Option<Arc<InnerPool>>) -> Self {
        self.pool = pool;
        self
    }

    /// The bound parameters.
    pub fn params(&self) -> &ModelParams {
        self.params
    }

    /// The active mass convention.
    pub fn convention(&self) -> MassConvention {
        self.convention
    }

    /// The bound control schedule.
    pub fn control(&self) -> &C {
        &self.control
    }

    /// Computes `Θ` from a flat state slice (layout `[S.., I.., R..]`):
    /// a single dot product against the precomputed
    /// [`ModelParams::theta_weights`] table, evaluated with the
    /// partitioned [`crate::kernels::dot_partitioned`] reduction
    /// (bit-identical to [`crate::kernels::dot_partitioned_scalar`] and
    /// to the pooled form at every thread count; equal to
    /// [`crate::kernels::dot`] whenever the class count fits one
    /// [`crate::kernels::PART_CHUNK`] partition).
    pub fn theta_flat(&self, y: &[f64]) -> f64 {
        let n = self.params.n_classes();
        let w = self.params.theta_weights();
        let i = &y[n..2 * n];
        match &self.pool {
            Some(pool) => crate::kernels::dot_pooled(pool, w, i),
            None => crate::kernels::dot_partitioned(w, i),
        }
    }
}

impl<C: ControlSchedule> OdeSystem for RumorModel<'_, C> {
    fn dim(&self) -> usize {
        3 * self.params.n_classes()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.params.n_classes();
        let alpha = self.params.alpha();
        let eps1 = self.control.eps1(t);
        let eps2 = self.control.eps2(t);
        let theta = self.theta_flat(y);
        let recycle = match self.convention {
            MassConvention::Conserving => alpha,
            MassConvention::AsPrinted => 0.0,
        };
        let (s, rest) = y.split_at(n);
        let inf = &rest[..n];
        let (ds, rest) = dydt.split_at_mut(n);
        let (di, dr) = rest.split_at_mut(n);
        match &self.pool {
            Some(pool) => crate::kernels::sir_rhs_pooled(
                pool,
                s,
                inf,
                self.params.lambda(),
                theta,
                alpha,
                eps1,
                eps2,
                recycle,
                ds,
                di,
                dr,
            ),
            None => crate::kernels::sir_rhs(
                s,
                inf,
                self.params.lambda(),
                theta,
                alpha,
                eps1,
                eps2,
                recycle,
                ds,
                di,
                dr,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{ConstantControl, FnControl};
    use crate::params::test_support::tiny_params;
    use crate::state::NetworkState;
    use rumor_ode::integrator::{Adaptive, FixedStep};
    use rumor_ode::steppers::Rk4;

    #[test]
    fn dimension_is_three_per_class() {
        let p = tiny_params();
        let m = RumorModel::new(&p, ConstantControl::none());
        assert_eq!(m.dim(), 9);
    }

    #[test]
    fn rhs_matches_hand_computation_single_class() {
        // One class with degree 2, P = 1: ϕ = ω(2), ⟨k⟩ = 2.
        let classes = rumor_net::degree::DegreeClasses::from_degrees(&[2, 2]).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.01)
            .acceptance(crate::functions::AcceptanceRate::Constant { lambda0: 0.5 })
            .infectivity(crate::functions::Infectivity::Linear)
            .build()
            .unwrap();
        let m = RumorModel::new(&p, ConstantControl::new(0.1, 0.2));
        // ϕ = 2, ⟨k⟩ = 2 → Θ = I.
        let y = [0.8, 0.15, 0.05];
        let mut d = [0.0; 3];
        m.rhs(0.0, &y, &mut d);
        let theta = 0.15;
        let force = 0.5 * 0.8 * theta;
        assert!((d[0] - (0.01 - force - 0.1 * 0.8)).abs() < 1e-12);
        assert!((d[1] - (force - 0.2 * 0.15)).abs() < 1e-12);
        // Default convention recycles the inflow out of R.
        assert!((d[2] - (0.1 * 0.8 + 0.2 * 0.15 - 0.01)).abs() < 1e-12);
    }

    #[test]
    fn as_printed_mass_grows_at_rate_alpha() {
        // Paper Eq. (1) literally: d(S+I+R)/dt = α per class.
        let p = tiny_params();
        let m = RumorModel::with_convention(
            &p,
            ConstantControl::new(0.05, 0.02),
            MassConvention::AsPrinted,
        );
        let y0 = NetworkState::initial_uniform(3, 0.1).unwrap().to_flat();
        let sol = Adaptive::new().integrate(&m, 0.0, &y0, 5.0).unwrap();
        let yf = sol.last_state();
        for i in 0..3 {
            let mass0 = y0[i] + y0[3 + i] + y0[6 + i];
            let massf = yf[i] + yf[3 + i] + yf[6 + i];
            assert!(
                (massf - mass0 - p.alpha() * 5.0).abs() < 1e-7,
                "class {i}: {massf} vs {mass0}"
            );
        }
    }

    #[test]
    fn conserving_convention_preserves_unit_mass() {
        let p = tiny_params();
        let m = RumorModel::new(&p, ConstantControl::new(0.05, 0.02));
        assert_eq!(m.convention(), MassConvention::Conserving);
        let y0 = NetworkState::initial_uniform(3, 0.1).unwrap().to_flat();
        let sol = Adaptive::new().integrate(&m, 0.0, &y0, 25.0).unwrap();
        let yf = sol.last_state();
        for i in 0..3 {
            let mass = yf[i] + yf[3 + i] + yf[6 + i];
            assert!((mass - 1.0).abs() < 1e-7, "class {i}: mass {mass}");
        }
    }

    #[test]
    fn no_rumor_without_infected() {
        let p = tiny_params();
        let m = RumorModel::new(&p, ConstantControl::none());
        let y = NetworkState::initial_from_infected(vec![0.0; 3])
            .unwrap()
            .to_flat();
        let mut d = vec![0.0; 9];
        m.rhs(0.0, &y, &mut d);
        // With Θ = 0 and no controls, I stays zero.
        for i in 3..6 {
            assert_eq!(d[i], 0.0);
        }
    }

    #[test]
    fn higher_degree_class_infects_faster() {
        let p = tiny_params(); // degrees 1, 2, 4; λ ∝ k
        let m = RumorModel::new(&p, ConstantControl::none());
        let y = NetworkState::initial_uniform(3, 0.1).unwrap().to_flat();
        let mut d = vec![0.0; 9];
        m.rhs(0.0, &y, &mut d);
        assert!(d[3] < d[4] && d[4] < d[5], "dI/dt must grow with degree");
    }

    #[test]
    fn time_varying_control_is_applied() {
        let p = tiny_params();
        // ε1 ramps with time; compare derivative at two instants.
        let m = RumorModel::new(&p, FnControl::new(|t: f64| 0.1 * t, |_| 0.0));
        let y = NetworkState::initial_uniform(3, 0.1).unwrap().to_flat();
        let mut d0 = vec![0.0; 9];
        let mut d1 = vec![0.0; 9];
        m.rhs(0.0, &y, &mut d0);
        m.rhs(1.0, &y, &mut d1);
        // At t = 1 the immunization drain makes dS/dt more negative.
        assert!(d1[0] < d0[0]);
        // And recovery grows faster.
        assert!(d1[6] > d0[6]);
    }

    #[test]
    fn blocking_reduces_infected_compartment() {
        let p = tiny_params();
        let y0 = NetworkState::initial_uniform(3, 0.2).unwrap().to_flat();
        let run = |eps2: f64| {
            let m = RumorModel::new(&p, ConstantControl::new(0.0, eps2));
            let mut drv = FixedStep::new(Rk4::new(), 0.01);
            let sol = drv.integrate(&m, 0.0, &y0, 10.0).unwrap();
            let st = NetworkState::from_flat(sol.last_state()).unwrap();
            st.total_infected()
        };
        assert!(run(0.5) < run(0.0), "blocking must lower infections");
    }

    #[test]
    fn theta_flat_agrees_with_state_theta() {
        let p = tiny_params();
        let m = RumorModel::new(&p, ConstantControl::none());
        let st = NetworkState::initial_uniform(3, 0.37).unwrap();
        let t1 = m.theta_flat(&st.to_flat());
        let t2 = st.theta(&p).unwrap();
        assert!((t1 - t2).abs() < 1e-15);
    }
}
