//! Sensitivity of the propagation threshold to model parameters.
//!
//! Theorem 5 makes `r0` the single decision quantity; operators tuning
//! countermeasures want to know *which knob moves it most*. Because
//!
//! ```text
//! r0 = α · Σ_i λ_i ϕ_i / (⟨k⟩ ε1 ε2)
//! ```
//!
//! is a product of powers of its scalar parameters, the elasticities
//! (logarithmic derivatives `∂ln r0/∂ln p`) are exact and constant:
//! `+1` for `α` and the acceptance scale, `−1` for each countermeasure
//! channel. The per-class decomposition shows where the threshold mass
//! lives across degrees, which is what the targeted-allocation policies
//! in [`crate::targeted`] act on.

use crate::equilibrium::r0;
use crate::params::ModelParams;
use crate::Result;

/// Exact sensitivities of `r0` at an operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct R0Sensitivity {
    /// The threshold at the operating point.
    pub r0: f64,
    /// `∂r0/∂α = r0/α` (or `Σλϕ/(⟨k⟩ε1ε2)` when `α = 0`).
    pub d_alpha: f64,
    /// `∂r0/∂ε1 = −r0/ε1`.
    pub d_eps1: f64,
    /// `∂r0/∂ε2 = −r0/ε2`.
    pub d_eps2: f64,
    /// Elasticity w.r.t. the acceptance scale (`λ → c·λ`): exactly `+1`
    /// in this model, recorded for table completeness.
    pub elasticity_lambda: f64,
    /// Per-class share of the threshold: `contribution[i]` is the
    /// fraction of `r0` contributed by degree class `i` (sums to 1).
    pub class_share: Vec<f64>,
}

/// Computes the exact threshold sensitivities at `(ε1, ε2)`.
///
/// # Example
///
/// ```
/// use rumor_core::functions::AcceptanceRate;
/// use rumor_core::params::ModelParams;
/// use rumor_core::sensitivity::r0_sensitivity;
/// use rumor_net::degree::DegreeClasses;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3])?;
/// let params = ModelParams::builder(classes)
///     .alpha(0.01)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.1 })
///     .build()?;
/// let s = r0_sensitivity(&params, 0.1, 0.05)?;
/// // Strengthening either countermeasure always lowers the threshold.
/// assert!(s.d_eps1 < 0.0 && s.d_eps2 < 0.0);
/// assert!((s.class_share.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates [`crate::equilibrium::r0`] validation (positive
/// countermeasure rates required).
pub fn r0_sensitivity(params: &ModelParams, eps1: f64, eps2: f64) -> Result<R0Sensitivity> {
    let threshold = r0(params, eps1, eps2)?;
    let d_alpha = if params.alpha() > 0.0 {
        threshold / params.alpha()
    } else {
        params.lambda_phi_sum() / (params.mean_degree() * eps1 * eps2)
    };
    let total = params.lambda_phi_sum();
    let class_share = if total > 0.0 {
        params
            .lambda()
            .iter()
            .zip(params.phi())
            .map(|(l, p)| l * p / total)
            .collect()
    } else {
        vec![0.0; params.n_classes()]
    };
    Ok(R0Sensitivity {
        r0: threshold,
        d_alpha,
        d_eps1: -threshold / eps1,
        d_eps2: -threshold / eps2,
        elasticity_lambda: 1.0,
        class_share,
    })
}

/// The smallest uniform scaling of the countermeasure pair `(ε1, ε2)`
/// that brings the rumor below threshold: scaling both channels by `c`
/// divides `r0` by `c²`, so `c* = √r0` (already subcritical ⇒ `c* ≤ 1`).
///
/// # Errors
///
/// Propagates threshold validation failures.
pub fn critical_countermeasure_scale(params: &ModelParams, eps1: f64, eps2: f64) -> Result<f64> {
    Ok(r0(params, eps1, eps2)?.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params(alpha: f64) -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(alpha)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.1 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    #[test]
    fn partials_match_finite_differences() {
        let p = params(0.01);
        let (eps1, eps2) = (0.1, 0.05);
        let s = r0_sensitivity(&p, eps1, eps2).unwrap();
        let h = 1e-7;
        // ∂r0/∂ε1.
        let fd1 = (r0(&p, eps1 + h, eps2).unwrap() - r0(&p, eps1 - h, eps2).unwrap()) / (2.0 * h);
        assert!(
            (s.d_eps1 - fd1).abs() / fd1.abs() < 1e-5,
            "{} vs {fd1}",
            s.d_eps1
        );
        // ∂r0/∂ε2.
        let fd2 = (r0(&p, eps1, eps2 + h).unwrap() - r0(&p, eps1, eps2 - h).unwrap()) / (2.0 * h);
        assert!((s.d_eps2 - fd2).abs() / fd2.abs() < 1e-5);
        // ∂r0/∂α via a rebuilt parameter set.
        let bump = ModelParams::builder(p.classes().clone())
            .alpha(p.alpha() + h)
            .acceptance(*p.acceptance())
            .infectivity(*p.infectivity())
            .build()
            .unwrap();
        let fda = (r0(&bump, eps1, eps2).unwrap() - s.r0) / h;
        assert!(
            (s.d_alpha - fda).abs() / fda.abs() < 1e-4,
            "{} vs {fda}",
            s.d_alpha
        );
    }

    #[test]
    fn class_shares_sum_to_one_and_favor_hubs() {
        let p = params(0.01);
        let s = r0_sensitivity(&p, 0.1, 0.05).unwrap();
        let total: f64 = s.class_share.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // λϕ grows with degree here, so the hub class dominates per capita…
        // and in absolute share the top class exceeds the bottom.
        assert!(s.class_share.last().unwrap() > s.class_share.first().unwrap());
    }

    #[test]
    fn zero_alpha_gives_finite_alpha_derivative() {
        let p = params(0.0);
        let s = r0_sensitivity(&p, 0.1, 0.05).unwrap();
        assert_eq!(s.r0, 0.0);
        assert!(s.d_alpha > 0.0 && s.d_alpha.is_finite());
    }

    #[test]
    fn critical_scale_brings_r0_to_one() {
        let p = params(0.01);
        let (eps1, eps2) = (0.02, 0.02);
        let c = critical_countermeasure_scale(&p, eps1, eps2).unwrap();
        let scaled = r0(&p, eps1 * c, eps2 * c).unwrap();
        assert!((scaled - 1.0).abs() < 1e-12, "scaled r0 = {scaled}");
    }

    #[test]
    fn elasticity_lambda_is_exact() {
        // Doubling the acceptance scale doubles r0: elasticity 1.
        let p = params(0.01);
        let s = r0_sensitivity(&p, 0.1, 0.05).unwrap();
        assert_eq!(s.elasticity_lambda, 1.0);
        let doubled = p.with_acceptance(p.acceptance().scaled(2.0)).unwrap();
        let r2 = r0(&doubled, 0.1, 0.05).unwrap();
        assert!((r2 / s.r0 - 2.0).abs() < 1e-12);
    }
}
