use std::fmt;

/// Errors produced by the rumor-model core.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A model parameter failed validation.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Why it was rejected.
        message: String,
    },
    /// A state vector had the wrong length for the model's class count.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// The endemic equilibrium was requested but does not exist
    /// (`r0 ≤ 1`; Theorem 1 case 1).
    NoEndemicEquilibrium {
        /// The threshold value that ruled it out.
        r0: f64,
    },
    /// An underlying numerical routine failed.
    Numerics(rumor_numerics::NumericsError),
    /// An underlying ODE integration failed.
    Ode(rumor_ode::OdeError),
    /// An underlying network operation failed.
    Net(rumor_net::NetError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            CoreError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "state dimension mismatch: expected {expected}, found {found}"
                )
            }
            CoreError::NoEndemicEquilibrium { r0 } => {
                write!(f, "endemic equilibrium does not exist (r0 = {r0} <= 1)")
            }
            CoreError::Numerics(e) => write!(f, "numerics error: {e}"),
            CoreError::Ode(e) => write!(f, "ode error: {e}"),
            CoreError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerics(e) => Some(e),
            CoreError::Ode(e) => Some(e),
            CoreError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rumor_numerics::NumericsError> for CoreError {
    fn from(e: rumor_numerics::NumericsError) -> Self {
        CoreError::Numerics(e)
    }
}

impl From<rumor_ode::OdeError> for CoreError {
    fn from(e: rumor_ode::OdeError) -> Self {
        CoreError::Ode(e)
    }
}

impl From<rumor_net::NetError> for CoreError {
    fn from(e: rumor_net::NetError) -> Self {
        CoreError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::CoreError;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = CoreError::InvalidParameter {
            name: "alpha",
            message: "must be non-negative".into(),
        };
        assert!(e.to_string().contains("alpha"));
        assert!(e.source().is_none());
        let n: CoreError = rumor_numerics::NumericsError::SingularMatrix.into();
        assert!(n.source().is_some());
        let o: CoreError = rumor_ode::OdeError::NonFiniteState { t: 0.0 }.into();
        assert!(o.source().is_some());
        let g: CoreError = rumor_net::NetError::EmptyGraph.into();
        assert!(g.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
