//! Countermeasure schedules.
//!
//! The two countermeasure channels of the model are time-varying rates:
//! `ε1(t)` (spreading truth — immunizing susceptibles) and `ε2(t)`
//! (blocking rumors — removing spreaders). [`ControlSchedule`] abstracts
//! over how those rates are produced; the optimal-control crate
//! implements it for interpolated schedules produced by the
//! forward–backward sweep, while [`ConstantControl`] covers the
//! fixed-rate analysis of Section III.

/// A time-varying pair of countermeasure rates.
pub trait ControlSchedule {
    /// Truth-spreading (immunization) rate `ε1(t) ≥ 0`.
    fn eps1(&self, t: f64) -> f64;

    /// Rumor-blocking rate `ε2(t) ≥ 0`.
    fn eps2(&self, t: f64) -> f64;
}

/// Blanket implementation for references.
impl<C: ControlSchedule + ?Sized> ControlSchedule for &C {
    fn eps1(&self, t: f64) -> f64 {
        (**self).eps1(t)
    }

    fn eps2(&self, t: f64) -> f64 {
        (**self).eps2(t)
    }
}

/// Constant countermeasures `(ε1, ε2)` — the setting of the equilibrium
/// and stability analysis (Theorems 1–5).
///
/// # Example
///
/// ```
/// use rumor_core::control::{ConstantControl, ControlSchedule};
///
/// let c = ConstantControl::new(0.2, 0.05);
/// assert_eq!(c.eps1(3.0), 0.2);
/// assert_eq!(c.eps2(99.0), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantControl {
    eps1: f64,
    eps2: f64,
}

impl ConstantControl {
    /// Creates a constant schedule.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite — constant rates
    /// are part of the experiment configuration and must be valid.
    pub fn new(eps1: f64, eps2: f64) -> Self {
        assert!(
            eps1 >= 0.0 && eps1.is_finite() && eps2 >= 0.0 && eps2.is_finite(),
            "countermeasure rates must be non-negative and finite"
        );
        ConstantControl { eps1, eps2 }
    }

    /// The no-countermeasure schedule `(0, 0)`.
    pub fn none() -> Self {
        ConstantControl {
            eps1: 0.0,
            eps2: 0.0,
        }
    }
}

impl ControlSchedule for ConstantControl {
    fn eps1(&self, _t: f64) -> f64 {
        self.eps1
    }

    fn eps2(&self, _t: f64) -> f64 {
        self.eps2
    }
}

/// A schedule defined by two closures — handy for tests and for
/// hand-crafted time profiles.
pub struct FnControl<F1, F2> {
    f1: F1,
    f2: F2,
}

impl<F1: Fn(f64) -> f64, F2: Fn(f64) -> f64> FnControl<F1, F2> {
    /// Wraps `(ε1(t), ε2(t))` closures as a schedule.
    pub fn new(f1: F1, f2: F2) -> Self {
        FnControl { f1, f2 }
    }
}

impl<F1: Fn(f64) -> f64, F2: Fn(f64) -> f64> ControlSchedule for FnControl<F1, F2> {
    fn eps1(&self, t: f64) -> f64 {
        (self.f1)(t)
    }

    fn eps2(&self, t: f64) -> f64 {
        (self.f2)(t)
    }
}

impl<F1, F2> std::fmt::Debug for FnControl<F1, F2> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnControl").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_control_is_time_invariant() {
        let c = ConstantControl::new(0.3, 0.1);
        for t in [0.0, 1.0, 1e6] {
            assert_eq!(c.eps1(t), 0.3);
            assert_eq!(c.eps2(t), 0.1);
        }
    }

    #[test]
    fn none_is_zero() {
        let c = ConstantControl::none();
        assert_eq!(c.eps1(0.0), 0.0);
        assert_eq!(c.eps2(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = ConstantControl::new(-0.1, 0.0);
    }

    #[test]
    fn fn_control_evaluates_closures() {
        let c = FnControl::new(|t: f64| t * 2.0, |t: f64| 1.0 - t);
        assert_eq!(c.eps1(0.5), 1.0);
        assert_eq!(c.eps2(0.25), 0.75);
        assert!(!format!("{c:?}").is_empty());
    }

    #[test]
    fn reference_blanket_impl() {
        fn sum_at<C: ControlSchedule>(c: C, t: f64) -> f64 {
            c.eps1(t) + c.eps2(t)
        }
        let c = ConstantControl::new(0.1, 0.2);
        assert!((sum_at(c, 0.0) - 0.3).abs() < 1e-15);
        let dynref: &dyn ControlSchedule = &c;
        assert!((sum_at(dynref, 0.0) - 0.3).abs() < 1e-15);
    }
}
