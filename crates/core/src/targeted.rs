//! Degree-targeted countermeasures.
//!
//! The paper's introduction motivates two families of countermeasures and
//! notes that the classical approach is to concentrate them on
//! *influential users* ("rumor ends with sage"). The base model applies
//! the rates `ε1, ε2` uniformly across degree classes; this module
//! generalizes both channels to **per-class rates**, which makes the
//! hub-prioritized strategy expressible and lets the ablation harness
//! quantify it:
//!
//! ```text
//! dS_i/dt = α − λ(k_i) S_i Θ − ε1_i S_i
//! dI_i/dt = λ(k_i) S_i Θ − ε2_i I_i
//! dR_i/dt = ε1_i S_i + ε2_i I_i − α
//! ```
//!
//! The generalized threshold follows from the rank-1 structure of the
//! linearization at the rumor-free state (`S⁰_i = α/ε1_i`):
//!
//! ```text
//! r0_targeted = Σ_i α λ(k_i) ϕ(k_i) / (⟨k⟩ ε1_i ε2_i)
//! ```
//!
//! which reduces to the paper's `r0` for uniform rates. A consequence
//! worth noting: concentrating blocking *only* on hubs leaves the
//! low-degree terms of the sum unbounded — some budget must reach every
//! class or the rumor survives in the periphery.

use crate::params::ModelParams;
use crate::{CoreError, Result};
use rumor_net::degree::DegreeClasses;
use rumor_ode::system::OdeSystem;

/// Constant-in-time, per-degree-class countermeasure rates.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRates {
    eps1: Vec<f64>,
    eps2: Vec<f64>,
}

impl ClassRates {
    /// Explicit per-class rates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the vectors differ in
    /// length, are empty, or contain negative/non-finite values.
    pub fn new(eps1: Vec<f64>, eps2: Vec<f64>) -> Result<Self> {
        if eps1.is_empty() || eps1.len() != eps2.len() {
            return Err(CoreError::InvalidParameter {
                name: "class_rates",
                message: format!(
                    "need equal-length non-empty rate vectors, got {} and {}",
                    eps1.len(),
                    eps2.len()
                ),
            });
        }
        for (name, v) in [("eps1", &eps1), ("eps2", &eps2)] {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(CoreError::InvalidParameter {
                    name: "class_rates",
                    message: format!("{name} contains a negative or non-finite rate"),
                });
            }
        }
        Ok(ClassRates { eps1, eps2 })
    }

    /// Uniform rates across `n` classes — equivalent to the base model's
    /// [`crate::control::ConstantControl`].
    ///
    /// # Errors
    ///
    /// See [`ClassRates::new`].
    pub fn uniform(n: usize, eps1: f64, eps2: f64) -> Result<Self> {
        Self::new(vec![eps1; n], vec![eps2; n])
    }

    /// Hub-prioritized allocation: every class receives the `base`
    /// rates, and the additional population budgets
    /// `(extra_budget1, extra_budget2)` are spent entirely on the
    /// highest-degree classes holding the top `top_fraction` of the
    /// population (by `P(k)` mass), raising their rates uniformly.
    ///
    /// "Population budget" is the `P(k)`-weighted rate `Σ_i ε_i P(k_i)`,
    /// so two policies with equal budget immunize/block the same number
    /// of users per unit time; see [`ClassRates::population_budget`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `top_fraction`
    /// outside `(0, 1]` or negative rates/budgets.
    pub fn hub_targeted(
        classes: &DegreeClasses,
        base: (f64, f64),
        extra_budget: (f64, f64),
        top_fraction: f64,
    ) -> Result<Self> {
        if !(top_fraction > 0.0 && top_fraction <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "top_fraction",
                message: format!("must lie in (0, 1], got {top_fraction}"),
            });
        }
        if base.0 < 0.0 || base.1 < 0.0 || extra_budget.0 < 0.0 || extra_budget.1 < 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "rates",
                message: "base rates and budgets must be non-negative".into(),
            });
        }
        let n = classes.len();
        // Walk classes from the highest degree down until the target
        // population mass is covered.
        let mut covered = 0.0;
        let mut targeted = vec![false; n];
        for i in (0..n).rev() {
            targeted[i] = true;
            covered += classes.probability(i);
            if covered >= top_fraction {
                break;
            }
        }
        let boost1 = extra_budget.0 / covered;
        let boost2 = extra_budget.1 / covered;
        let eps1 = (0..n)
            .map(|i| base.0 + if targeted[i] { boost1 } else { 0.0 })
            .collect();
        let eps2 = (0..n)
            .map(|i| base.1 + if targeted[i] { boost2 } else { 0.0 })
            .collect();
        Self::new(eps1, eps2)
    }

    /// The budget-optimal allocation for the threshold objective:
    /// minimizing `r0 = Σ_i C_i/(ε1_i ε2_i)` (with
    /// `C_i = α λ_i ϕ_i / ⟨k⟩`) subject to the population budgets
    /// `Σ_i P_i ε_i = B` gives, by Lagrange duality, the profile
    ///
    /// ```text
    /// ε_i ∝ (C_i / P(k_i))^(1/3)
    /// ```
    ///
    /// applied to both channels. Hubs receive more than leaves — but
    /// *smoothly*, never starving the periphery (a pure hub-only boost
    /// is counterproductive in this model because every class feeds the
    /// same coupling `Θ`; see the tests).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-positive budgets
    /// or a zero-coupling parameter set.
    pub fn r0_optimal(params: &ModelParams, budget1: f64, budget2: f64) -> Result<Self> {
        if !(budget1 > 0.0) || !(budget2 > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "budget",
                message: format!("budgets must be positive, got ({budget1}, {budget2})"),
            });
        }
        let classes = params.classes();
        let n = classes.len();
        let mut weights = Vec::with_capacity(n);
        let mut norm = 0.0;
        for i in 0..n {
            let c_i = params.alpha() * params.lambda()[i] * params.phi()[i] / params.mean_degree();
            let p_i = classes.probability(i);
            let w = (c_i / p_i).cbrt();
            if !(w > 0.0) || !w.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "params",
                    message: format!("class {i} has zero coupling; optimal profile undefined"),
                });
            }
            weights.push(w);
            norm += p_i * w;
        }
        let eps1 = weights.iter().map(|w| budget1 * w / norm).collect();
        let eps2 = weights.iter().map(|w| budget2 * w / norm).collect();
        Self::new(eps1, eps2)
    }

    /// Number of classes the rates cover.
    pub fn len(&self) -> usize {
        self.eps1.len()
    }

    /// `true` if the rate vectors are empty (cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.eps1.is_empty()
    }

    /// Truth-spreading rates per class.
    pub fn eps1(&self) -> &[f64] {
        &self.eps1
    }

    /// Blocking rates per class.
    pub fn eps2(&self) -> &[f64] {
        &self.eps2
    }

    /// The population-weighted budgets
    /// `(Σ_i ε1_i P(k_i), Σ_i ε2_i P(k_i))` — the fair-comparison
    /// invariant between allocation policies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the partition size
    /// differs from the rate vectors.
    pub fn population_budget(&self, classes: &DegreeClasses) -> Result<(f64, f64)> {
        if classes.len() != self.len() {
            return Err(CoreError::DimensionMismatch {
                expected: classes.len(),
                found: self.len(),
            });
        }
        let b1 = self
            .eps1
            .iter()
            .zip(classes.probabilities())
            .map(|(e, p)| e * p)
            .sum();
        let b2 = self
            .eps2
            .iter()
            .zip(classes.probabilities())
            .map(|(e, p)| e * p)
            .sum();
        Ok((b1, b2))
    }
}

/// The generalized threshold
/// `r0 = Σ_i α λ_i ϕ_i / (⟨k⟩ ε1_i ε2_i)` for per-class rates.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if any class rate is zero
/// (the corresponding term diverges — the rumor survives in that class)
/// or [`CoreError::DimensionMismatch`] on a class-count mismatch.
pub fn targeted_r0(params: &ModelParams, rates: &ClassRates) -> Result<f64> {
    let n = params.n_classes();
    if rates.len() != n {
        return Err(CoreError::DimensionMismatch {
            expected: n,
            found: rates.len(),
        });
    }
    let mut sum = 0.0;
    for i in 0..n {
        let (e1, e2) = (rates.eps1[i], rates.eps2[i]);
        if e1 <= 0.0 || e2 <= 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "class_rates",
                message: format!(
                    "class {i} has a zero countermeasure rate; its threshold term diverges"
                ),
            });
        }
        sum += params.alpha() * params.lambda()[i] * params.phi()[i] / (e1 * e2);
    }
    Ok(sum / params.mean_degree())
}

/// The rumor ODE system under per-class countermeasure rates
/// (mass-conserving convention). State layout matches
/// [`crate::model::RumorModel`].
#[derive(Debug, Clone)]
pub struct TargetedModel<'p> {
    params: &'p ModelParams,
    rates: ClassRates,
}

impl<'p> TargetedModel<'p> {
    /// Binds parameters to per-class rates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the rates do not
    /// cover every class.
    pub fn new(params: &'p ModelParams, rates: ClassRates) -> Result<Self> {
        if rates.len() != params.n_classes() {
            return Err(CoreError::DimensionMismatch {
                expected: params.n_classes(),
                found: rates.len(),
            });
        }
        Ok(TargetedModel { params, rates })
    }

    /// The bound rates.
    pub fn rates(&self) -> &ClassRates {
        &self.rates
    }
}

impl OdeSystem for TargetedModel<'_> {
    fn dim(&self) -> usize {
        3 * self.params.n_classes()
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.params.n_classes();
        let alpha = self.params.alpha();
        let lambda = self.params.lambda();
        let phi = self.params.phi();
        let mean_k = self.params.mean_degree();
        let theta: f64 = phi
            .iter()
            .zip(&y[n..2 * n])
            .map(|(p, i)| p * i)
            .sum::<f64>()
            / mean_k;
        for j in 0..n {
            let s = y[j];
            let inf = y[n + j];
            let (e1, e2) = (self.rates.eps1[j], self.rates.eps2[j]);
            let force = lambda[j] * s * theta;
            dydt[j] = alpha - force - e1 * s;
            dydt[n + j] = force - e2 * inf;
            dydt[2 * n + j] = e1 * s + e2 * inf - alpha;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ConstantControl;
    use crate::equilibrium::r0;
    use crate::functions::{AcceptanceRate, Infectivity};
    use crate::model::RumorModel;
    use crate::state::NetworkState;
    use rumor_ode::integrator::Adaptive;

    fn scale_free_params() -> ModelParams {
        // Skewed partition with enough distinct classes that a top-20%
        // population cut leaves the low-degree classes untargeted.
        let mut degrees = Vec::new();
        for (k, count) in [
            (1, 50),
            (2, 50),
            (3, 50),
            (4, 30),
            (5, 20),
            (10, 10),
            (20, 5),
            (40, 5),
        ] {
            degrees.extend(vec![k as usize; count]);
        }
        let classes = DegreeClasses::from_degrees(&degrees).unwrap();
        ModelParams::builder(classes)
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    #[test]
    fn class_rates_validation() {
        assert!(ClassRates::new(vec![], vec![]).is_err());
        assert!(ClassRates::new(vec![0.1], vec![0.1, 0.2]).is_err());
        assert!(ClassRates::new(vec![-0.1], vec![0.1]).is_err());
        assert!(ClassRates::new(vec![f64::NAN], vec![0.1]).is_err());
        let r = ClassRates::uniform(3, 0.1, 0.2).unwrap();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.eps1(), &[0.1; 3]);
        assert_eq!(r.eps2(), &[0.2; 3]);
    }

    #[test]
    fn uniform_rates_reduce_to_base_r0() {
        let p = scale_free_params();
        let rates = ClassRates::uniform(p.n_classes(), 0.1, 0.05).unwrap();
        let generalized = targeted_r0(&p, &rates).unwrap();
        let base = r0(&p, 0.1, 0.05).unwrap();
        assert!((generalized - base).abs() < 1e-12);
    }

    #[test]
    fn zero_class_rate_rejected_by_threshold() {
        let p = scale_free_params();
        let mut e2 = vec![0.05; p.n_classes()];
        e2[0] = 0.0;
        let rates = ClassRates::new(vec![0.1; p.n_classes()], e2).unwrap();
        assert!(matches!(
            targeted_r0(&p, &rates),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn uniform_targeted_model_matches_base_model() {
        let p = scale_free_params();
        let rates = ClassRates::uniform(p.n_classes(), 0.1, 0.05).unwrap();
        let targeted = TargetedModel::new(&p, rates).unwrap();
        let base = RumorModel::new(&p, ConstantControl::new(0.1, 0.05));
        let y0 = NetworkState::initial_uniform(p.n_classes(), 0.1)
            .unwrap()
            .to_flat();
        let a = Adaptive::new()
            .integrate(&targeted, 0.0, &y0, 20.0)
            .unwrap();
        let b = Adaptive::new().integrate(&base, 0.0, &y0, 20.0).unwrap();
        for (x, y) in a.last_state().iter().zip(b.last_state()) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn hub_targeting_preserves_population_budget() {
        let p = scale_free_params();
        let base = (0.02, 0.02);
        let extra = (0.05, 0.05);
        let hub = ClassRates::hub_targeted(p.classes(), base, extra, 0.25).unwrap();
        let (b1, b2) = hub.population_budget(p.classes()).unwrap();
        // Budget = base + extra exactly (the boost is spread over the
        // covered probability mass).
        assert!((b1 - (base.0 + extra.0)).abs() < 1e-9, "b1 = {b1}");
        assert!((b2 - (base.1 + extra.1)).abs() < 1e-9, "b2 = {b2}");
        // The highest-degree class is boosted, the lowest is not.
        let n = p.n_classes();
        assert!(hub.eps2()[n - 1] > base.1 + 1e-9);
        assert_eq!(hub.eps2()[0], base.1);
    }

    #[test]
    fn hub_only_boost_backfires_at_equal_budget() {
        // The counterintuitive (and correct) result for this model:
        // because every class feeds the same coupling Θ and each
        // threshold term scales as 1/ε², starving the periphery to
        // boost hubs *raises* r0 and worsens the outcome relative to
        // spending the same population budget uniformly.
        let p = scale_free_params();
        let base = (0.02, 0.02);
        let extra = (0.08, 0.08);
        let hub = ClassRates::hub_targeted(p.classes(), base, extra, 0.2).unwrap();
        let uniform =
            ClassRates::uniform(p.n_classes(), base.0 + extra.0, base.1 + extra.1).unwrap();
        // Same population budget in both policies.
        let bh = hub.population_budget(p.classes()).unwrap();
        let bu = uniform.population_budget(p.classes()).unwrap();
        assert!((bh.0 - bu.0).abs() < 1e-9 && (bh.1 - bu.1).abs() < 1e-9);

        let r_hub = targeted_r0(&p, &hub).unwrap();
        let r_uni = targeted_r0(&p, &uniform).unwrap();
        assert!(
            r_hub > r_uni,
            "hub-only boost must raise the threshold: {r_hub} vs {r_uni}"
        );

        let y0 = NetworkState::initial_uniform(p.n_classes(), 0.1)
            .unwrap()
            .to_flat();
        let run = |rates: ClassRates| {
            let m = TargetedModel::new(&p, rates).unwrap();
            let sol = Adaptive::new().integrate(&m, 0.0, &y0, 60.0).unwrap();
            let st = NetworkState::from_flat(sol.last_state()).unwrap();
            // Population-weighted infection.
            st.i()
                .iter()
                .zip(p.classes().probabilities())
                .map(|(i, pr)| i * pr)
                .sum::<f64>()
        };
        let hub_final = run(hub);
        let uniform_final = run(uniform);
        assert!(
            hub_final > uniform_final,
            "hub-only targeting ({hub_final}) should underperform uniform ({uniform_final})"
        );
    }

    #[test]
    fn r0_optimal_allocation_beats_uniform_and_hub_only() {
        let p = scale_free_params();
        let budget = 0.1;
        let optimal = ClassRates::r0_optimal(&p, budget, budget).unwrap();
        let uniform = ClassRates::uniform(p.n_classes(), budget, budget).unwrap();
        let hub = ClassRates::hub_targeted(p.classes(), (0.02, 0.02), (0.08, 0.08), 0.2).unwrap();
        // All three spend the same population budget.
        let bo = optimal.population_budget(p.classes()).unwrap();
        assert!((bo.0 - budget).abs() < 1e-9 && (bo.1 - budget).abs() < 1e-9);

        let r_opt = targeted_r0(&p, &optimal).unwrap();
        let r_uni = targeted_r0(&p, &uniform).unwrap();
        let r_hub = targeted_r0(&p, &hub).unwrap();
        assert!(r_opt < r_uni, "optimal {r_opt} must beat uniform {r_uni}");
        assert!(r_opt < r_hub, "optimal {r_opt} must beat hub-only {r_hub}");
        // The optimal profile still favours hubs over leaves — smoothly.
        let n = p.n_classes();
        assert!(optimal.eps2()[n - 1] > optimal.eps2()[0]);
    }

    #[test]
    fn r0_optimal_validation() {
        let p = scale_free_params();
        assert!(ClassRates::r0_optimal(&p, 0.0, 0.1).is_err());
        assert!(ClassRates::r0_optimal(&p, 0.1, -1.0).is_err());
    }

    #[test]
    fn top_fraction_validation() {
        let p = scale_free_params();
        assert!(ClassRates::hub_targeted(p.classes(), (0.1, 0.1), (0.1, 0.1), 0.0).is_err());
        assert!(ClassRates::hub_targeted(p.classes(), (0.1, 0.1), (0.1, 0.1), 1.5).is_err());
        assert!(ClassRates::hub_targeted(p.classes(), (-0.1, 0.1), (0.1, 0.1), 0.5).is_err());
        // top_fraction = 1 covers everyone: equivalent to uniform.
        let all = ClassRates::hub_targeted(p.classes(), (0.1, 0.1), (0.1, 0.1), 1.0).unwrap();
        for (a, b) in all.eps1().iter().zip(all.eps2()) {
            assert!((a - 0.2).abs() < 1e-12 && (b - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn dimension_checks() {
        let p = scale_free_params();
        let wrong = ClassRates::uniform(2, 0.1, 0.1).unwrap();
        assert!(TargetedModel::new(&p, wrong.clone()).is_err());
        assert!(targeted_r0(&p, &wrong).is_err());
        assert!(wrong.population_budget(p.classes()).is_err());
    }
}
