//! Heterogeneous-network SIR rumor-propagation model.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Modeling Propagation Dynamics and Developing Optimized
//! Countermeasures for Rumor Spreading in Online Social Networks*,
//! ICDCS 2015): a degree-heterogeneous SIR epidemic model of rumor
//! spreading with two countermeasure channels — spreading truth
//! (immunizing susceptibles at rate `ε1`) and blocking rumors (removing
//! spreaders at rate `ε2`).
//!
//! Users are partitioned into `n` degree classes. Class `i` with degree
//! `k_i` carries densities `S_i(t), I_i(t), R_i(t)` evolving as (paper
//! Eq. (1)):
//!
//! ```text
//! dS_i/dt = α − λ(k_i) S_i Θ(t) − ε1(t) S_i
//! dI_i/dt = λ(k_i) S_i Θ(t) − ε2(t) I_i
//! dR_i/dt = ε1(t) S_i + ε2(t) I_i
//! Θ(t)    = (1/⟨k⟩) Σ_j ϕ(k_j) I_j(t),   ϕ(k) = ω(k) P(k)
//! ```
//!
//! The crate provides:
//!
//! * [`functions`] — the acceptance-rate `λ(k)` and infectivity `ω(k)`
//!   families (constant, linear, saturating `k^β/(1+k^γ)`).
//! * [`kernels`] — chunked auto-vectorizable per-class kernels (the `Θ`
//!   dot product, the SIR/costate right-hand sides) with bit-identical
//!   scalar references.
//! * [`params`] — validated model parameters bound to a degree partition.
//! * [`state`] — the per-class state vector with `Θ`, norms and the
//!   `Dist0`/`Dist+` distances used in Figs. 2–3.
//! * [`model`] — the ODE system (implements
//!   [`rumor_ode::system::OdeSystem`]) under any [`control::ControlSchedule`].
//! * [`equilibrium`] — the threshold `r0`, the rumor-free equilibrium
//!   `E0` and the endemic equilibrium `E+` (Theorem 1).
//! * [`stability`] — Jacobian eigenvalue analysis at `E0` (Theorem 2) and
//!   numeric Lyapunov verification (Theorems 3–4).
//! * [`simulate`] — high-level trajectory runs on output grids.
//! * [`targeted`] — per-degree-class countermeasure rates (the
//!   hub-prioritized "blocking at influential users" strategy) with the
//!   generalized threshold.
//! * [`sensitivity`] — exact threshold sensitivities and the critical
//!   countermeasure scaling.
//!
//! # Quickstart
//!
//! ```
//! use rumor_core::control::ConstantControl;
//! use rumor_core::equilibrium::r0;
//! use rumor_core::functions::{AcceptanceRate, Infectivity};
//! use rumor_core::params::ModelParams;
//! use rumor_net::degree::DegreeClasses;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 4])?;
//! let params = ModelParams::builder(classes)
//!     .alpha(0.01)
//!     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
//!     .infectivity(Infectivity::Saturating { beta: 0.5, gamma: 0.5 })
//!     .build()?;
//! let threshold = r0(&params, 0.2, 0.05)?;
//! assert!(threshold.is_finite() && threshold > 0.0);
//! # Ok(())
//! # }
//! ```

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod control;
pub mod equilibrium;
pub mod functions;
pub mod kernels;
pub mod model;
pub mod params;
pub mod sensitivity;
pub mod simulate;
pub mod stability;
pub mod state;
pub mod targeted;

mod error;

pub use error::CoreError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
