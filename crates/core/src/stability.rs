//! Stability analysis of the equilibrium solutions (Theorems 2–4).
//!
//! Theorem 2 classifies the local stability of the rumor-free
//! equilibrium `E0` through the eigenvalues of the Jacobian of the
//! reduced `(S, I)` system (the first two equations are independent of
//! `R`). This module assembles that `2n × 2n` Jacobian analytically and
//! feeds it to the QR eigenvalue solver in `rumor-numerics`; it also
//! provides an empirical global-stability check (Theorems 3–4) that
//! integrates the full system from a batch of initial conditions and
//! measures convergence to a target equilibrium.

use crate::control::ConstantControl;
use crate::equilibrium::r0;
use crate::model::RumorModel;
use crate::params::ModelParams;
use crate::state::NetworkState;
use crate::{CoreError, Result};
use rumor_numerics::eigen::spectral_abscissa;
use rumor_numerics::matrix::Matrix;
use rumor_ode::integrator::Adaptive;

/// Verdict of a local stability analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stability {
    /// All Jacobian eigenvalues have negative real part.
    LocallyStable {
        /// The spectral abscissa (most positive real part).
        abscissa: f64,
    },
    /// At least one eigenvalue has positive real part.
    Unstable {
        /// The spectral abscissa.
        abscissa: f64,
    },
    /// The spectral abscissa is numerically indistinguishable from zero
    /// (critical case `r0 = 1`).
    Marginal {
        /// The spectral abscissa.
        abscissa: f64,
    },
}

impl Stability {
    fn from_abscissa(a: f64) -> Self {
        const TOL: f64 = 1e-9;
        if a < -TOL {
            Stability::LocallyStable { abscissa: a }
        } else if a > TOL {
            Stability::Unstable { abscissa: a }
        } else {
            Stability::Marginal { abscissa: a }
        }
    }

    /// `true` for the locally-stable verdict.
    pub fn is_stable(&self) -> bool {
        matches!(self, Stability::LocallyStable { .. })
    }
}

/// Assembles the Jacobian of the reduced `(S, I)` system at an arbitrary
/// state, ordered `[S_0..S_{n-1}, I_0..I_{n-1}]`:
///
/// ```text
/// ∂Ṡ_i/∂S_j = −(λ_i Θ + ε1) δ_ij        ∂Ṡ_i/∂I_j = −λ_i S_i ϕ_j/⟨k⟩
/// ∂İ_i/∂S_j =  λ_i Θ δ_ij               ∂İ_i/∂I_j =  λ_i S_i ϕ_j/⟨k⟩ − ε2 δ_ij
/// ```
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] if `state` and `params`
/// disagree on the class count.
pub fn jacobian_reduced(
    params: &ModelParams,
    state: &NetworkState,
    eps1: f64,
    eps2: f64,
) -> Result<Matrix> {
    let n = params.n_classes();
    if state.n_classes() != n {
        return Err(CoreError::DimensionMismatch {
            expected: n,
            found: state.n_classes(),
        });
    }
    let theta = state.theta(params)?;
    let mean_k = params.mean_degree();
    let lambda = params.lambda();
    let phi = params.phi();
    let mut j = Matrix::zeros(2 * n, 2 * n);
    for i in 0..n {
        j[(i, i)] = -(lambda[i] * theta + eps1);
        j[(n + i, i)] = lambda[i] * theta;
        j[(n + i, n + i)] = -eps2;
        for col in 0..n {
            let coupling = lambda[i] * state.s()[i] * phi[col] / mean_k;
            j[(i, n + col)] -= coupling;
            j[(n + i, n + col)] += coupling;
        }
    }
    Ok(j)
}

/// Local stability of the rumor-free equilibrium `E0` via the spectral
/// abscissa of [`jacobian_reduced`] (Theorem 2: stable iff `r0 < 1`).
///
/// # Errors
///
/// Propagates equilibrium construction and eigenvalue failures.
pub fn local_stability_e0(params: &ModelParams, eps1: f64, eps2: f64) -> Result<Stability> {
    let e0 = crate::equilibrium::zero_equilibrium(params, eps1, eps2)?;
    let jac = jacobian_reduced(params, &e0, eps1, eps2)?;
    let abscissa = spectral_abscissa(&jac)?;
    Ok(Stability::from_abscissa(abscissa))
}

/// Checks Theorem 2's claim against the eigenvalue computation: the sign
/// of `r0 − 1` must match the instability of `E0`. Returns
/// `(r0, verdict, consistent)`.
///
/// # Errors
///
/// Propagates threshold and stability-analysis failures.
pub fn theorem2_consistency(
    params: &ModelParams,
    eps1: f64,
    eps2: f64,
) -> Result<(f64, Stability, bool)> {
    let threshold = r0(params, eps1, eps2)?;
    let verdict = local_stability_e0(params, eps1, eps2)?;
    let consistent = match verdict {
        Stability::LocallyStable { .. } => threshold < 1.0,
        Stability::Unstable { .. } => threshold > 1.0,
        Stability::Marginal { .. } => (threshold - 1.0).abs() < 1e-6,
    };
    Ok((threshold, verdict, consistent))
}

/// The Lyapunov function of Theorem 3 for the rumor-free equilibrium:
/// `V(t) = Θ(t)/ε2`. Along solutions, `V̇ = Θ·(r0 − 1)`-signed, so it
/// decreases whenever `r0 < 1`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `eps2 ≤ 0` and propagates
/// dimension mismatches from the `Θ` computation.
pub fn lyapunov_v0(params: &ModelParams, state: &NetworkState, eps2: f64) -> Result<f64> {
    if !(eps2 > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "eps2",
            message: format!("must be positive, got {eps2}"),
        });
    }
    Ok(state.theta(params)? / eps2)
}

/// The Lyapunov function of Theorem 4 for the endemic equilibrium:
///
/// ```text
/// V = (1/2⟨k⟩) Σ_i ϕ_i (S_i − S⁺_i)²/S⁺_i + Θ − Θ⁺ − Θ⁺ ln(Θ/Θ⁺)
/// ```
///
/// Non-negative with equality only at `E+`; decreasing along solutions
/// when `r0 > 1`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the state's `Θ` is not
/// strictly positive (the logarithm is then undefined) and propagates
/// dimension mismatches.
pub fn lyapunov_vplus(
    params: &ModelParams,
    state: &NetworkState,
    eplus: &NetworkState,
) -> Result<f64> {
    let theta = state.theta(params)?;
    let theta_plus = eplus.theta(params)?;
    if !(theta > 0.0) || !(theta_plus > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "theta",
            message: format!(
                "lyapunov V+ needs strictly positive theta, got {theta} (target {theta_plus})"
            ),
        });
    }
    let mean_k = params.mean_degree();
    let mut quad = 0.0;
    for i in 0..params.n_classes() {
        let ds = state.s()[i] - eplus.s()[i];
        quad += params.phi()[i] * ds * ds / eplus.s()[i];
    }
    Ok(0.5 * quad / mean_k + theta - theta_plus - theta_plus * (theta / theta_plus).ln())
}

/// Samples a Lyapunov function along a trajectory and reports the series
/// together with whether it is non-increasing up to `slack` (absolute
/// tolerance for integration noise).
///
/// # Errors
///
/// Propagates evaluation failures from `v`.
pub fn lyapunov_descent_check(
    trajectory: &crate::simulate::Trajectory,
    mut v: impl FnMut(&NetworkState) -> Result<f64>,
    slack: f64,
) -> Result<(Vec<f64>, bool)> {
    let mut series = Vec::with_capacity(trajectory.len());
    for state in trajectory.states() {
        series.push(v(state)?);
    }
    let monotone = series.windows(2).all(|w| w[1] <= w[0] + slack);
    Ok((series, monotone))
}

/// Empirical global-stability check (Theorems 3–4): integrates the model
/// from each initial condition to `tf` and returns the final
/// infinity-norm distance to `target` for each run.
///
/// A globally asymptotically stable equilibrium drives all distances
/// towards zero regardless of the starting point.
///
/// # Errors
///
/// Propagates integration and state-conversion failures.
pub fn empirical_convergence(
    params: &ModelParams,
    eps1: f64,
    eps2: f64,
    initial: &[NetworkState],
    tf: f64,
    target: &NetworkState,
) -> Result<Vec<f64>> {
    let model = RumorModel::new(params, ConstantControl::new(eps1, eps2));
    let mut out = Vec::with_capacity(initial.len());
    for state in initial {
        let sol = Adaptive::new().integrate(&model, 0.0, &state.to_flat(), tf)?;
        let final_state = NetworkState::from_flat(sol.last_state())?;
        out.push(final_state.dist_inf(target)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{positive_equilibrium, zero_equilibrium};
    use crate::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params(alpha: f64, lambda0: f64) -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(alpha)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    #[test]
    fn jacobian_shape_and_signs() {
        let p = params(0.01, 0.1);
        let e0 = zero_equilibrium(&p, 0.2, 0.05).unwrap();
        let j = jacobian_reduced(&p, &e0, 0.2, 0.05).unwrap();
        let n = p.n_classes();
        assert_eq!(j.rows(), 2 * n);
        // At E0, Θ = 0: S-block diagonal is exactly −ε1.
        for i in 0..n {
            assert!((j[(i, i)] + 0.2).abs() < 1e-12);
            assert_eq!(j[(n + i, i)], 0.0);
        }
        // S-I coupling is negative (more infected → fewer susceptible).
        assert!(j[(0, n)] < 0.0);
    }

    #[test]
    fn jacobian_dimension_check() {
        let p = params(0.01, 0.1);
        let st = NetworkState::initial_uniform(2, 0.1).unwrap();
        assert!(jacobian_reduced(&p, &st, 0.1, 0.1).is_err());
    }

    #[test]
    fn subcritical_e0_is_stable() {
        let p = params(0.01, 0.001);
        let (threshold, verdict, consistent) = theorem2_consistency(&p, 0.2, 0.05).unwrap();
        assert!(threshold < 1.0);
        assert!(verdict.is_stable());
        assert!(consistent);
    }

    #[test]
    fn supercritical_e0_is_unstable() {
        let p = params(0.01, 0.5);
        let (threshold, verdict, consistent) = theorem2_consistency(&p, 0.05, 0.02).unwrap();
        assert!(threshold > 1.0);
        assert!(matches!(verdict, Stability::Unstable { .. }));
        assert!(consistent);
    }

    #[test]
    fn near_critical_abscissa_tracks_r0_minus_one() {
        // Calibrate to r0 = 1: the largest eigenvalue should be ≈ Γ − ε2 = 0.
        let p = params(0.01, 0.1);
        let (cal, _) = crate::equilibrium::calibrate_acceptance(&p, 1.0, 0.2, 0.05).unwrap();
        let verdict = local_stability_e0(&cal, 0.2, 0.05).unwrap();
        match verdict {
            Stability::Marginal { abscissa } => assert!(abscissa.abs() < 1e-9),
            other => panic!("expected marginal verdict, got {other:?}"),
        }
    }

    #[test]
    fn eigenvalue_matches_papers_closed_form() {
        // Paper: eigenvalues of J(E0) are −ε1, −ε2 and Γ − ε2 with
        // Γ = (α/ε1)(1/⟨k⟩) Σ λ_i ϕ_i. Verify the abscissa equals
        // max(−ε1, Γ − ε2).
        let p = params(0.01, 0.3);
        let (eps1, eps2) = (0.1, 0.05);
        let gamma = p.alpha() / eps1 * p.lambda_phi_sum() / p.mean_degree();
        let expect = (gamma - eps2).max(-eps1);
        let e0 = zero_equilibrium(&p, eps1, eps2).unwrap();
        let jac = jacobian_reduced(&p, &e0, eps1, eps2).unwrap();
        let abscissa = spectral_abscissa(&jac).unwrap();
        assert!(
            (abscissa - expect).abs() < 1e-9,
            "abscissa {abscissa} vs closed form {expect}"
        );
    }

    #[test]
    fn empirical_convergence_to_e0_subcritical() {
        let p = params(0.01, 0.001);
        let e0 = zero_equilibrium(&p, 0.2, 0.05).unwrap();
        let initials: Vec<NetworkState> = [0.05, 0.3, 0.9]
            .iter()
            .map(|&i0| NetworkState::initial_uniform(p.n_classes(), i0).unwrap())
            .collect();
        let dists = empirical_convergence(&p, 0.2, 0.05, &initials, 400.0, &e0).unwrap();
        for d in dists {
            assert!(d < 1e-3, "distance {d} did not vanish");
        }
    }

    #[test]
    fn empirical_convergence_to_eplus_supercritical() {
        let p = params(0.01, 0.5);
        let (eps1, eps2) = (0.05, 0.02);
        let ep = positive_equilibrium(&p, eps1, eps2).unwrap();
        let initials: Vec<NetworkState> = [0.01, 0.2, 0.7]
            .iter()
            .map(|&i0| NetworkState::initial_uniform(p.n_classes(), i0).unwrap())
            .collect();
        let dists = empirical_convergence(&p, eps1, eps2, &initials, 3000.0, &ep).unwrap();
        for d in dists {
            assert!(d < 1e-3, "distance {d} did not vanish");
        }
    }

    #[test]
    fn theorem3_lyapunov_descends_subcritically() {
        let p = params(0.01, 0.001);
        let (eps1, eps2) = (0.2, 0.05);
        assert!(crate::equilibrium::r0(&p, eps1, eps2).unwrap() < 1.0);
        let init = NetworkState::initial_uniform(p.n_classes(), 0.3).unwrap();
        let traj = crate::simulate::simulate(
            &p,
            crate::control::ConstantControl::new(eps1, eps2),
            &init,
            100.0,
            &crate::simulate::SimulateOptions::default(),
        )
        .unwrap();
        let (series, monotone) =
            lyapunov_descent_check(&traj, |st| lyapunov_v0(&p, st, eps2), 1e-9).unwrap();
        assert!(monotone, "V0 must be non-increasing below threshold");
        assert!(series[0] > *series.last().unwrap());
        assert!(*series.last().unwrap() >= 0.0);
    }

    #[test]
    fn theorem4_lyapunov_descends_supercritically() {
        let p = params(0.01, 0.5);
        let (eps1, eps2) = (0.05, 0.02);
        assert!(crate::equilibrium::r0(&p, eps1, eps2).unwrap() > 1.0);
        let eplus = positive_equilibrium(&p, eps1, eps2).unwrap();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.05).unwrap();
        let traj = crate::simulate::simulate(
            &p,
            crate::control::ConstantControl::new(eps1, eps2),
            &init,
            500.0,
            &crate::simulate::SimulateOptions {
                n_out: 101,
                ..Default::default()
            },
        )
        .unwrap();
        let (series, monotone) =
            lyapunov_descent_check(&traj, |st| lyapunov_vplus(&p, st, &eplus), 1e-7).unwrap();
        assert!(monotone, "V+ must be non-increasing above threshold");
        // V+ is non-negative and vanishes at E+.
        assert!(series.iter().all(|&v| v >= -1e-12));
        assert!(*series.last().unwrap() < series[0] * 1e-2);
    }

    #[test]
    fn lyapunov_vplus_is_zero_at_equilibrium() {
        let p = params(0.01, 0.5);
        let (eps1, eps2) = (0.05, 0.02);
        let eplus = positive_equilibrium(&p, eps1, eps2).unwrap();
        let v = lyapunov_vplus(&p, &eplus, &eplus).unwrap();
        assert!(v.abs() < 1e-12, "V+(E+) = {v}");
    }

    #[test]
    fn lyapunov_validation() {
        let p = params(0.01, 0.1);
        let st = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        assert!(lyapunov_v0(&p, &st, 0.0).is_err());
        // Zero infection makes V+ undefined (ln 0).
        let zero = NetworkState::initial_from_infected(vec![0.0; p.n_classes()]).unwrap();
        let fake_plus = NetworkState::initial_uniform(p.n_classes(), 0.2).unwrap();
        assert!(lyapunov_vplus(&p, &zero, &fake_plus).is_err());
    }

    #[test]
    fn stability_enum_helpers() {
        assert!(Stability::from_abscissa(-0.5).is_stable());
        assert!(!Stability::from_abscissa(0.5).is_stable());
        assert!(matches!(
            Stability::from_abscissa(0.0),
            Stability::Marginal { .. }
        ));
    }
}
