//! High-level trajectory simulation.
//!
//! Wraps the adaptive integrator to produce [`Trajectory`] objects — the
//! time series behind every figure in the paper's evaluation — together
//! with the derived series (distance-to-equilibrium, `Θ(t)`, `r0(t)`).

use crate::control::ControlSchedule;
use crate::model::{MassConvention, RumorModel};
use crate::params::ModelParams;
use crate::state::NetworkState;
use crate::{CoreError, Result};
use rumor_ode::integrator::{Adaptive, AdaptiveConfig};

/// A simulated trajectory of the rumor system sampled on an output grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    times: Vec<f64>,
    states: Vec<NetworkState>,
}

impl Trajectory {
    /// Assembles a trajectory from raw parts — used by downstream crates
    /// (e.g. the heuristic controller) that produce state series outside
    /// the `simulate` entry points.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, are empty, or the times
    /// are not non-decreasing.
    pub fn from_parts(times: Vec<f64>, states: Vec<NetworkState>) -> Self {
        assert_eq!(times.len(), states.len(), "times/states length mismatch");
        assert!(
            !times.is_empty(),
            "trajectory must have at least one sample"
        );
        assert!(
            times.windows(2).all(|w| w[1] >= w[0]),
            "times must be non-decreasing"
        );
        Trajectory { times, states }
    }

    /// The sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sampled states (parallel to [`Trajectory::times`]).
    pub fn states(&self) -> &[NetworkState] {
        &self.states
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the trajectory has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The final sampled state.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_state(&self) -> &NetworkState {
        self.states.last().expect("empty trajectory")
    }

    /// Per-sample infinity-norm distance to `target` — the
    /// `Dist0(t)` / `Dist+(t)` series of Figs. 2(a) and 3(a).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn dist_series(&self, target: &NetworkState) -> Result<Vec<f64>> {
        self.states.iter().map(|s| s.dist_inf(target)).collect()
    }

    /// Per-sample `Θ(t)`.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn theta_series(&self, params: &ModelParams) -> Result<Vec<f64>> {
        self.states.iter().map(|s| s.theta(params)).collect()
    }

    /// Per-sample total infected density `Σ_i I_i(t)`.
    pub fn total_infected_series(&self) -> Vec<f64> {
        self.states
            .iter()
            .map(NetworkState::total_infected)
            .collect()
    }

    /// The `S`, `I` and `R` series of a single degree class — the curves
    /// of Figs. 2(b–d) and 3(b–d).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `class` is out of
    /// range.
    pub fn class_series(&self, class: usize) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>)> {
        if self.states.first().is_none_or(|s| class >= s.n_classes()) {
            return Err(CoreError::DimensionMismatch {
                expected: self.states.first().map_or(0, NetworkState::n_classes),
                found: class,
            });
        }
        let s = self.states.iter().map(|st| st.s()[class]).collect();
        let i = self.states.iter().map(|st| st.i()[class]).collect();
        let r = self.states.iter().map(|st| st.r()[class]).collect();
        Ok((s, i, r))
    }
}

/// Options for [`simulate`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateOptions {
    /// Number of output samples (uniformly spaced on `[0, tf]`).
    pub n_out: usize,
    /// Mass convention of the `R` equation.
    pub convention: MassConvention,
    /// Integrator tolerances.
    pub ode: AdaptiveConfig,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        SimulateOptions {
            n_out: 201,
            convention: MassConvention::default(),
            ode: AdaptiveConfig {
                rtol: 1e-8,
                atol: 1e-10,
                ..AdaptiveConfig::default()
            },
        }
    }
}

/// Simulates the rumor system from `initial` over `[0, tf]` under the
/// given countermeasure schedule.
///
/// # Example
///
/// ```
/// use rumor_core::control::ConstantControl;
/// use rumor_core::functions::AcceptanceRate;
/// use rumor_core::params::ModelParams;
/// use rumor_core::simulate::{simulate, SimulateOptions};
/// use rumor_core::state::NetworkState;
/// use rumor_net::degree::DegreeClasses;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3])?;
/// let params = ModelParams::builder(classes)
///     .alpha(0.01)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.001 })
///     .build()?;
/// let initial = NetworkState::initial_uniform(params.n_classes(), 0.1)?;
/// let traj = simulate(&params, ConstantControl::new(0.2, 0.1), &initial,
///                     50.0, &SimulateOptions::default())?;
/// // Strong countermeasures on a weak rumor: infection collapses.
/// assert!(traj.last_state().total_infected() < 0.01);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] if `tf ≤ 0` or `n_out < 2`.
/// * [`CoreError::DimensionMismatch`] if `initial` does not match the
///   parameter class count.
/// * Propagated integration failures.
pub fn simulate(
    params: &ModelParams,
    control: impl ControlSchedule,
    initial: &NetworkState,
    tf: f64,
    options: &SimulateOptions,
) -> Result<Trajectory> {
    if !(tf > 0.0) || !tf.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "tf",
            message: format!("final time must be positive and finite, got {tf}"),
        });
    }
    if options.n_out < 2 {
        return Err(CoreError::InvalidParameter {
            name: "n_out",
            message: "need at least two output samples".into(),
        });
    }
    if initial.n_classes() != params.n_classes() {
        return Err(CoreError::DimensionMismatch {
            expected: params.n_classes(),
            found: initial.n_classes(),
        });
    }
    let grid: Vec<f64> = (0..options.n_out)
        .map(|i| tf * i as f64 / (options.n_out - 1) as f64)
        .collect();
    simulate_grid(params, control, initial, &grid, options)
}

/// Simulates and samples at caller-specified times (must be
/// non-decreasing, starting at 0).
///
/// # Errors
///
/// Same as [`simulate`], plus validation of the grid.
pub fn simulate_grid(
    params: &ModelParams,
    control: impl ControlSchedule,
    initial: &NetworkState,
    grid: &[f64],
    options: &SimulateOptions,
) -> Result<Trajectory> {
    if grid.len() < 2 || grid[0] != 0.0 || grid.windows(2).any(|w| w[1] < w[0]) {
        return Err(CoreError::InvalidParameter {
            name: "grid",
            message: "grid must start at 0 and be non-decreasing with at least two samples".into(),
        });
    }
    let model = RumorModel::with_convention(params, control, options.convention);
    let tf = *grid.last().expect("non-empty grid");
    let mut driver = Adaptive::with_config(options.ode);
    let sol = driver.integrate(&model, 0.0, &initial.to_flat(), tf)?;
    let mut states = Vec::with_capacity(grid.len());
    for &t in grid {
        let flat = sol.sample(t)?;
        states.push(NetworkState::from_flat(&flat)?);
    }
    Ok(Trajectory {
        times: grid.to_vec(),
        states,
    })
}

/// The instantaneous threshold `r0(t)` under a time-varying schedule —
/// the series of Fig. 4(b).
///
/// # Errors
///
/// Propagates threshold validation failures (e.g. a schedule that
/// reaches zero on either channel, where `r0` diverges).
pub fn r0_series(
    params: &ModelParams,
    control: impl ControlSchedule,
    times: &[f64],
) -> Result<Vec<f64>> {
    times
        .iter()
        .map(|&t| crate::equilibrium::r0(params, control.eps1(t), control.eps2(t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{ConstantControl, FnControl};
    use crate::equilibrium::{positive_equilibrium, zero_equilibrium};
    use crate::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params(alpha: f64, lambda0: f64) -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(alpha)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    #[test]
    fn simulate_produces_requested_grid() {
        let p = params(0.01, 0.05);
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let traj = simulate(
            &p,
            ConstantControl::new(0.2, 0.05),
            &init,
            10.0,
            &SimulateOptions::default(),
        )
        .unwrap();
        assert_eq!(traj.len(), 201);
        assert_eq!(traj.times()[0], 0.0);
        assert_eq!(*traj.times().last().unwrap(), 10.0);
        assert!(!traj.is_empty());
    }

    #[test]
    fn subcritical_trajectory_converges_to_e0() {
        let p = params(0.01, 0.001);
        let (eps1, eps2) = (0.2, 0.05);
        assert!(crate::equilibrium::r0(&p, eps1, eps2).unwrap() < 1.0);
        let e0 = zero_equilibrium(&p, eps1, eps2).unwrap();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.3).unwrap();
        let traj = simulate(
            &p,
            ConstantControl::new(eps1, eps2),
            &init,
            400.0,
            &SimulateOptions::default(),
        )
        .unwrap();
        let dists = traj.dist_series(&e0).unwrap();
        assert!(dists[0] > 0.1);
        assert!(
            *dists.last().unwrap() < 1e-3,
            "final dist {}",
            dists.last().unwrap()
        );
        // Infection dies out monotonically in the tail.
        let infected = traj.total_infected_series();
        assert!(*infected.last().unwrap() < 1e-4);
    }

    #[test]
    fn supercritical_trajectory_converges_to_eplus() {
        let p = params(0.01, 0.5);
        let (eps1, eps2) = (0.05, 0.02);
        assert!(crate::equilibrium::r0(&p, eps1, eps2).unwrap() > 1.0);
        let ep = positive_equilibrium(&p, eps1, eps2).unwrap();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.05).unwrap();
        let traj = simulate(
            &p,
            ConstantControl::new(eps1, eps2),
            &init,
            3000.0,
            &SimulateOptions {
                n_out: 301,
                ..Default::default()
            },
        )
        .unwrap();
        let dists = traj.dist_series(&ep).unwrap();
        assert!(
            *dists.last().unwrap() < 1e-3,
            "final dist {}",
            dists.last().unwrap()
        );
        // Endemic: infection persists.
        assert!(traj.last_state().total_infected() > 1e-3);
    }

    #[test]
    fn class_series_extraction() {
        let p = params(0.01, 0.05);
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let traj = simulate(
            &p,
            ConstantControl::new(0.2, 0.05),
            &init,
            5.0,
            &SimulateOptions::default(),
        )
        .unwrap();
        let (s, i, r) = traj.class_series(0).unwrap();
        assert_eq!(s.len(), traj.len());
        assert!((s[0] - 0.9).abs() < 1e-9);
        assert!((i[0] - 0.1).abs() < 1e-9);
        assert_eq!(r[0], 0.0);
        assert!(traj.class_series(99).is_err());
    }

    #[test]
    fn theta_series_tracks_infection() {
        let p = params(0.01, 0.001);
        let init = NetworkState::initial_uniform(p.n_classes(), 0.5).unwrap();
        let traj = simulate(
            &p,
            ConstantControl::new(0.2, 0.1),
            &init,
            100.0,
            &SimulateOptions::default(),
        )
        .unwrap();
        let thetas = traj.theta_series(&p).unwrap();
        assert!(thetas[0] > 0.0);
        assert!(*thetas.last().unwrap() < thetas[0] * 0.01);
    }

    #[test]
    fn validation_errors() {
        let p = params(0.01, 0.05);
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let opts = SimulateOptions::default();
        assert!(simulate(&p, ConstantControl::none(), &init, 0.0, &opts).is_err());
        assert!(simulate(&p, ConstantControl::none(), &init, -1.0, &opts).is_err());
        let bad_opts = SimulateOptions {
            n_out: 1,
            ..Default::default()
        };
        assert!(simulate(&p, ConstantControl::none(), &init, 1.0, &bad_opts).is_err());
        let wrong_dim = NetworkState::initial_uniform(2, 0.1).unwrap();
        assert!(simulate(&p, ConstantControl::none(), &wrong_dim, 1.0, &opts).is_err());
        // Bad grids.
        assert!(simulate_grid(&p, ConstantControl::none(), &init, &[0.0], &opts).is_err());
        assert!(simulate_grid(&p, ConstantControl::none(), &init, &[1.0, 2.0], &opts).is_err());
        assert!(
            simulate_grid(&p, ConstantControl::none(), &init, &[0.0, 2.0, 1.0], &opts).is_err()
        );
    }

    #[test]
    fn r0_series_follows_schedule() {
        let p = params(0.01, 0.05);
        let control = FnControl::new(|t: f64| 0.1 + 0.1 * t, |_| 0.05);
        let times = [0.0, 1.0, 2.0];
        let series = r0_series(&p, &control, &times).unwrap();
        // ε1 grows with t, so r0 decreases.
        assert!(series[0] > series[1] && series[1] > series[2]);
        // And matches the direct formula at t = 0.
        let direct = crate::equilibrium::r0(&p, 0.1, 0.05).unwrap();
        assert!((series[0] - direct).abs() < 1e-12);
    }
}
