//! Bit-identity of the chunked hot-path kernels against their scalar
//! references, at every class count the workloads exercise — including
//! the chunk boundary cases around `LANES = 8` and the paper's Digg
//! class counts (264 small-scale, 848 full-scale).
//!
//! These tests are the contract named in DESIGN.md § scale architecture:
//! any future kernel rewrite that changes the floating-point association
//! order fails here instead of silently shifting every trajectory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumor_core::control::ConstantControl;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::kernels;
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_net::degree::DegreeClasses;
use rumor_ode::system::OdeSystem;

/// Class counts under test: 1 (degenerate), 7/8/9 (chunk boundary),
/// 264 (small-scale Digg), 848 (full-scale Digg).
const CLASS_COUNTS: [usize; 6] = [1, 7, 8, 9, 264, 848];

/// Parameters with exactly `n` degree classes: one node per distinct
/// degree `1..=n` (two for odd-degree parity safety is unnecessary —
/// `DegreeClasses` takes the sequence verbatim).
fn params_with_classes(n: usize) -> ModelParams {
    let degrees: Vec<usize> = (1..=n).collect();
    let classes = DegreeClasses::from_degrees(&degrees).expect("distinct degrees");
    assert_eq!(classes.len(), n);
    ModelParams::builder(classes)
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params")
}

fn random_state(n: usize, rng: &mut StdRng) -> Vec<f64> {
    // A flat [S.., I.., R..] state; entries need not lie on the simplex
    // for a pure kernel-identity check.
    (0..3 * n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

#[test]
fn theta_flat_is_bit_identical_to_scalar_reference_at_every_class_count() {
    let mut rng = StdRng::seed_from_u64(0xD166);
    for &n in &CLASS_COUNTS {
        let p = params_with_classes(n);
        let model = RumorModel::new(&p, ConstantControl::new(0.2, 0.05));
        for _ in 0..10 {
            let y = random_state(n, &mut rng);
            let chunked = model.theta_flat(&y);
            // The model reduces Θ over the fixed partition plan (so the
            // association is identical with and without an inner pool);
            // the reference is the partitioned *scalar* mirror. For
            // n <= PART_CHUNK this equals the plain scalar dot.
            let scalar = kernels::dot_partitioned_scalar(p.theta_weights(), &y[n..2 * n]);
            assert_eq!(
                chunked.to_bits(),
                scalar.to_bits(),
                "theta mismatch at n = {n}"
            );
            if n <= kernels::PART_CHUNK {
                assert_eq!(
                    scalar.to_bits(),
                    kernels::dot_scalar(p.theta_weights(), &y[n..2 * n]).to_bits(),
                    "single-partition theta must equal the plain scalar dot at n = {n}"
                );
            }
        }
    }
}

#[test]
fn model_rhs_is_bit_identical_to_scalar_reference_at_every_class_count() {
    let mut rng = StdRng::seed_from_u64(0x2009);
    for &n in &CLASS_COUNTS {
        let p = params_with_classes(n);
        let model = RumorModel::new(&p, ConstantControl::new(0.2, 0.05));
        for _ in 0..10 {
            let y = random_state(n, &mut rng);
            let mut fast = vec![0.0; 3 * n];
            model.rhs(0.0, &y, &mut fast);

            // Scalar reference path: partitioned scalar Θ reduction +
            // scalar RHS map.
            let theta = kernels::dot_partitioned_scalar(p.theta_weights(), &y[n..2 * n]);
            let mut ds = vec![0.0; n];
            let mut di = vec![0.0; n];
            let mut dr = vec![0.0; n];
            kernels::sir_rhs_scalar(
                &y[..n],
                &y[n..2 * n],
                p.lambda(),
                theta,
                p.alpha(),
                0.2,
                0.05,
                p.alpha(),
                &mut ds,
                &mut di,
                &mut dr,
            );
            for i in 0..n {
                assert_eq!(fast[i].to_bits(), ds[i].to_bits(), "dS at n = {n}, i = {i}");
                assert_eq!(
                    fast[n + i].to_bits(),
                    di[i].to_bits(),
                    "dI at n = {n}, i = {i}"
                );
                assert_eq!(
                    fast[2 * n + i].to_bits(),
                    dr[i].to_bits(),
                    "dR at n = {n}, i = {i}"
                );
            }
        }
    }
}

#[test]
fn reduction_kernels_match_their_scalar_references_on_random_data() {
    let mut rng = StdRng::seed_from_u64(7);
    for &n in &CLASS_COUNTS {
        for _ in 0..20 {
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let s: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            assert_eq!(
                kernels::dot(&a, &b).to_bits(),
                kernels::dot_scalar(&a, &b).to_bits(),
                "dot at n = {n}"
            );
            assert_eq!(
                kernels::coupling_sum(&a, &b, &w, &s).to_bits(),
                kernels::coupling_sum_scalar(&a, &b, &w, &s).to_bits(),
                "coupling at n = {n}"
            );
        }
    }
}

/// Intra-parallel identity: a model driven through an [`InnerPool`] of
/// 1, 2, 4 or 8 threads must reproduce the serial model bit for bit at
/// every class count — the tentpole determinism contract. Θ reductions
/// go through per-chunk partials folded in chunk order; the RHS map
/// writes disjoint chunk slices.
#[test]
fn pooled_model_rhs_is_bit_identical_to_serial_at_every_thread_count() {
    use rumor_par::InnerPool;
    let mut rng = StdRng::seed_from_u64(0x9A8A11E1);
    for &n in &CLASS_COUNTS {
        let p = params_with_classes(n);
        let serial = RumorModel::new(&p, ConstantControl::new(0.2, 0.05));
        for threads in [1usize, 2, 4, 8] {
            let pool = std::sync::Arc::new(InnerPool::new(threads));
            let pooled = RumorModel::new(&p, ConstantControl::new(0.2, 0.05))
                .with_pool(Some(std::sync::Arc::clone(&pool)));
            for _ in 0..5 {
                let y = random_state(n, &mut rng);
                assert_eq!(
                    serial.theta_flat(&y).to_bits(),
                    pooled.theta_flat(&y).to_bits(),
                    "theta at n = {n}, threads = {threads}"
                );
                let mut d_serial = vec![0.0; 3 * n];
                let mut d_pooled = vec![0.0; 3 * n];
                serial.rhs(0.0, &y, &mut d_serial);
                pooled.rhs(0.0, &y, &mut d_pooled);
                for i in 0..3 * n {
                    assert_eq!(
                        d_serial[i].to_bits(),
                        d_pooled[i].to_bits(),
                        "rhs at n = {n}, threads = {threads}, i = {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn chunked_dot_stays_within_float_noise_of_naive_sum() {
    // The chunked association differs from a naive left-fold; the gap
    // must stay at rounding-noise scale so results remain comparable
    // with pre-chunking baselines at experiment tolerances.
    let mut rng = StdRng::seed_from_u64(99);
    for &n in &CLASS_COUNTS {
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let chunked = kernels::dot(&a, &b);
        assert!(
            (chunked - naive).abs() <= 1e-13 * naive.abs().max(1.0),
            "n = {n}: chunked {chunked} vs naive {naive}"
        );
    }
}
