//! Property-based tests of the rumor-model invariants.

// Index-based loops mirror the per-class stencils (workspace idiom).
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use rumor_core::control::ConstantControl;
use rumor_core::equilibrium::{calibrate_acceptance, positive_equilibrium, r0, zero_equilibrium};
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::model::{MassConvention, RumorModel};
use rumor_core::params::ModelParams;
use rumor_core::state::NetworkState;
use rumor_ode::integrator::Adaptive;
use rumor_ode::system::OdeSystem;

/// Strategy: a small random degree partition (as a degree multiset).
fn degree_sequence() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..30, 4..40)
}

fn params_from(degrees: &[usize], alpha: f64, lambda0: f64) -> ModelParams {
    let classes = rumor_net::degree::DegreeClasses::from_degrees(degrees).expect("classes");
    ModelParams::builder(classes)
        .alpha(alpha)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn r0_scales_linearly_with_alpha_and_lambda(
        degrees in degree_sequence(),
        alpha in 0.001..0.1_f64,
        lambda0 in 0.001..0.5_f64,
        factor in 1.1..10.0_f64,
    ) {
        let p = params_from(&degrees, alpha, lambda0);
        let base = r0(&p, 0.1, 0.1).expect("r0");
        // Linear in the acceptance scale.
        let scaled = p.with_acceptance(p.acceptance().scaled(factor)).expect("scaled");
        let up = r0(&scaled, 0.1, 0.1).expect("r0");
        prop_assert!((up / base - factor).abs() < 1e-9);
        // Inverse in each countermeasure.
        let half = r0(&p, 0.2, 0.1).expect("r0");
        prop_assert!((base / half - 2.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_always_hits_target(
        degrees in degree_sequence(),
        alpha in 0.001..0.05_f64,
        target in 0.1..5.0_f64,
    ) {
        let p = params_from(&degrees, alpha, 0.1);
        let (cal, factor) = calibrate_acceptance(&p, target, 0.1, 0.05).expect("calibrate");
        prop_assert!(factor > 0.0);
        let got = r0(&cal, 0.1, 0.05).expect("r0");
        prop_assert!((got - target).abs() < 1e-8, "got {got}, target {target}");
    }

    #[test]
    fn zero_equilibrium_is_a_fixed_point(
        degrees in degree_sequence(),
        alpha in 0.001..0.05_f64,
        eps1 in 0.06..0.5_f64,
        eps2 in 0.01..0.5_f64,
    ) {
        let p = params_from(&degrees, alpha, 0.05);
        let e0 = zero_equilibrium(&p, eps1, eps2).expect("E0");
        let model = RumorModel::new(&p, ConstantControl::new(eps1, eps2));
        let y = e0.to_flat();
        let mut d = vec![0.0; y.len()];
        model.rhs(0.0, &y, &mut d);
        // Conserving convention: E0 is a genuine fixed point of all 3n eqs.
        for v in &d {
            prop_assert!(v.abs() < 1e-12, "residual {v}");
        }
    }

    #[test]
    fn positive_equilibrium_is_a_fixed_point_when_supercritical(
        degrees in degree_sequence(),
        alpha in 0.005..0.05_f64,
        target in 1.2..4.0_f64,
    ) {
        let (eps1, eps2) = (0.1, 0.05);
        let base = params_from(&degrees, alpha, 0.05);
        // Calibrate into the supercritical regime, then check Eq. (3).
        let (p, _) = calibrate_acceptance(&base, target, eps1, eps2).expect("calibrate");
        match positive_equilibrium(&p, eps1, eps2) {
            Ok(ep) => {
                let theta = ep.theta(&p).expect("theta");
                for j in 0..p.n_classes() {
                    let lam = p.lambda()[j];
                    let ds = p.alpha() - lam * ep.s()[j] * theta - eps1 * ep.s()[j];
                    let di = lam * ep.s()[j] * theta - eps2 * ep.i()[j];
                    prop_assert!(ds.abs() < 1e-8, "dS residual {ds}");
                    prop_assert!(di.abs() < 1e-8, "dI residual {di}");
                }
            }
            // Some random regimes put E+ outside the simplex; that is a
            // documented validation, not a failure of the fixed point.
            Err(rumor_core::CoreError::InvalidParameter { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        }
    }

    #[test]
    fn mass_conservation_under_default_convention(
        degrees in degree_sequence(),
        alpha in 0.0..0.05_f64,
        i0 in 0.01..0.9_f64,
    ) {
        let p = params_from(&degrees, alpha, 0.05);
        let model = RumorModel::new(&p, ConstantControl::new(0.1, 0.05));
        let y0 = NetworkState::initial_uniform(p.n_classes(), i0).expect("init").to_flat();
        let sol = Adaptive::new().integrate(&model, 0.0, &y0, 10.0).expect("integrate");
        let yf = sol.last_state();
        let n = p.n_classes();
        for c in 0..n {
            let mass = yf[c] + yf[n + c] + yf[2 * n + c];
            prop_assert!((mass - 1.0).abs() < 1e-6, "class {c} mass {mass}");
        }
    }

    #[test]
    fn as_printed_convention_grows_mass_at_alpha(
        degrees in degree_sequence(),
        alpha in 0.001..0.05_f64,
    ) {
        let p = params_from(&degrees, alpha, 0.05);
        let model = RumorModel::with_convention(
            &p,
            ConstantControl::new(0.1, 0.05),
            MassConvention::AsPrinted,
        );
        let y0 = NetworkState::initial_uniform(p.n_classes(), 0.1).expect("init").to_flat();
        let tf = 7.0;
        let sol = Adaptive::new().integrate(&model, 0.0, &y0, tf).expect("integrate");
        let yf = sol.last_state();
        let n = p.n_classes();
        for c in 0..n {
            let mass = yf[c] + yf[n + c] + yf[2 * n + c];
            prop_assert!((mass - 1.0 - alpha * tf).abs() < 1e-6);
        }
    }

    #[test]
    fn susceptible_and_infected_densities_stay_nonnegative(
        degrees in degree_sequence(),
        i0 in 0.01..0.99_f64,
        eps1 in 0.0..0.5_f64,
        eps2 in 0.0..0.5_f64,
    ) {
        let p = params_from(&degrees, 0.01, 0.1);
        let model = RumorModel::new(&p, ConstantControl::new(eps1, eps2));
        let y0 = NetworkState::initial_uniform(p.n_classes(), i0).expect("init").to_flat();
        let sol = Adaptive::new().integrate(&model, 0.0, &y0, 30.0).expect("integrate");
        let n = p.n_classes();
        for state in sol.states() {
            for c in 0..2 * n {
                prop_assert!(state[c] >= -1e-9, "S/I component {c} went negative: {}", state[c]);
            }
        }
    }

    #[test]
    fn theta_is_linear_in_infection(
        degrees in degree_sequence(),
        i0 in 0.01..0.45_f64,
    ) {
        let p = params_from(&degrees, 0.01, 0.1);
        let a = NetworkState::initial_uniform(p.n_classes(), i0).expect("a");
        let b = NetworkState::initial_uniform(p.n_classes(), 2.0 * i0).expect("b");
        let ta = a.theta(&p).expect("theta");
        let tb = b.theta(&p).expect("theta");
        prop_assert!((tb - 2.0 * ta).abs() < 1e-12);
    }

    #[test]
    fn flat_roundtrip_preserves_state(
        s in proptest::collection::vec(0.0..1.0_f64, 1..20),
    ) {
        let n = s.len();
        let i: Vec<f64> = s.iter().map(|x| (1.0 - x) * 0.5).collect();
        let r: Vec<f64> = s.iter().zip(&i).map(|(a, b)| (1.0 - a - b).max(0.0)).collect();
        let st = NetworkState::new(s, i, r).expect("state");
        let back = NetworkState::from_flat(&st.to_flat()).expect("roundtrip");
        prop_assert_eq!(back.n_classes(), n);
        prop_assert_eq!(st, back);
    }

    #[test]
    fn flat_roundtrip_across_kernel_class_counts(
        size_idx in 0usize..5,
        seed in 0u64..u64::MAX,
    ) {
        // Class counts straddling the lane and partition widths, matching
        // the kernel identity suites (and the generalized-layout proptests
        // in rumor-compartments).
        let n = [1usize, 7, 8, 9, 264][size_idx];
        // Deterministic SplitMix64 fill, uniformly in [0, 1).
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let s: Vec<f64> = (0..n).map(|_| next()).collect();
        let i: Vec<f64> = (0..n).map(|_| next()).collect();
        let r: Vec<f64> = (0..n).map(|_| next()).collect();
        let st = NetworkState::new(s, i, r).expect("state");
        let flat = st.to_flat();
        prop_assert_eq!(flat.len(), 3 * n);
        let back = NetworkState::from_flat(&flat).expect("roundtrip");
        prop_assert_eq!(back.n_classes(), n);
        prop_assert_eq!(st, back);
    }

    #[test]
    fn from_flat_rejects_malformed_lengths(
        len in 1usize..200,
        value in 0.0..1.0_f64,
    ) {
        prop_assume!(len % 3 != 0);
        let flat = vec![value; len];
        prop_assert!(NetworkState::from_flat(&flat).is_err());
        prop_assert!(NetworkState::from_flat(&[]).is_err());
    }

    #[test]
    fn dist_inf_is_a_metric(
        i0 in 0.01..0.9_f64,
        i1 in 0.01..0.9_f64,
        i2 in 0.01..0.9_f64,
    ) {
        let a = NetworkState::initial_uniform(3, i0).expect("a");
        let b = NetworkState::initial_uniform(3, i1).expect("b");
        let c = NetworkState::initial_uniform(3, i2).expect("c");
        let ab = a.dist_inf(&b).expect("ab");
        let ba = b.dist_inf(&a).expect("ba");
        let ac = a.dist_inf(&c).expect("ac");
        let cb = c.dist_inf(&b).expect("cb");
        prop_assert!((ab - ba).abs() < 1e-15, "symmetry");
        prop_assert_eq!(a.dist_inf(&a).expect("aa"), 0.0);
        prop_assert!(ab <= ac + cb + 1e-12, "triangle inequality");
    }
}
