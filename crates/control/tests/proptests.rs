//! Property-based tests of the control-layer invariants.

use proptest::prelude::*;
use rumor_control::cost::{evaluate, running_integrand};
use rumor_control::costate::stationary_controls;
use rumor_control::schedule::PiecewiseControl;
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::control::{ConstantControl, ControlSchedule};
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_core::simulate::{simulate, SimulateOptions};
use rumor_core::state::NetworkState;
use rumor_net::degree::DegreeClasses;

fn params() -> ModelParams {
    let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
    ModelParams::builder(classes)
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn piecewise_control_stays_within_node_range(
        e1 in proptest::collection::vec(0.0..0.7_f64, 2..20),
        q in 0.0..1.0_f64,
    ) {
        let n = e1.len();
        let grid: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let hi = grid[n - 1];
        let e2: Vec<f64> = e1.iter().map(|v| 0.7 - v).collect();
        let pc = PiecewiseControl::from_values(grid, e1.clone(), e2).unwrap();
        let t = q * hi;
        let lo = e1.iter().cloned().fold(f64::INFINITY, f64::min);
        let up = e1.iter().cloned().fold(0.0_f64, f64::max);
        let v = pc.eps1(t);
        prop_assert!(v >= lo - 1e-12 && v <= up + 1e-12);
        // Channel 2 mirrors channel 1 around 0.35 at the nodes, so its
        // interpolant stays within [0, 0.7] too.
        let w = pc.eps2(t);
        prop_assert!((0.0..=0.7 + 1e-12).contains(&w));
    }

    #[test]
    fn clamping_enforces_bounds(
        e1 in proptest::collection::vec(0.0..3.0_f64, 2..15),
        cap in 0.05..1.0_f64,
    ) {
        let n = e1.len();
        let grid: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut pc = PiecewiseControl::from_values(grid, e1.clone(), e1).unwrap();
        let bounds = ControlBounds::new(cap, cap / 2.0).unwrap();
        pc.clamp_to(&bounds);
        prop_assert!(pc.eps1_values().iter().all(|&v| v <= cap + 1e-15));
        prop_assert!(pc.eps2_values().iter().all(|&v| v <= cap / 2.0 + 1e-15));
        prop_assert!(pc.eps1_values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn running_integrand_is_nonnegative_and_quadratic(
        s in proptest::collection::vec(0.0..1.0_f64, 1..8),
        i in proptest::collection::vec(0.0..1.0_f64, 1..8),
        e1 in 0.0..1.0_f64,
        e2 in 0.0..1.0_f64,
        c in 0.5..4.0_f64,
    ) {
        let w = CostWeights::new(5.0, 10.0).unwrap();
        let base = running_integrand(&s, &i, e1, e2, &w);
        prop_assert!(base >= 0.0);
        // Scaling both controls by c multiplies the integrand by c².
        let scaled = running_integrand(&s, &i, c * e1, c * e2, &w);
        prop_assert!((scaled - c * c * base).abs() <= 1e-9 * scaled.max(1.0));
    }

    #[test]
    fn cost_total_decomposes(eps1 in 0.0..0.4_f64, eps2 in 0.0..0.4_f64) {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let ctl = ConstantControl::new(eps1, eps2);
        let traj = simulate(&p, ctl, &init, 10.0, &SimulateOptions {
            n_out: 21,
            ..Default::default()
        })
        .unwrap();
        let w = CostWeights::paper_default();
        let cost = evaluate(&traj, ctl, &w).unwrap();
        prop_assert!(cost.truth_cost >= 0.0);
        prop_assert!(cost.blocking_cost >= 0.0);
        prop_assert!((cost.total() - cost.terminal_infection - cost.running()).abs() < 1e-12);
        // Zero controls ⇒ zero running cost.
        if eps1 == 0.0 && eps2 == 0.0 {
            prop_assert_eq!(cost.running(), 0.0);
        }
    }

    #[test]
    fn stationary_controls_scale_inversely_with_cost_weights(
        s in proptest::collection::vec(0.01..1.0_f64, 2..6),
        psi in proptest::collection::vec(0.0..2.0_f64, 2..6),
        factor in 1.5..8.0_f64,
    ) {
        prop_assume!(s.len() == psi.len());
        let i = s.clone();
        let phi = psi.clone();
        let w1 = CostWeights::new(2.0, 3.0).unwrap();
        let w2 = CostWeights::new(2.0 * factor, 3.0 * factor).unwrap();
        let (a1, a2) = stationary_controls(&s, &i, &psi, &phi, &w1);
        let (b1, b2) = stationary_controls(&s, &i, &psi, &phi, &w2);
        // Doubling the unit costs halves the stationary controls.
        prop_assert!((a1 - factor * b1).abs() < 1e-9 * a1.abs().max(1.0));
        prop_assert!((a2 - factor * b2).abs() < 1e-9 * a2.abs().max(1.0));
    }

    #[test]
    fn relative_change_is_zero_iff_identical(
        vals in proptest::collection::vec(0.01..0.5_f64, 2..10),
        bump in 0.01..0.2_f64,
    ) {
        let n = vals.len();
        let grid: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let a = PiecewiseControl::from_values(grid.clone(), vals.clone(), vals.clone()).unwrap();
        prop_assert_eq!(a.relative_change(&a.clone()).unwrap(), 0.0);
        let mut shifted = vals.clone();
        shifted[0] += bump;
        let b = PiecewiseControl::from_values(grid, shifted, vals).unwrap();
        prop_assert!(a.relative_change(&b).unwrap() > 0.0);
    }
}
