//! Bit-identity of the generalized multi-control FBSM against the
//! legacy sweep on the ported paper model.
//!
//! Same discipline as the kernel/arena identity suites: the
//! generalization earns its keep only if `optimize_compartments*` on
//! [`PaperSir`] reproduces `optimize_monitored` bit for bit — adjoint
//! RHS evaluations, iteration counts, cost/change histories, and every
//! node of the optimized schedules, serial and pooled, cold- and
//! warm-started.

use rumor_compartments::model::CompartmentAdjoint;
use rumor_compartments::paper::PaperSir;
use rumor_compartments::schedule::PairSchedule;
use rumor_control::costate::CostateSystem;
use rumor_control::fbsm::{optimize_monitored, FbsmOptions};
use rumor_control::multi::{
    optimize_compartments_monitored, MultiControlBounds, MultiFbsmOptions, MultiPiecewiseControl,
};
use rumor_control::schedule::PiecewiseControl;
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::control::ConstantControl;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_core::state::NetworkState;
use rumor_net::degree::DegreeClasses;
use rumor_ode::integrator::Adaptive;
use rumor_ode::system::OdeSystem;

fn params_for(n: usize) -> ModelParams {
    let degrees: Vec<usize> = (0..n).map(|i| 1 + i % 40).collect();
    let classes = DegreeClasses::from_degrees(&degrees).unwrap();
    ModelParams::builder(classes)
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.002 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap()
}

/// The legacy and generic sweeps configured identically.
fn option_pair(inner_threads: Option<usize>) -> (FbsmOptions, MultiFbsmOptions) {
    let legacy = FbsmOptions {
        n_nodes: 21,
        max_iterations: 5,
        tolerance: 1e-3,
        relaxation: 0.5,
        inner_threads,
        ..Default::default()
    };
    let multi = MultiFbsmOptions {
        n_nodes: legacy.n_nodes,
        max_iterations: legacy.max_iterations,
        tolerance: legacy.tolerance,
        relaxation: legacy.relaxation,
        relaxation_floor: legacy.relaxation_floor,
        ode: legacy.ode,
        terminal_weight: legacy.terminal_weight,
        initial_control: None,
        inner_threads,
        backtracking: legacy.backtracking,
    };
    (legacy, multi)
}

#[test]
fn adjoint_rhs_is_bit_identical_to_costate_system() {
    for n in [7usize, 264] {
        let p = params_for(n);
        let n = p.n_classes();
        let w = CostWeights::paper_default();
        let ctl = ConstantControl::new(0.15, 0.07);
        let port = PaperSir::from_params(&p, w.c1, w.c2).unwrap();

        // A real forward trajectory for the adjoint to sample.
        let model = RumorModel::new(&p, ctl);
        let mut y0 = vec![0.0; 3 * n];
        for j in 0..n {
            y0[j] = 0.9;
            y0[n + j] = 0.1;
        }
        let forward = Adaptive::new().integrate(&model, 0.0, &y0, 15.0).unwrap();

        let legacy = CostateSystem::new(&p, &forward, &ctl, w);
        let generic = CompartmentAdjoint::new(&port, &forward, PairSchedule(ctl));
        assert_eq!(legacy.dim(), generic.dim());
        assert_eq!(
            legacy.weighted_terminal_condition(2.5),
            generic.weighted_terminal_condition(2.5)
        );

        let psi0 = legacy.weighted_terminal_condition(1.0);
        let mut d_legacy = vec![0.0; 2 * n];
        let mut d_generic = vec![0.0; 2 * n];
        for t in [0.0, 3.7, 9.2, 15.0] {
            legacy.rhs(t, &psi0, &mut d_legacy);
            generic.rhs(t, &psi0, &mut d_generic);
            for (a, b) in d_legacy.iter().zip(&d_generic) {
                assert_eq!(a.to_bits(), b.to_bits(), "adjoint rhs at n = {n}, t = {t}");
            }
        }

        // Backward integrations agree bit for bit.
        let a = Adaptive::new()
            .integrate(&legacy, 15.0, &psi0, 0.0)
            .unwrap();
        let b = Adaptive::new()
            .integrate(&generic, 15.0, &psi0, 0.0)
            .unwrap();
        assert_eq!(a.len(), b.len());
        for (ya, yb) in a.flat_states().iter().zip(b.flat_states()) {
            assert_eq!(ya.to_bits(), yb.to_bits(), "backward pass at n = {n}");
        }
    }
}

/// Asserts one legacy/generic sweep pair is bit-identical end to end.
fn assert_sweeps_identical(
    p: &ModelParams,
    init: &NetworkState,
    tf: f64,
    legacy_opts: &FbsmOptions,
    multi_opts: &MultiFbsmOptions,
) {
    let w = CostWeights::paper_default();
    let bounds = ControlBounds::new(0.6, 0.6).unwrap();
    let legacy = optimize_monitored(p, init, tf, &bounds, &w, legacy_opts).unwrap();

    let port = PaperSir::from_params(p, w.c1, w.c2).unwrap();
    let multi_bounds = MultiControlBounds::new(vec![bounds.eps1_max, bounds.eps2_max]).unwrap();
    let generic =
        optimize_compartments_monitored(&port, &init.to_flat(), tf, &multi_bounds, multi_opts)
            .unwrap();

    assert_eq!(legacy.iterations, generic.iterations);
    assert_eq!(legacy.converged, generic.converged);
    assert_eq!(legacy.relaxation_backoffs, generic.relaxation_backoffs);
    assert_eq!(
        legacy.final_relaxation.to_bits(),
        generic.final_relaxation.to_bits()
    );
    assert_eq!(legacy.restored_checkpoint, generic.restored_checkpoint);
    assert_eq!(legacy.change_history.len(), generic.change_history.len());
    for (a, b) in legacy.change_history.iter().zip(&generic.change_history) {
        assert_eq!(a.to_bits(), b.to_bits(), "change history");
    }
    for (a, b) in legacy.cost_history.iter().zip(&generic.cost_history) {
        assert_eq!(a.to_bits(), b.to_bits(), "cost history");
    }
    assert_eq!(
        legacy.cost.total().to_bits(),
        generic.cost.total().to_bits(),
        "final cost"
    );
    for (c, series) in [legacy.control.eps1_values(), legacy.control.eps2_values()]
        .into_iter()
        .enumerate()
    {
        for (a, b) in series.iter().zip(generic.control.values(c)) {
            assert_eq!(a.to_bits(), b.to_bits(), "schedule channel {c}");
        }
    }
}

#[test]
fn generic_sweep_is_bit_identical_serial() {
    let p = params_for(30);
    let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
    let (legacy_opts, multi_opts) = option_pair(Some(1));
    assert_sweeps_identical(&p, &init, 10.0, &legacy_opts, &multi_opts);
}

#[test]
fn generic_sweep_is_bit_identical_pooled() {
    // 300 classes spans multiple kernel partitions, so the inner pool
    // actually dispatches in both sweeps.
    let p = params_for(300);
    let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
    for threads in [2usize, 4] {
        let (legacy_opts, multi_opts) = option_pair(Some(threads));
        assert_sweeps_identical(&p, &init, 10.0, &legacy_opts, &multi_opts);
    }
}

#[test]
fn generic_sweep_is_bit_identical_warm_started() {
    let p = params_for(30);
    let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
    let prior = PiecewiseControl::from_values(
        vec![0.0, 4.0, 10.0],
        vec![0.5, 0.3, 0.1],
        vec![0.05, 0.2, 0.4],
    )
    .unwrap();
    let (mut legacy_opts, mut multi_opts) = option_pair(Some(1));
    legacy_opts.initial_control = Some(prior.clone());
    multi_opts.initial_control = Some(MultiPiecewiseControl::from_pair(&prior));
    assert_sweeps_identical(&p, &init, 10.0, &legacy_opts, &multi_opts);
}

#[test]
fn generic_sweep_runs_to_convergence_like_the_legacy_sweep() {
    // Full convergence (not just a capped prefix): both sweeps stop at
    // the same iteration with the same schedule.
    let p = params_for(12);
    let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
    let (mut legacy_opts, mut multi_opts) = option_pair(Some(1));
    legacy_opts.max_iterations = 120;
    legacy_opts.tolerance = 1e-4;
    multi_opts.max_iterations = 120;
    multi_opts.tolerance = 1e-4;
    assert_sweeps_identical(&p, &init, 16.0, &legacy_opts, &multi_opts);
}
