//! Multi-control FBSM on the competing two-rumor model: convergence on
//! the small tier and the RCP2 warm-start round trip — the end-to-end
//! contract the durable-jobs layer relies on for campaign resume.

use rumor_control::checkpoint::{decode_multi_schedule, encode_multi_schedule};
use rumor_control::multi::{
    evaluate_compartments, optimize_compartments_monitored, MultiControlBounds, MultiFbsmOptions,
    MultiPiecewiseControl,
};
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_models::two_rumor::TwoRumorModel;
use rumor_net::degree::DegreeClasses;
use rumor_ode::integrator::AdaptiveConfig;

fn small_params() -> ModelParams {
    // Small-tier degree profile: a handful of classes with a hub.
    let degrees: Vec<usize> = (0..24).map(|i| 1 + i % 12).collect();
    let classes = DegreeClasses::from_degrees(&degrees).unwrap();
    ModelParams::builder(classes)
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap()
}

fn small_model() -> TwoRumorModel {
    TwoRumorModel::from_params(&small_params(), 0.03, 0.05, 0.08, 0.5, 5.0, 10.0).unwrap()
}

fn initial_state(n: usize) -> Vec<f64> {
    let mut y = vec![0.0; 4 * n];
    for j in 0..n {
        y[j] = 0.88;
        y[n + j] = 0.1;
        y[2 * n + j] = 0.02;
    }
    y
}

fn small_options() -> MultiFbsmOptions {
    MultiFbsmOptions {
        n_nodes: 51,
        max_iterations: 150,
        tolerance: 1e-4,
        relaxation: 0.4,
        ode: AdaptiveConfig {
            rtol: 1e-6,
            atol: 1e-8,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn multi_control_sweep_converges_on_the_small_tier() {
    let m = small_model();
    let n = small_params().n_classes();
    // A 0.2 box keeps the stationary map contractive on this problem;
    // wider boxes put grid nodes on the clamp boundary, where the
    // Picard iteration cycles instead of contracting.
    let bounds = MultiControlBounds::new(vec![0.2, 0.2]).unwrap();
    let result =
        optimize_compartments_monitored(&m, &initial_state(n), 40.0, &bounds, &small_options())
            .unwrap();
    assert!(
        result.converged,
        "two-rumor sweep did not converge in {} iterations (residual {:.3e})",
        result.iterations,
        result.change_history.last().copied().unwrap_or(f64::NAN)
    );
    let residual = result.change_history.last().copied().unwrap();
    assert!(residual <= 1e-4, "residual {residual:.3e} above tolerance");
    assert!(result.cost.total().is_finite());
    // Both channels live inside the box and actually act.
    for c in 0..2 {
        assert!(result
            .control
            .values(c)
            .iter()
            .all(|&v| (0.0..=0.2).contains(&v)));
        assert!(
            result.control.values(c).iter().any(|&v| v > 1e-6),
            "channel {c} never activates"
        );
    }
    // The optimized schedule beats doing nothing.
    let idle = MultiPiecewiseControl::constant(40.0, 51, &[0.0, 0.0]).unwrap();
    let grid: Vec<f64> = (0..51).map(|i| 40.0 * i as f64 / 50.0).collect();
    let idle_traj = rumor_compartments::simulate::simulate_compartments_grid(
        &m,
        &idle,
        &initial_state(n),
        &grid,
        &rumor_compartments::simulate::CompartmentSimOptions {
            n_out: grid.len(),
            ode: small_options().ode,
        },
        None,
    )
    .unwrap();
    let idle_cost = evaluate_compartments(&m, &idle_traj, &idle).unwrap();
    assert!(result.cost.total() < idle_cost.total());
}

#[test]
fn rcp2_warm_start_round_trips_byte_identically() {
    // The SIGKILL-resume contract: persist the optimized schedule as
    // RCP2 bytes, decode in a "restarted process", warm-start a new
    // sweep — the warm sweep must accept the schedule unchanged, and
    // re-encoding the decoded schedule must reproduce the bytes exactly.
    let m = small_model();
    let n = small_params().n_classes();
    let bounds = MultiControlBounds::new(vec![0.2, 0.2]).unwrap();
    let opts = MultiFbsmOptions {
        max_iterations: 25,
        ..small_options()
    };
    let first =
        optimize_compartments_monitored(&m, &initial_state(n), 40.0, &bounds, &opts).unwrap();

    let bytes = encode_multi_schedule(&first.control);
    let restored = decode_multi_schedule(&bytes).unwrap();
    assert_eq!(restored, first.control);
    assert_eq!(encode_multi_schedule(&restored), bytes);

    // The resumed sweep continues from the checkpoint: its first iterate
    // starts at the restored schedule, so it converges at least as fast
    // as the cold start would from here.
    let warm_opts = MultiFbsmOptions {
        initial_control: Some(restored),
        max_iterations: 150,
        ..small_options()
    };
    let resumed =
        optimize_compartments_monitored(&m, &initial_state(n), 40.0, &bounds, &warm_opts).unwrap();
    assert!(resumed.converged, "resumed sweep did not converge");
    // Warm-started resume spends fewer iterations than a full cold sweep.
    let cold =
        optimize_compartments_monitored(&m, &initial_state(n), 40.0, &bounds, &small_options())
            .unwrap();
    assert!(
        resumed.iterations <= cold.iterations,
        "warm resume took {} iterations, cold start {}",
        resumed.iterations,
        cold.iterations
    );
}
