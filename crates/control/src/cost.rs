//! Evaluation of the countermeasure cost functional (paper Eq. (13)).
//!
//! ```text
//! J = Σ_i I_i(tf) + ∫₀^tf Σ_i ( c1 ε1²(t) S_i²(t) + c2 ε2²(t) I_i²(t) ) dt
//! ```

use crate::{CostWeights, Result};
use rumor_core::control::ControlSchedule;
use rumor_core::simulate::Trajectory;
use rumor_numerics::quadrature::trapezoid_sampled;

/// Itemized cost of a countermeasure run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Terminal infection `Σ_i I_i(tf)`.
    pub terminal_infection: f64,
    /// `∫ Σ c1 ε1² S_i² dt` — the truth-spreading expenditure.
    pub truth_cost: f64,
    /// `∫ Σ c2 ε2² I_i² dt` — the blocking expenditure.
    pub blocking_cost: f64,
}

impl CostBreakdown {
    /// Running (integral) cost: truth + blocking.
    pub fn running(&self) -> f64 {
        self.truth_cost + self.blocking_cost
    }

    /// The full objective `J` (terminal + running).
    pub fn total(&self) -> f64 {
        self.terminal_infection + self.running()
    }
}

/// The instantaneous running-cost integrand
/// `Σ_i (c1 ε1² S_i² + c2 ε2² I_i²)` at one sample.
pub fn running_integrand(s: &[f64], i: &[f64], eps1: f64, eps2: f64, weights: &CostWeights) -> f64 {
    let s2: f64 = s.iter().map(|x| x * x).sum();
    let i2: f64 = i.iter().map(|x| x * x).sum();
    weights.c1 * eps1 * eps1 * s2 + weights.c2 * eps2 * eps2 * i2
}

/// Evaluates the cost functional along a simulated trajectory under the
/// schedule that produced it, integrating the running cost with the
/// trapezoid rule on the trajectory's own grid.
///
/// # Errors
///
/// Propagates quadrature validation failures (degenerate grids).
pub fn evaluate(
    trajectory: &Trajectory,
    control: impl ControlSchedule,
    weights: &CostWeights,
) -> Result<CostBreakdown> {
    let ts = trajectory.times();
    let mut truth = Vec::with_capacity(ts.len());
    let mut blocking = Vec::with_capacity(ts.len());
    for (t, state) in ts.iter().zip(trajectory.states()) {
        let e1 = control.eps1(*t);
        let e2 = control.eps2(*t);
        let s2: f64 = state.s().iter().map(|x| x * x).sum();
        let i2: f64 = state.i().iter().map(|x| x * x).sum();
        truth.push(weights.c1 * e1 * e1 * s2);
        blocking.push(weights.c2 * e2 * e2 * i2);
    }
    let truth_cost = trapezoid_sampled(ts, &truth)?;
    let blocking_cost = trapezoid_sampled(ts, &blocking)?;
    Ok(CostBreakdown {
        terminal_infection: trajectory.last_state().total_infected(),
        truth_cost,
        blocking_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::control::ConstantControl;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_core::params::ModelParams;
    use rumor_core::simulate::{simulate, SimulateOptions};
    use rumor_core::state::NetworkState;
    use rumor_net::degree::DegreeClasses;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    fn run(eps1: f64, eps2: f64, tf: f64) -> (Trajectory, ConstantControl) {
        let p = params();
        let c = ConstantControl::new(eps1, eps2);
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let traj = simulate(&p, c, &init, tf, &SimulateOptions::default()).unwrap();
        (traj, c)
    }

    #[test]
    fn zero_control_has_zero_running_cost() {
        let (traj, c) = run(0.0, 0.0, 5.0);
        let cost = evaluate(&traj, c, &CostWeights::paper_default()).unwrap();
        assert_eq!(cost.truth_cost, 0.0);
        assert_eq!(cost.blocking_cost, 0.0);
        assert!(cost.terminal_infection > 0.0);
        assert_eq!(cost.total(), cost.terminal_infection);
    }

    #[test]
    fn running_cost_scales_quadratically_in_control() {
        // For small tf the state barely moves, so doubling ε1 should
        // roughly quadruple the truth cost.
        let (t1, c1) = run(0.1, 0.0, 0.1);
        let (t2, c2) = run(0.2, 0.0, 0.1);
        let w = CostWeights::paper_default();
        let a = evaluate(&t1, c1, &w).unwrap().truth_cost;
        let b = evaluate(&t2, c2, &w).unwrap().truth_cost;
        let ratio = b / a;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weights_scale_costs_linearly() {
        let (traj, c) = run(0.1, 0.1, 1.0);
        let w1 = CostWeights::new(1.0, 1.0).unwrap();
        let w2 = CostWeights::new(2.0, 1.0).unwrap();
        let a = evaluate(&traj, c, &w1).unwrap();
        let b = evaluate(&traj, c, &w2).unwrap();
        assert!((b.truth_cost - 2.0 * a.truth_cost).abs() < 1e-12);
        assert!((b.blocking_cost - a.blocking_cost).abs() < 1e-12);
    }

    #[test]
    fn integrand_matches_hand_computation() {
        let w = CostWeights::new(2.0, 3.0).unwrap();
        let v = running_integrand(&[0.5, 0.5], &[0.1], 0.2, 0.4, &w);
        // c1 ε1² Σs² = 2·0.04·0.5 = 0.04; c2 ε2² Σi² = 3·0.16·0.01 = 0.0048.
        assert!((v - 0.0448).abs() < 1e-12);
    }

    #[test]
    fn breakdown_totals() {
        let b = CostBreakdown {
            terminal_infection: 0.5,
            truth_cost: 1.0,
            blocking_cost: 2.0,
        };
        assert_eq!(b.running(), 3.0);
        assert_eq!(b.total(), 3.5);
    }

    #[test]
    fn stronger_control_lowers_terminal_infection_but_costs_more() {
        let w = CostWeights::paper_default();
        let (t_weak, c_weak) = run(0.02, 0.02, 30.0);
        let (t_strong, c_strong) = run(0.3, 0.3, 30.0);
        let weak = evaluate(&t_weak, c_weak, &w).unwrap();
        let strong = evaluate(&t_strong, c_strong, &w).unwrap();
        assert!(strong.terminal_infection < weak.terminal_infection);
        assert!(strong.running() > weak.running());
    }
}
