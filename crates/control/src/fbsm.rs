//! The forward–backward sweep method (FBSM).
//!
//! The standard numerical realization of Pontryagin's principle for
//! epidemic control: alternate (i) a forward integration of the state
//! under the current control, (ii) a backward integration of the
//! co-state from the transversality condition, and (iii) a control
//! update from the stationarity conditions (18)–(19), relaxed by a
//! convex combination with the previous iterate, until the control
//! stops changing.

use crate::cost::{evaluate, CostBreakdown};
use crate::costate::{stationary_controls, AdjointVariant, CostateSystem};
use crate::schedule::PiecewiseControl;
use crate::{ControlBounds, ControlError, CostWeights, Result};
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_core::simulate::{simulate_grid, SimulateOptions};
use rumor_core::state::NetworkState;
use rumor_ode::integrator::{Adaptive, AdaptiveConfig};
use rumor_ode::recovery::{Guarded, RecoveryPolicy};
use rumor_ode::solution::Solution;
use rumor_ode::system::OdeSystem;

/// Tuning knobs of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FbsmOptions {
    /// Number of control-grid nodes on `[0, tf]`.
    pub n_nodes: usize,
    /// Maximum sweep iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the relative control change.
    pub tolerance: f64,
    /// Relaxation weight `δ ∈ (0, 1]` of the control update
    /// (`u ← δ·u_new + (1−δ)·u_old`).
    pub relaxation: f64,
    /// Floor below which the adaptive damping never pushes the
    /// relaxation weight. Without a floor the backoff `δ ← δ/2` can
    /// shrink `δ` into numerical irrelevance, freezing the iteration
    /// while still burning the budget.
    pub relaxation_floor: f64,
    /// Integrator tolerances for the forward and backward passes.
    pub ode: AdaptiveConfig,
    /// When set, the forward and backward passes run under the guarded
    /// integrator with this fallback policy instead of the plain
    /// adaptive driver, so a stiff or transiently non-finite segment is
    /// rescued instead of aborting the sweep. The watchdog enables this
    /// on restarts after an integration failure.
    pub guard_ode: Option<RecoveryPolicy>,
    /// Which adjoint coupling to sweep with (exact by default; the
    /// paper's printed diagonal variant is available for the
    /// faithfulness ablation).
    pub adjoint: AdjointVariant,
    /// Weight of the terminal objective `w·Σ I_i(tf)` (the transversality
    /// condition becomes `φ(tf) = w`). The deadline-constrained solver
    /// [`optimize_to_target`] raises this until its target is met.
    pub terminal_weight: f64,
    /// Warm start: when set, the sweep's initial iterate is this
    /// schedule resampled onto the sweep grid (and clamped into the
    /// box) instead of the mid-box constant guess. In a parameter
    /// sweep, seeding each grid point with the previous point's
    /// optimum typically cuts the iteration count by an integer
    /// factor — neighboring problems have neighboring optima.
    pub initial_control: Option<PiecewiseControl>,
    /// Intra-replica thread count for the sweep's forward/backward
    /// kernels, resolved through
    /// [`rumor_par::resolve_inner_threads`] (`None` consults the
    /// `--inner-threads` override, `RUMOR_INNER_THREADS`, then the
    /// `--threads`/`RUMOR_THREADS` chain — the replica-vs-intra split
    /// policy: a single sweep soaks the full budget). The partitioned
    /// kernels are bit-identical at every thread count, so this knob
    /// affects wall-clock only, never the optimum.
    pub inner_threads: Option<usize>,
    /// Backtracking under-relaxation: when the relaxed update *grows*
    /// the control change (damped-Picard oscillation), retry the same
    /// iteration's convex combination with a halved relaxation weight
    /// (down to `relaxation_floor`) instead of accepting the
    /// oscillating iterate and only damping the *next* one. The retry
    /// is nearly free — the stationary controls are already computed,
    /// no re-integration happens — and suppresses the plateau the
    /// accept-then-damp scheme hits on stiff large-class problems
    /// (`digg_full`). On by default since it strictly dominates the
    /// accept-then-damp scheme on every benchmark tier (the small-tier
    /// sweep now converges inside its 150-iteration budget instead of
    /// plateauing); set `false` for the historical behavior.
    pub backtracking: bool,
}

impl Default for FbsmOptions {
    fn default() -> Self {
        FbsmOptions {
            n_nodes: 201,
            max_iterations: 200,
            tolerance: 1e-5,
            relaxation: 0.4,
            relaxation_floor: 0.02,
            ode: AdaptiveConfig {
                rtol: 1e-7,
                atol: 1e-9,
                ..AdaptiveConfig::default()
            },
            guard_ode: None,
            adjoint: AdjointVariant::default(),
            terminal_weight: 1.0,
            initial_control: None,
            inner_threads: None,
            backtracking: true,
        }
    }
}

impl FbsmOptions {
    /// Validates every field up front so a bad configuration surfaces as
    /// a structured [`ControlError::InvalidConfig`] instead of NaN
    /// propagating through a sweep.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] naming the offending
    /// field, or the wrapped [`rumor_ode::OdeError::InvalidConfig`] for
    /// a bad integrator configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_nodes < 2 {
            return Err(ControlError::InvalidConfig(
                "n_nodes: need at least two control nodes".into(),
            ));
        }
        if self.max_iterations == 0 {
            return Err(ControlError::InvalidConfig(
                "max_iterations: must be at least 1".into(),
            ));
        }
        if !(self.tolerance > 0.0) || !self.tolerance.is_finite() {
            return Err(ControlError::InvalidConfig(format!(
                "tolerance: must be positive and finite, got {}",
                self.tolerance
            )));
        }
        if !(self.relaxation > 0.0 && self.relaxation <= 1.0) {
            return Err(ControlError::InvalidConfig(format!(
                "relaxation: must lie in (0, 1], got {}",
                self.relaxation
            )));
        }
        if !(self.relaxation_floor > 0.0) || self.relaxation_floor > self.relaxation {
            return Err(ControlError::InvalidConfig(format!(
                "relaxation_floor: must lie in (0, relaxation = {}], got {}",
                self.relaxation, self.relaxation_floor
            )));
        }
        if !(self.terminal_weight >= 0.0) || !self.terminal_weight.is_finite() {
            return Err(ControlError::InvalidConfig(format!(
                "terminal_weight: must be non-negative and finite, got {}",
                self.terminal_weight
            )));
        }
        self.ode.validate()?;
        if let Some(policy) = &self.guard_ode {
            policy.validate()?;
        }
        Ok(())
    }
}

/// Output of a converged (or budget-exhausted) sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The optimized countermeasure schedule.
    pub control: PiecewiseControl,
    /// The state trajectory under the optimized schedule, sampled on the
    /// control grid.
    pub trajectory: rumor_core::simulate::Trajectory,
    /// Itemized cost of the optimized schedule.
    pub cost: CostBreakdown,
    /// Sweep iterations performed.
    pub iterations: usize,
    /// Whether the relative control change dropped below tolerance.
    pub converged: bool,
    /// Objective value after each iteration (diagnostic).
    pub cost_history: Vec<f64>,
    /// Relative control change after each iteration (diagnostic; the
    /// watchdog classifies divergence from this series).
    pub change_history: Vec<f64>,
    /// How often the adaptive damping halved the relaxation weight.
    pub relaxation_backoffs: usize,
    /// The relaxation weight in effect when the sweep stopped.
    pub final_relaxation: f64,
    /// `true` when the returned control is not the final iterate but the
    /// best-so-far checkpoint (lowest diagnostic cost), restored because
    /// the sweep stopped without converging.
    pub restored_checkpoint: bool,
}

/// Runs the forward–backward sweep.
///
/// # Example
///
/// ```
/// use rumor_control::fbsm::{optimize, FbsmOptions};
/// use rumor_control::{ControlBounds, CostWeights};
/// use rumor_core::functions::AcceptanceRate;
/// use rumor_core::params::ModelParams;
/// use rumor_core::state::NetworkState;
/// use rumor_net::degree::DegreeClasses;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3])?;
/// let params = ModelParams::builder(classes)
///     .alpha(0.002)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
///     .build()?;
/// let initial = NetworkState::initial_uniform(params.n_classes(), 0.1)?;
/// let result = optimize(
///     &params,
///     &initial,
///     10.0,
///     &ControlBounds::new(0.5, 0.5)?,
///     &CostWeights::paper_default(),
///     &FbsmOptions { n_nodes: 21, max_iterations: 60, tolerance: 1e-3, ..Default::default() },
/// )?;
/// assert!(result.cost.total().is_finite());
/// assert_eq!(result.control.grid().len(), 21);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`ControlError::InvalidConfig`] for bad options (`tf ≤ 0`,
///   relaxation outside `(0, 1]`, fewer than two nodes).
/// * [`ControlError::SweepDiverged`] if the iteration budget is exhausted
///   while the control is still changing by more than 100× the tolerance
///   (mild non-convergence returns `converged = false` instead).
/// * Propagated integration failures.
pub fn optimize(
    params: &ModelParams,
    initial: &NetworkState,
    tf: f64,
    bounds: &ControlBounds,
    weights: &CostWeights,
    options: &FbsmOptions,
) -> Result<SweepResult> {
    let result = optimize_monitored(params, initial, tf, bounds, weights, options)?;
    if !result.converged {
        let last_change = result
            .change_history
            .last()
            .copied()
            .unwrap_or(f64::INFINITY);
        if !(last_change <= 100.0 * options.tolerance) {
            return Err(ControlError::SweepDiverged {
                iterations: result.iterations,
                last_change,
            });
        }
    }
    Ok(result)
}

/// Integrates one forward or backward pass, guarded or plain depending
/// on `options.guard_ode`.
fn integrate_pass(
    options: &FbsmOptions,
    sys: &impl OdeSystem,
    t0: f64,
    y0: &[f64],
    tf: f64,
) -> std::result::Result<Solution, rumor_ode::OdeError> {
    match &options.guard_ode {
        None => Adaptive::with_config(options.ode).integrate(sys, t0, y0, tf),
        Some(policy) => {
            Guarded::with_config(options.ode, policy.clone()).integrate(sys, t0, y0, tf)
        }
    }
}

/// Simulates `control` on the sweep's grid, honoring `options.guard_ode`
/// so the diagnostic and final trajectories survive the same troubled
/// segments the sweep's own passes do.
fn trajectory_on_grid(
    params: &ModelParams,
    control: &PiecewiseControl,
    initial: &NetworkState,
    grid: &[f64],
    options: &FbsmOptions,
) -> Result<rumor_core::simulate::Trajectory> {
    if options.guard_ode.is_none() {
        return Ok(simulate_grid(
            params,
            control,
            initial,
            grid,
            &SimulateOptions {
                n_out: grid.len(),
                ode: options.ode,
                ..Default::default()
            },
        )?);
    }
    let model = RumorModel::new(params, control);
    let tf = *grid.last().expect("validated non-empty grid");
    let sol =
        integrate_pass(options, &model, 0.0, &initial.to_flat(), tf).map_err(ControlError::Ode)?;
    let mut states = Vec::with_capacity(grid.len());
    for &t in grid {
        let flat = sol.sample(t).map_err(ControlError::Ode)?;
        states.push(NetworkState::from_flat(&flat)?);
    }
    Ok(rumor_core::simulate::Trajectory::from_parts(
        grid.to_vec(),
        states,
    ))
}

/// The sweep itself, instrumented for the watchdog: never errors on mere
/// non-convergence — the result carries `converged = false` plus the full
/// change/cost histories and relaxation telemetry instead, and restores
/// the best-so-far (lowest diagnostic cost) control checkpoint when the
/// final iterate is not the best one seen.
///
/// [`optimize`] wraps this and converts severe non-convergence (last
/// change above 100× tolerance) into [`ControlError::SweepDiverged`];
/// [`crate::watchdog::optimize_guarded`] instead classifies it and
/// restarts with reduced relaxation.
///
/// # Errors
///
/// * [`ControlError::InvalidConfig`] for bad options.
/// * Propagated integration failures.
pub fn optimize_monitored(
    params: &ModelParams,
    initial: &NetworkState,
    tf: f64,
    bounds: &ControlBounds,
    weights: &CostWeights,
    options: &FbsmOptions,
) -> Result<SweepResult> {
    if !(tf > 0.0) || !tf.is_finite() {
        return Err(ControlError::InvalidConfig(format!(
            "final time must be positive and finite, got {tf}"
        )));
    }
    options.validate()?;
    let n = params.n_classes();
    if initial.n_classes() != n {
        return Err(ControlError::InvalidConfig(format!(
            "initial state has {} classes, parameters have {n}",
            initial.n_classes()
        )));
    }
    let mut sweep_span = rumor_obs::span("control.fbsm_sweep");

    let grid: Vec<f64> = (0..options.n_nodes)
        .map(|i| tf * i as f64 / (options.n_nodes - 1) as f64)
        .collect();
    let mut control = match &options.initial_control {
        // Warm start: resample the prior schedule onto this grid
        // (constant extrapolation covers a longer horizon) and clamp
        // into the current box so the iterate is always feasible.
        Some(prior) => {
            use rumor_core::control::ControlSchedule;
            let e1: Vec<f64> = grid.iter().map(|&t| prior.eps1(t)).collect();
            let e2: Vec<f64> = grid.iter().map(|&t| prior.eps2(t)).collect();
            let mut warm = PiecewiseControl::from_values(grid.clone(), e1, e2)?;
            warm.clamp_to(bounds);
            warm
        }
        // Cold start from mid-box controls: a feasible, non-degenerate
        // guess.
        None => PiecewiseControl::constant(
            tf,
            options.n_nodes,
            bounds.eps1_max / 2.0,
            bounds.eps2_max / 2.0,
        )?,
    };

    let y0 = initial.to_flat();
    let mut cost_history = Vec::new();
    let mut change_history = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let mut last_change = f64::INFINITY;
    let mut relaxation_backoffs = 0;
    // Best-so-far checkpoint: the control with the lowest diagnostic
    // cost seen during the sweep, restored if the iteration stops
    // without converging on something better.
    let mut best: Option<(f64, PiecewiseControl)> = None;
    // Adaptive damping: when the control update oscillates (the change
    // grows between iterations), halve the relaxation weight; when it
    // contracts, cautiously restore it toward the configured value.
    let mut delta = options.relaxation;

    // Intra-replica pool for the forward/backward kernels, per the
    // resolved inner-thread budget. Skipped when the class count fits a
    // single kernel partition — the pool could never dispatch. The
    // partitioned kernels are bit-identical with and without the pool,
    // so the resolved count can never change the optimum.
    let inner_threads = rumor_par::resolve_inner_threads(options.inner_threads);
    let pool = if inner_threads > 1 && rumor_core::kernels::partition_count(n) > 1 {
        Some(std::sync::Arc::new(rumor_par::InnerPool::new(
            inner_threads,
        )))
    } else {
        None
    };

    for iter in 1..=options.max_iterations {
        iterations = iter;
        // (i) Forward pass.
        let model = RumorModel::new(params, &control).with_pool(pool.clone());
        let forward = integrate_pass(options, &model, 0.0, &y0, tf)?;

        // (ii) Backward pass.
        let costate =
            CostateSystem::with_variant(params, &forward, &control, *weights, options.adjoint)
                .with_pool(pool.clone());
        let terminal = costate.weighted_terminal_condition(options.terminal_weight);
        let backward = integrate_pass(options, &costate, tf, &terminal, 0.0)?;

        // (iii) Control update on the grid.
        let mut e1_new = Vec::with_capacity(grid.len());
        let mut e2_new = Vec::with_capacity(grid.len());
        for &t in &grid {
            let state = forward.sample(t)?;
            let adj = backward.sample(t)?;
            let (s, i) = (&state[..n], &state[n..2 * n]);
            let (psi, phi) = (&adj[..n], &adj[n..2 * n]);
            let (u1, u2) = stationary_controls(s, i, psi, phi, weights);
            e1_new.push(u1.clamp(0.0, bounds.eps1_max));
            e2_new.push(u2.clamp(0.0, bounds.eps2_max));
        }
        // Relaxed update: convex combination with the previous iterate
        // at weight `d`, plus the convergence metric — node-wise change
        // scaled by each channel's bound (a pure relative metric
        // explodes on near-zero values).
        let relax = |d: f64| {
            let e1_relaxed: Vec<f64> = control
                .eps1_values()
                .iter()
                .zip(&e1_new)
                .map(|(old, new)| (1.0 - d) * old + d * new)
                .collect();
            let e2_relaxed: Vec<f64> = control
                .eps2_values()
                .iter()
                .zip(&e2_new)
                .map(|(old, new)| (1.0 - d) * old + d * new)
                .collect();
            let mut change: f64 = 0.0;
            for (old, new) in control.eps1_values().iter().zip(&e1_relaxed) {
                change = change.max((old - new).abs() / bounds.eps1_max);
            }
            for (old, new) in control.eps2_values().iter().zip(&e2_relaxed) {
                change = change.max((old - new).abs() / bounds.eps2_max);
            }
            (e1_relaxed, e2_relaxed, change)
        };
        let (mut e1_relaxed, mut e2_relaxed, mut change) = relax(delta);

        if change > last_change {
            if options.backtracking {
                // Backtracking under-relaxation: retry *this* update with
                // a halved weight before accepting it — the stationary
                // controls are already in hand, so each retry is just the
                // convex combination again, no re-integration. Stops at
                // the floor so damping can never fake convergence.
                while change > last_change && delta > options.relaxation_floor {
                    delta = (delta * 0.5).max(options.relaxation_floor);
                    relaxation_backoffs += 1;
                    (e1_relaxed, e2_relaxed, change) = relax(delta);
                }
            } else {
                // Historical accept-then-damp: keep the oscillating
                // iterate, halve the weight for the next one.
                let lowered = (delta * 0.5).max(options.relaxation_floor);
                if lowered < delta {
                    relaxation_backoffs += 1;
                }
                delta = lowered;
            }
        } else {
            delta = (delta * 1.05).min(options.relaxation);
        }
        let mut next = control.clone();
        next.set_values(e1_relaxed, e2_relaxed)?;
        last_change = change;
        change_history.push(change);
        control = next;

        // Diagnostic cost of the current iterate.
        let traj = trajectory_on_grid(params, &control, initial, &grid, options)?;
        let total = evaluate(&traj, &control, weights)?.total();
        cost_history.push(total);
        if total.is_finite() && best.as_ref().is_none_or(|(b, _)| total < *b) {
            best = Some((total, control.clone()));
        }

        if last_change < options.tolerance {
            converged = true;
            break;
        }
    }

    // A non-converged sweep hands back its best checkpoint, not whatever
    // iterate the budget happened to end on.
    let mut restored_checkpoint = false;
    if !converged {
        if let Some((best_cost, best_control)) = best {
            let final_cost = cost_history.last().copied().unwrap_or(f64::INFINITY);
            if best_cost < final_cost && best_control != control {
                control = best_control;
                restored_checkpoint = true;
            }
        }
    }

    // Per-iteration convergence residuals for trace consumers, replayed
    // from the recorded histories once the loop is done — the sweep's
    // hot loop itself does no per-iteration trace work.
    if rumor_obs::format() != rumor_obs::LogFormat::Off {
        for (i, (&change, &cost)) in change_history.iter().zip(&cost_history).enumerate() {
            rumor_obs::event(
                "control.fbsm_iter",
                &[
                    ("iter", (i + 1).into()),
                    ("change", change.into()),
                    ("cost", cost.into()),
                ],
            );
        }
    }
    if sweep_span.active() {
        sweep_span.field("iterations", iterations);
        sweep_span.field("converged", converged);
        sweep_span.field("backoffs", relaxation_backoffs);
    }
    rumor_obs::add("control.fbsm_sweeps", 1);
    rumor_obs::add("control.fbsm_iterations", iterations as u64);

    let trajectory = trajectory_on_grid(params, &control, initial, &grid, options)?;
    let cost = evaluate(&trajectory, &control, weights)?;
    Ok(SweepResult {
        control,
        trajectory,
        cost,
        iterations,
        converged,
        cost_history,
        change_history,
        relaxation_backoffs,
        final_relaxation: delta,
        restored_checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::control::ConstantControl;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_core::simulate::simulate;
    use rumor_net::degree::DegreeClasses;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.002)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    fn quick_options() -> FbsmOptions {
        FbsmOptions {
            n_nodes: 51,
            max_iterations: 80,
            tolerance: 1e-4,
            relaxation: 0.5,
            ode: AdaptiveConfig {
                rtol: 1e-6,
                atol: 1e-8,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn sweep_converges_on_small_problem() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let result = optimize(&p, &init, 20.0, &bounds, &w, &quick_options()).unwrap();
        assert!(result.converged, "sweep did not converge");
        assert!(result.iterations > 1);
        assert!(result.cost.total().is_finite());
        // Controls respect the box.
        assert!(result
            .control
            .eps1_values()
            .iter()
            .all(|&v| (0.0..=0.6).contains(&v)));
        assert!(result
            .control
            .eps2_values()
            .iter()
            .all(|&v| (0.0..=0.6).contains(&v)));
    }

    #[test]
    fn optimized_beats_constant_midbox_control() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let tf = 20.0;
        let result = optimize(&p, &init, tf, &bounds, &w, &quick_options()).unwrap();

        // Baseline: hold the initial guess (mid-box) for the whole run.
        let baseline_ctl = ConstantControl::new(0.3, 0.3);
        let baseline_traj = simulate(
            &p,
            baseline_ctl,
            &init,
            tf,
            &SimulateOptions {
                n_out: 51,
                ..Default::default()
            },
        )
        .unwrap();
        let baseline = evaluate(&baseline_traj, baseline_ctl, &w).unwrap();
        assert!(
            result.cost.total() < baseline.total(),
            "optimized {} must beat constant {}",
            result.cost.total(),
            baseline.total()
        );
    }

    #[test]
    fn cost_history_trends_downward() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let result = optimize(&p, &init, 15.0, &bounds, &w, &quick_options()).unwrap();
        let hist = &result.cost_history;
        assert!(hist.len() >= 2);
        // Not necessarily monotone step-by-step, but the final cost must
        // be well below the first iterate's.
        assert!(*hist.last().unwrap() <= hist[0], "history {:?}", hist);
    }

    #[test]
    fn invalid_configs_rejected() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.5, 0.5).unwrap();
        let w = CostWeights::paper_default();
        let mut opts = quick_options();
        assert!(optimize(&p, &init, 0.0, &bounds, &w, &opts).is_err());
        opts.n_nodes = 1;
        assert!(optimize(&p, &init, 1.0, &bounds, &w, &opts).is_err());
        opts = quick_options();
        opts.relaxation = 0.0;
        assert!(optimize(&p, &init, 1.0, &bounds, &w, &opts).is_err());
        opts = quick_options();
        let bad_init = NetworkState::initial_uniform(2, 0.1).unwrap();
        assert!(optimize(&p, &bad_init, 1.0, &bounds, &w, &opts).is_err());
    }

    #[test]
    fn warm_start_cuts_iterations_in_a_parameter_sweep() {
        // The sweep scenario the jobs layer runs: solve at one lambda0,
        // then re-solve at a neighboring lambda0 seeded with the first
        // optimum. The warm start must converge in strictly fewer
        // iterations than a cold start of the same problem.
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        let build = |lambda0: f64| {
            ModelParams::builder(classes.clone())
                .alpha(0.002)
                .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
                .infectivity(Infectivity::paper_default())
                .build()
                .unwrap()
        };
        let base = build(0.02);
        let init = NetworkState::initial_uniform(base.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = quick_options();

        let first = optimize(&base, &init, 20.0, &bounds, &w, &opts).unwrap();
        let neighbor = build(0.022);
        let cold = optimize(&neighbor, &init, 20.0, &bounds, &w, &opts).unwrap();
        let warm_opts = FbsmOptions {
            initial_control: Some(first.control.clone()),
            ..opts
        };
        let warm = optimize(&neighbor, &init, 20.0, &bounds, &w, &warm_opts).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        // The warm start lands on the same optimum, not a different one.
        assert!(
            (warm.cost.total() - cold.cost.total()).abs() < 0.05 * cold.cost.total().abs(),
            "warm cost {} vs cold cost {}",
            warm.cost.total(),
            cold.cost.total()
        );
    }

    #[test]
    fn warm_start_resamples_across_grids_and_horizons() {
        // A prior schedule on a coarser grid and shorter horizon is
        // still a legal seed: it resamples by interpolation, extends by
        // constant extrapolation, and clamps into the (tighter) box.
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let w = CostWeights::paper_default();
        let prior = PiecewiseControl::from_values(
            vec![0.0, 5.0, 10.0],
            vec![0.9, 0.5, 0.1],
            vec![0.4, 0.3, 0.2],
        )
        .unwrap();
        let bounds = ControlBounds::new(0.6, 0.25).unwrap();
        let opts = FbsmOptions {
            initial_control: Some(prior),
            ..quick_options()
        };
        let result = optimize(&p, &init, 20.0, &bounds, &w, &opts).unwrap();
        assert!(result
            .control
            .eps1_values()
            .iter()
            .all(|&v| (0.0..=0.6).contains(&v)));
        assert!(result
            .control
            .eps2_values()
            .iter()
            .all(|&v| (0.0..=0.25).contains(&v)));
    }

    #[test]
    fn terminal_infection_lower_than_uncontrolled() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let tf = 20.0;
        let result = optimize(&p, &init, tf, &bounds, &w, &quick_options()).unwrap();
        let free = simulate(
            &p,
            ConstantControl::none(),
            &init,
            tf,
            &SimulateOptions::default(),
        )
        .unwrap();
        assert!(
            result.trajectory.last_state().total_infected() < free.last_state().total_infected()
        );
    }

    /// Tentpole determinism contract at the sweep level: a full FBSM
    /// solve on a problem large enough that the inner pool genuinely
    /// dispatches (class count above `PART_CHUNK`) must reproduce the
    /// single-threaded sweep bit for bit at every inner thread count.
    #[test]
    fn sweep_is_bit_identical_across_inner_thread_counts() {
        let degrees: Vec<usize> = (1..=300).collect();
        let classes = DegreeClasses::from_degrees(&degrees).unwrap();
        assert!(rumor_core::kernels::partition_count(classes.len()) > 1);
        let p = ModelParams::builder(classes)
            .alpha(0.002)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.002 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = |threads: usize| FbsmOptions {
            n_nodes: 21,
            max_iterations: 5,
            tolerance: 1e-3,
            relaxation: 0.5,
            inner_threads: Some(threads),
            ..Default::default()
        };
        let serial = optimize(&p, &init, 10.0, &bounds, &w, &opts(1)).unwrap();
        for threads in [2usize, 4] {
            let pooled = optimize(&p, &init, 10.0, &bounds, &w, &opts(threads)).unwrap();
            assert_eq!(pooled.iterations, serial.iterations, "threads = {threads}");
            assert_eq!(
                pooled.cost.total().to_bits(),
                serial.cost.total().to_bits(),
                "cost at threads = {threads}"
            );
            for (a, b) in pooled
                .change_history
                .iter()
                .zip(serial.change_history.iter())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "change at threads = {threads}");
            }
            for (a, b) in pooled
                .control
                .eps1_values()
                .iter()
                .zip(serial.control.eps1_values())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "eps1 at threads = {threads}");
            }
            for (a, b) in pooled
                .control
                .eps2_values()
                .iter()
                .zip(serial.control.eps2_values())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "eps2 at threads = {threads}");
            }
        }
    }

    /// Backtracking under-relaxation: with `backtracking: true` an
    /// oscillation is retried at a smaller step inside the same
    /// iteration instead of accepted. The sweep must still converge on
    /// the small problem, land inside the box, and report any backoffs
    /// through the existing telemetry field.
    #[test]
    fn backtracking_sweep_converges_inside_the_box() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = FbsmOptions {
            backtracking: true,
            // A deliberately aggressive first step so the retry path has
            // oscillations to damp.
            relaxation: 0.9,
            ..quick_options()
        };
        let result = optimize(&p, &init, 20.0, &bounds, &w, &opts).unwrap();
        assert!(result.converged, "backtracking sweep did not converge");
        assert!(result.final_relaxation >= opts.relaxation_floor);
        assert!(result
            .control
            .eps1_values()
            .iter()
            .all(|&v| (0.0..=0.6).contains(&v)));
        assert!(result
            .control
            .eps2_values()
            .iter()
            .all(|&v| (0.0..=0.6).contains(&v)));
        // The reference (non-backtracking) solution on the same problem
        // lands on the same optimum: backtracking changes the path, not
        // the destination.
        let reference_opts = FbsmOptions {
            backtracking: false,
            ..quick_options()
        };
        let reference = optimize(&p, &init, 20.0, &bounds, &w, &reference_opts).unwrap();
        assert!(
            (result.cost.total() - reference.cost.total()).abs()
                < 0.05 * reference.cost.total().abs(),
            "backtracking cost {} vs reference {}",
            result.cost.total(),
            reference.cost.total()
        );
    }
}

/// Deadline-constrained optimization (the paper's literal problem
/// statement: the rumor must be extinct — terminal infection at or below
/// `target` — at the end of the expected time period, with lowest cost).
///
/// Realized as an outer penalty loop: the terminal weight `w` in
/// `J_w = w·Σ I_i(tf) + ∫ …` is raised geometrically until the sweep's
/// terminal infection meets `target`, then the *running* cost of that
/// schedule is reported. Returns the final sweep result together with
/// the weight that achieved the target.
///
/// # Errors
///
/// * [`ControlError::InvalidConfig`] for a non-positive target.
/// * [`ControlError::TargetUnreachable`] if the target is not met even
///   with a very large terminal weight (the box bounds are then the
///   binding constraint).
/// * Propagated sweep failures.
pub fn optimize_to_target(
    params: &ModelParams,
    initial: &NetworkState,
    tf: f64,
    bounds: &ControlBounds,
    weights: &CostWeights,
    target: f64,
    options: &FbsmOptions,
) -> Result<(SweepResult, f64)> {
    if !(target > 0.0) {
        return Err(ControlError::InvalidConfig(format!(
            "terminal infection target must be positive, got {target}"
        )));
    }
    let mut weight = options.terminal_weight.max(1.0);
    let mut best: Option<(SweepResult, f64)> = None;
    const MAX_ESCALATIONS: usize = 24;
    for _ in 0..MAX_ESCALATIONS {
        let opts = FbsmOptions {
            terminal_weight: weight,
            ..options.clone()
        };
        let result = optimize(params, initial, tf, bounds, weights, &opts)?;
        let terminal = result.trajectory.last_state().total_infected();
        let met = terminal <= target;
        best = Some((result, weight));
        if met {
            return Ok(best.expect("just set"));
        }
        weight *= 4.0;
    }
    let (result, _) = best.expect("at least one sweep ran");
    Err(ControlError::TargetUnreachable {
        target,
        best: result.trajectory.last_state().total_infected(),
    })
}

#[cfg(test)]
mod target_tests {
    use super::*;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.002)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    fn opts() -> FbsmOptions {
        FbsmOptions {
            n_nodes: 41,
            max_iterations: 120,
            tolerance: 1e-4,
            relaxation: 0.4,
            ..Default::default()
        }
    }

    #[test]
    fn target_is_met_by_escalating_terminal_weight() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.2).unwrap();
        let bounds = ControlBounds::new(0.8, 0.8).unwrap();
        let w = CostWeights::paper_default();
        let target = 0.01;
        let (result, weight) =
            optimize_to_target(&p, &init, 40.0, &bounds, &w, target, &opts()).unwrap();
        let terminal = result.trajectory.last_state().total_infected();
        assert!(terminal <= target, "terminal {terminal} vs target {target}");
        assert!(weight >= 1.0);
    }

    #[test]
    fn tighter_target_escalates_weight_and_suppresses_harder() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.2).unwrap();
        let bounds = ControlBounds::new(0.8, 0.8).unwrap();
        let w = CostWeights::paper_default();
        let (loose, w_loose) =
            optimize_to_target(&p, &init, 40.0, &bounds, &w, 0.05, &opts()).unwrap();
        // A target far below the unconstrained optimum's terminal level
        // forces the penalty weight up and the spend with it.
        let loose_terminal = loose.trajectory.last_state().total_infected();
        let tight_target = (loose_terminal / 50.0).max(1e-8);
        let (tight, w_tight) =
            optimize_to_target(&p, &init, 40.0, &bounds, &w, tight_target, &opts()).unwrap();
        assert!(w_tight > w_loose, "weights {w_tight} vs {w_loose}");
        // Note: the *running* cost need not grow — blocking a nearly
        // extinct rumor is almost free under the quadratic ε²I² cost —
        // but the suppression itself must be strictly stronger.
        assert!(tight.trajectory.last_state().total_infected() <= tight_target);
        assert!(
            tight.trajectory.last_state().total_infected()
                < loose.trajectory.last_state().total_infected()
        );
    }

    #[test]
    fn unreachable_target_reported() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.5).unwrap();
        // Tiny bounds over a very short horizon: extinction impossible.
        let bounds = ControlBounds::new(0.01, 0.01).unwrap();
        let w = CostWeights::paper_default();
        let r = optimize_to_target(&p, &init, 1.0, &bounds, &w, 1e-9, &opts());
        assert!(matches!(r, Err(ControlError::TargetUnreachable { .. })));
    }

    #[test]
    fn invalid_target_rejected() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.5, 0.5).unwrap();
        let w = CostWeights::paper_default();
        assert!(optimize_to_target(&p, &init, 10.0, &bounds, &w, 0.0, &opts()).is_err());
    }
}
