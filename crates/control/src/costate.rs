//! The Pontryagin co-state (adjoint) system.
//!
//! For the Hamiltonian (paper Eq. (14))
//!
//! ```text
//! H = Σ_i (c1 ε1² S_i² + c2 ε2² I_i²)
//!   + Σ_i ψ_i (α − λ_i S_i Θ − ε1 S_i)
//!   + Σ_i φ_i (λ_i S_i Θ − ε2 I_i)
//! ```
//!
//! the adjoint equations `ψ̇ = −∂H/∂S`, `φ̇ = −∂H/∂I` are
//!
//! ```text
//! dψ_j/dt = −2 c1 ε1² S_j + ψ_j (λ_j Θ + ε1) − φ_j λ_j Θ
//! dφ_j/dt = −2 c2 ε2² I_j + (ϕ_j/⟨k⟩) Σ_i (ψ_i − φ_i) λ_i S_i + φ_j ε2
//! ```
//!
//! with transversality `ψ_j(tf) = 0`, `φ_j(tf) = 1` (paper Eqs.
//! (15)–(16); we keep the exact network-coupled `Σ_i` term where the
//! paper prints only the diagonal contribution — see the crate-level
//! docs). The system is integrated **backward** from `tf` to `0` against
//! a stored forward state trajectory.

use crate::CostWeights;
use rumor_core::control::ControlSchedule;
use rumor_core::kernels;
use rumor_core::params::ModelParams;
use rumor_ode::solution::Solution;
use rumor_ode::system::OdeSystem;
use rumor_par::InnerPool;
use std::cell::RefCell;
use std::sync::Arc;

/// Which form of the `φ̇` coupling the adjoint uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdjointVariant {
    /// The exact derivative of the Hamiltonian:
    /// `φ̇_j` carries `(ϕ_j/⟨k⟩) Σ_i (ψ_i − φ_i) λ_i S_i`. The default.
    #[default]
    Exact,
    /// The paper's Eq. (16) as printed, which keeps only the diagonal
    /// term of the network coupling:
    /// `φ̇_j` carries `(ϕ_j/⟨k⟩) (ψ_j − φ_j) λ_j S_j`. Provided for the
    /// faithfulness ablation; not a correct gradient of the Hamiltonian.
    PaperDiagonal,
}

/// The adjoint ODE system, bound to a forward state trajectory and the
/// control schedule that produced it.
///
/// State layout: `[ψ_0..ψ_{n-1}, φ_0..φ_{n-1}]`.
pub struct CostateSystem<'a, C> {
    params: &'a ModelParams,
    forward: &'a Solution,
    control: &'a C,
    weights: CostWeights,
    variant: AdjointVariant,
    /// Scratch buffer for sampling the forward state inside `rhs`
    /// (called once per stage evaluation) without allocating.
    state_scratch: RefCell<Vec<f64>>,
    /// Optional intra-replica worker pool for the Θ/coupling reductions
    /// and the element-wise costate body. The partitioned kernels are
    /// bit-identical with and without a pool, so this only affects
    /// wall-clock, never the backward sweep's result.
    pool: Option<Arc<InnerPool>>,
}

impl<'a, C: ControlSchedule> CostateSystem<'a, C> {
    /// Binds the adjoint to a forward trajectory (flat `[S.., I.., R..]`
    /// states) and its schedule, using the exact adjoint.
    pub fn new(
        params: &'a ModelParams,
        forward: &'a Solution,
        control: &'a C,
        weights: CostWeights,
    ) -> Self {
        Self::with_variant(params, forward, control, weights, AdjointVariant::default())
    }

    /// Binds the adjoint with an explicit [`AdjointVariant`].
    pub fn with_variant(
        params: &'a ModelParams,
        forward: &'a Solution,
        control: &'a C,
        weights: CostWeights,
        variant: AdjointVariant,
    ) -> Self {
        let dim = forward.dim();
        CostateSystem {
            params,
            forward,
            control,
            weights,
            variant,
            state_scratch: RefCell::new(vec![0.0; dim]),
            pool: None,
        }
    }

    /// Attaches (or detaches, with `None`) an intra-replica worker pool
    /// for the backward sweep's kernels. Bit-identical to the pool-less
    /// system at every pool size.
    pub fn with_pool(mut self, pool: Option<Arc<InnerPool>>) -> Self {
        self.pool = pool;
        self
    }

    /// The active adjoint variant.
    pub fn variant(&self) -> AdjointVariant {
        self.variant
    }

    /// The transversality condition at `tf`: `ψ = 0, φ = 1`.
    pub fn terminal_condition(&self) -> Vec<f64> {
        self.weighted_terminal_condition(1.0)
    }

    /// Transversality for a *weighted* terminal objective
    /// `w·Σ I_i(tf)`: `ψ = 0, φ = w`. The deadline-constrained solver
    /// raises `w` until the terminal infection meets its target.
    pub fn weighted_terminal_condition(&self, weight: f64) -> Vec<f64> {
        let n = self.params.n_classes();
        let mut y = vec![0.0; 2 * n];
        for v in y.iter_mut().skip(n) {
            *v = weight;
        }
        y
    }
}

impl<C: ControlSchedule> OdeSystem for CostateSystem<'_, C> {
    fn dim(&self) -> usize {
        2 * self.params.n_classes()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.params.n_classes();
        let lambda = self.params.lambda();
        let theta_w = self.params.theta_weights();
        let eps1 = self.control.eps1(t);
        let eps2 = self.control.eps2(t);
        let mut state = self.state_scratch.borrow_mut();
        self.forward
            .sample_into(t, &mut state)
            .expect("forward trajectory must cover the adjoint's time span");
        let s = &state[..n];
        let i = &state[n..2 * n];
        // Θ(t) from the stored forward state, via the fused ϕ/⟨k⟩ table
        // and the partitioned dot reduction (bit-identical serial or
        // pooled, at every thread count).
        let theta = match &self.pool {
            Some(pool) => kernels::dot_pooled(pool, theta_w, i),
            None => kernels::dot_partitioned(theta_w, i),
        };
        let (psi, phi) = y.split_at(n);
        let (dpsi, dphi) = dydt.split_at_mut(n);
        let c1e1sq2 = 2.0 * self.weights.c1 * eps1 * eps1;
        let c2e2sq2 = 2.0 * self.weights.c2 * eps2 * eps2;
        match self.variant {
            AdjointVariant::Exact => {
                // Network coupling Σ_i (ψ_i − φ_i) λ_i S_i, reduced once
                // over the fixed partition plan, then the element-wise
                // body over disjoint class chunks.
                match &self.pool {
                    Some(pool) => {
                        let coupling = kernels::coupling_sum_pooled(pool, psi, phi, lambda, s);
                        kernels::costate_rhs_pooled(
                            pool, s, i, psi, phi, lambda, theta_w, theta, coupling, c1e1sq2,
                            c2e2sq2, eps1, eps2, dpsi, dphi,
                        );
                    }
                    None => {
                        let coupling = kernels::coupling_sum_partitioned(psi, phi, lambda, s);
                        kernels::costate_rhs(
                            s, i, psi, phi, lambda, theta_w, theta, coupling, c1e1sq2, c2e2sq2,
                            eps1, eps2, dpsi, dphi,
                        );
                    }
                }
            }
            AdjointVariant::PaperDiagonal => {
                // Ablation-only path: the diagonal coupling is per-class,
                // so the body stays a plain loop.
                for j in 0..n {
                    dpsi[j] = -c1e1sq2 * s[j] + psi[j] * (lambda[j] * theta + eps1)
                        - phi[j] * lambda[j] * theta;
                    let coupling_j = (psi[j] - phi[j]) * lambda[j] * s[j];
                    dphi[j] = -c2e2sq2 * i[j] + theta_w[j] * coupling_j + phi[j] * eps2;
                }
            }
        }
    }
}

impl<C> std::fmt::Debug for CostateSystem<'_, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostateSystem")
            .field("n_classes", &self.params.n_classes())
            .field("weights", &self.weights)
            .finish_non_exhaustive()
    }
}

/// The stationary (unclamped) controls of Eq. (18) at one time sample:
///
/// ```text
/// ε1 = Σ ψ_i S_i / (2 c1 Σ S_i²),   ε2 = Σ φ_i I_i / (2 c2 Σ I_i²)
/// ```
///
/// Degenerate denominators (all-zero compartments) yield 0.
pub fn stationary_controls(
    s: &[f64],
    i: &[f64],
    psi: &[f64],
    phi: &[f64],
    weights: &CostWeights,
) -> (f64, f64) {
    let s2 = kernels::dot(s, s);
    let i2 = kernels::dot(i, i);
    let num1 = kernels::dot(psi, s);
    let num2 = kernels::dot(phi, i);
    let e1 = if s2 > 0.0 {
        num1 / (2.0 * weights.c1 * s2)
    } else {
        0.0
    };
    let e2 = if i2 > 0.0 {
        num2 / (2.0 * weights.c2 * i2)
    } else {
        0.0
    };
    (e1, e2)
}

/// The Hamiltonian value of Eq. (14) at one sample — used by tests to
/// verify that the sweep's controls maximize `H` pointwise over the
/// admissible box.
#[allow(clippy::too_many_arguments)]
pub fn hamiltonian(
    params: &ModelParams,
    s: &[f64],
    i: &[f64],
    psi: &[f64],
    phi_co: &[f64],
    eps1: f64,
    eps2: f64,
    weights: &CostWeights,
) -> f64 {
    let n = params.n_classes();
    let lambda = params.lambda();
    let theta = kernels::dot(params.theta_weights(), i);
    let mut h = 0.0;
    for j in 0..n {
        h += weights.c1 * eps1 * eps1 * s[j] * s[j] + weights.c2 * eps2 * eps2 * i[j] * i[j];
        h += psi[j] * (params.alpha() - lambda[j] * s[j] * theta - eps1 * s[j]);
        h += phi_co[j] * (lambda[j] * s[j] * theta - eps2 * i[j]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::control::ConstantControl;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_core::model::RumorModel;
    use rumor_core::state::NetworkState;
    use rumor_net::degree::DegreeClasses;
    use rumor_ode::integrator::Adaptive;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.01)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    fn forward(p: &ModelParams, c: &ConstantControl, tf: f64) -> Solution {
        let model = RumorModel::new(p, *c);
        let y0 = NetworkState::initial_uniform(p.n_classes(), 0.1)
            .unwrap()
            .to_flat();
        Adaptive::new().integrate(&model, 0.0, &y0, tf).unwrap()
    }

    #[test]
    fn terminal_condition_shape() {
        let p = params();
        let c = ConstantControl::new(0.1, 0.1);
        let fwd = forward(&p, &c, 5.0);
        let sys = CostateSystem::new(&p, &fwd, &c, CostWeights::paper_default());
        let y = sys.terminal_condition();
        assert_eq!(y.len(), 2 * p.n_classes());
        assert!(y[..p.n_classes()].iter().all(|&v| v == 0.0));
        assert!(y[p.n_classes()..].iter().all(|&v| v == 1.0));
        assert_eq!(sys.dim(), y.len());
        assert!(!format!("{sys:?}").is_empty());
    }

    #[test]
    fn backward_integration_runs_and_is_finite() {
        let p = params();
        let c = ConstantControl::new(0.1, 0.1);
        let tf = 10.0;
        let fwd = forward(&p, &c, tf);
        let sys = CostateSystem::new(&p, &fwd, &c, CostWeights::paper_default());
        let term = sys.terminal_condition();
        let sol = Adaptive::new().integrate(&sys, tf, &term, 0.0).unwrap();
        assert_eq!(sol.last_time(), 0.0);
        assert!(sol.last_state().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn adjoint_of_zero_cost_without_running_term() {
        // With c1 = c2 → 0⁺ surrogate (tiny weights) and short horizon,
        // φ stays near 1 and ψ near 0 only if dynamics are weak; here we
        // just verify the running-cost terms pull ψ negative (since
        // −2c1ε1²S < 0 drives ψ̇ < 0 near tf, integrating backward makes
        // ψ(t) > 0 before tf... sign bookkeeping: backward from ψ(tf)=0
        // with negative slope gives positive ψ at earlier times).
        let p = params();
        let c = ConstantControl::new(0.3, 0.1);
        let tf = 5.0;
        let fwd = forward(&p, &c, tf);
        let sys = CostateSystem::new(&p, &fwd, &c, CostWeights::paper_default());
        let sol = Adaptive::new()
            .integrate(&sys, tf, &sys.terminal_condition(), 0.0)
            .unwrap();
        let y0 = sol.last_state();
        let n = p.n_classes();
        // ψ at t = 0 should be positive (accumulated truth-spreading cost).
        assert!(y0[..n].iter().all(|&v| v > 0.0), "psi(0) = {:?}", &y0[..n]);
    }

    #[test]
    fn diagonal_variant_differs_from_exact_on_multi_class_systems() {
        let p = params();
        let c = ConstantControl::new(0.1, 0.1);
        let tf = 8.0;
        let fwd = forward(&p, &c, tf);
        let w = CostWeights::paper_default();
        let exact = CostateSystem::with_variant(&p, &fwd, &c, w, AdjointVariant::Exact);
        let diag = CostateSystem::with_variant(&p, &fwd, &c, w, AdjointVariant::PaperDiagonal);
        assert_eq!(exact.variant(), AdjointVariant::Exact);
        assert_eq!(diag.variant(), AdjointVariant::PaperDiagonal);
        let term = exact.terminal_condition();
        let ye = Adaptive::new().integrate(&exact, tf, &term, 0.0).unwrap();
        let yd = Adaptive::new().integrate(&diag, tf, &term, 0.0).unwrap();
        // With more than one class the couplings differ, so the adjoint
        // trajectories must diverge somewhere.
        let d: f64 = ye
            .last_state()
            .iter()
            .zip(yd.last_state())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(d > 1e-9, "variants should differ, max diff {d}");
    }

    #[test]
    fn variants_coincide_for_a_single_class() {
        // With one degree class the Σ_i coupling has a single term, so
        // the printed equation and the exact gradient agree.
        let classes = DegreeClasses::from_degrees(&[3, 3]).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.01)
            .acceptance(AcceptanceRate::Constant { lambda0: 0.4 })
            .infectivity(Infectivity::Linear)
            .build()
            .unwrap();
        let c = ConstantControl::new(0.1, 0.1);
        let tf = 5.0;
        let model = RumorModel::new(&p, c);
        let y0 = NetworkState::initial_uniform(1, 0.1).unwrap().to_flat();
        let fwd = Adaptive::new().integrate(&model, 0.0, &y0, tf).unwrap();
        let w = CostWeights::paper_default();
        let exact = CostateSystem::with_variant(&p, &fwd, &c, w, AdjointVariant::Exact);
        let diag = CostateSystem::with_variant(&p, &fwd, &c, w, AdjointVariant::PaperDiagonal);
        let term = exact.terminal_condition();
        let ye = Adaptive::new().integrate(&exact, tf, &term, 0.0).unwrap();
        let yd = Adaptive::new().integrate(&diag, tf, &term, 0.0).unwrap();
        for (a, b) in ye.last_state().iter().zip(yd.last_state()) {
            assert!((a - b).abs() < 1e-9, "single-class variants must agree");
        }
    }

    #[test]
    fn stationary_controls_formula() {
        let w = CostWeights::new(2.0, 4.0).unwrap();
        let (e1, e2) = stationary_controls(&[0.5, 0.5], &[0.2], &[1.0, 2.0], &[3.0], &w);
        // e1 = (1·0.5 + 2·0.5)/(2·2·0.5) = 1.5/2 = 0.75.
        assert!((e1 - 0.75).abs() < 1e-12);
        // e2 = (3·0.2)/(2·4·0.04) = 0.6/0.32.
        assert!((e2 - 1.875).abs() < 1e-12);
    }

    #[test]
    fn stationary_controls_degenerate_zero() {
        let w = CostWeights::paper_default();
        let (e1, e2) = stationary_controls(&[0.0], &[0.0], &[1.0], &[1.0], &w);
        assert_eq!(e1, 0.0);
        assert_eq!(e2, 0.0);
    }

    #[test]
    fn hamiltonian_is_quadratic_in_controls() {
        let p = params();
        let n = p.n_classes();
        let s = vec![0.5; n];
        let i = vec![0.2; n];
        let psi = vec![0.1; n];
        let phi = vec![1.0; n];
        let w = CostWeights::paper_default();
        // Sample H on a grid of ε1 with ε2 fixed: must be convex (upward
        // parabola) since c1 Σ S² > 0.
        let h = |e1: f64| hamiltonian(&p, &s, &i, &psi, &phi, e1, 0.1, &w);
        let (a, b, c) = (h(0.0), h(0.5), h(1.0));
        assert!(a + c - 2.0 * b > 0.0, "H must be convex in eps1");
    }
}
