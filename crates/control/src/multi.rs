//! The forward–backward sweep generalized to `n_controls ≥ 1`
//! compartment models.
//!
//! This is [`crate::fbsm`] lifted onto the
//! [`rumor_compartments::model::CompartmentModel`] contract: the state,
//! adjoint, stationary conditions, and per-channel cost integrands all
//! come from the model, while the sweep itself — the damped Picard
//! iteration with best-so-far checkpointing, adaptive relaxation, and
//! backtracking under-relaxation — is copied step for step from
//! [`crate::fbsm::optimize_monitored`]. Run on the
//! [`rumor_compartments::paper::PaperSir`] port with a two-channel
//! bounds vector, it reproduces the legacy sweep bit for bit (pinned in
//! `tests/compartment_identity.rs`).

use crate::schedule::PiecewiseControl;
use crate::{ControlError, Result};
use rumor_compartments::model::{CompartmentAdjoint, CompartmentModel, CompartmentOde};
use rumor_compartments::schedule::MultiControlSchedule;
use rumor_compartments::simulate::{
    simulate_compartments_grid, CompartmentSimOptions, CompartmentTrajectory,
};
use rumor_numerics::interp::LinearInterp;
use rumor_numerics::quadrature::trapezoid_sampled;
use rumor_ode::integrator::{Adaptive, AdaptiveConfig};

/// A piecewise-linear schedule of `n_controls` channels on a shared time
/// grid, with constant extrapolation outside it — the `n`-channel
/// generalization of [`PiecewiseControl`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPiecewiseControl {
    channels: Vec<LinearInterp>,
}

impl MultiPiecewiseControl {
    /// Creates a schedule from a grid and per-channel node values.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] for an empty channel set,
    /// a grid that is not strictly increasing, mismatched lengths, or
    /// negative/non-finite values.
    pub fn from_values(grid: Vec<f64>, channels: Vec<Vec<f64>>) -> Result<Self> {
        if channels.is_empty() {
            return Err(ControlError::InvalidConfig(
                "need at least one control channel".into(),
            ));
        }
        for (c, v) in channels.iter().enumerate() {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(ControlError::InvalidConfig(format!(
                    "channel {c} values must be non-negative and finite"
                )));
            }
        }
        let interps = channels
            .into_iter()
            .map(|v| {
                LinearInterp::new(grid.clone(), v)
                    .map_err(|e| ControlError::InvalidConfig(e.to_string()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MultiPiecewiseControl { channels: interps })
    }

    /// Creates a constant schedule on a uniform grid over `[0, tf]` with
    /// one level per channel.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] for non-positive `tf`,
    /// fewer than two nodes, no channels, or negative levels.
    pub fn constant(tf: f64, n_nodes: usize, levels: &[f64]) -> Result<Self> {
        if !(tf > 0.0) || !tf.is_finite() || n_nodes < 2 {
            return Err(ControlError::InvalidConfig(format!(
                "need finite tf > 0 and at least two nodes, got tf = {tf}, nodes = {n_nodes}"
            )));
        }
        let grid: Vec<f64> = (0..n_nodes)
            .map(|i| tf * i as f64 / (n_nodes - 1) as f64)
            .collect();
        Self::from_values(grid, levels.iter().map(|&l| vec![l; n_nodes]).collect())
    }

    /// Number of control channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// The shared time grid.
    pub fn grid(&self) -> &[f64] {
        self.channels[0].xs()
    }

    /// Node values of channel `c`.
    pub fn values(&self, c: usize) -> &[f64] {
        self.channels[c].ys()
    }

    /// Replaces every channel's node values (grid unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] on channel-count or
    /// length mismatch, or invalid values.
    pub fn set_values(&mut self, channels: Vec<Vec<f64>>) -> Result<()> {
        if channels.len() != self.channels.len() {
            return Err(ControlError::InvalidConfig(format!(
                "expected {} channels, got {}",
                self.channels.len(),
                channels.len()
            )));
        }
        for (c, v) in channels.iter().enumerate() {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(ControlError::InvalidConfig(format!(
                    "channel {c} values must be non-negative and finite"
                )));
            }
        }
        for (interp, v) in self.channels.iter_mut().zip(channels) {
            interp
                .set_ys(v)
                .map_err(|e| ControlError::InvalidConfig(e.to_string()))?;
        }
        Ok(())
    }

    /// Clamps every node of channel `c` into `[0, bounds[c]]`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len()` differs from the channel count.
    pub fn clamp_to(&mut self, bounds: &[f64]) {
        assert_eq!(bounds.len(), self.channels.len(), "one bound per channel");
        for (interp, &b) in self.channels.iter_mut().zip(bounds) {
            let ys: Vec<f64> = interp.ys().iter().map(|&v| v.clamp(0.0, b)).collect();
            interp.set_ys(ys).expect("same length");
        }
    }

    /// Value of channel `c` at time `t` (constant extrapolation).
    pub fn eval(&self, c: usize, t: f64) -> f64 {
        self.channels[c].eval(t)
    }

    /// Converts a two-channel legacy schedule (`ε1 → 0`, `ε2 → 1`).
    pub fn from_pair(pair: &PiecewiseControl) -> Self {
        Self::from_values(
            pair.grid().to_vec(),
            vec![pair.eps1_values().to_vec(), pair.eps2_values().to_vec()],
        )
        .expect("a valid PiecewiseControl is a valid two-channel schedule")
    }

    /// Converts back into the legacy two-channel form.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] unless the schedule has
    /// exactly two channels.
    pub fn to_pair(&self) -> Result<PiecewiseControl> {
        if self.channels.len() != 2 {
            return Err(ControlError::InvalidConfig(format!(
                "expected 2 channels for a legacy pair, got {}",
                self.channels.len()
            )));
        }
        PiecewiseControl::from_values(
            self.grid().to_vec(),
            self.values(0).to_vec(),
            self.values(1).to_vec(),
        )
    }
}

impl MultiControlSchedule for MultiPiecewiseControl {
    fn n_controls(&self) -> usize {
        self.channels.len()
    }

    fn eval_into(&self, t: f64, out: &mut [f64]) {
        for (o, interp) in out.iter_mut().zip(&self.channels) {
            *o = interp.eval(t);
        }
    }
}

/// Per-channel box bounds `u_c ∈ [0, max[c]]` — the `n`-channel
/// generalization of [`crate::ControlBounds`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiControlBounds {
    max: Vec<f64>,
}

impl MultiControlBounds {
    /// Validates one positive, finite upper bound per channel.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] for an empty vector or a
    /// non-positive/non-finite bound.
    pub fn new(max: Vec<f64>) -> Result<Self> {
        if max.is_empty() {
            return Err(ControlError::InvalidConfig(
                "need at least one control bound".into(),
            ));
        }
        for (c, &b) in max.iter().enumerate() {
            if !(b > 0.0) || !b.is_finite() {
                return Err(ControlError::InvalidConfig(format!(
                    "bound for channel {c} must be positive and finite, got {b}"
                )));
            }
        }
        Ok(MultiControlBounds { max })
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.max.len()
    }

    /// The per-channel maxima.
    pub fn max(&self) -> &[f64] {
        &self.max
    }
}

/// Tuning knobs of the generalized sweep — the multi-control subset of
/// [`crate::fbsm::FbsmOptions`] (no guarded integration or adjoint
/// ablation here; those remain legacy-sweep features).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFbsmOptions {
    /// Number of control-grid nodes on `[0, tf]`.
    pub n_nodes: usize,
    /// Maximum sweep iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the relative control change.
    pub tolerance: f64,
    /// Relaxation weight `δ ∈ (0, 1]` of the control update.
    pub relaxation: f64,
    /// Floor below which the adaptive damping never pushes `δ`.
    pub relaxation_floor: f64,
    /// Integrator tolerances for the forward and backward passes.
    pub ode: AdaptiveConfig,
    /// Weight of the terminal objective (the transversality condition).
    pub terminal_weight: f64,
    /// Warm start: the initial iterate is this schedule resampled onto
    /// the sweep grid and clamped into the box, instead of the mid-box
    /// constant guess.
    pub initial_control: Option<MultiPiecewiseControl>,
    /// Intra-replica thread count for the forward/backward kernels
    /// (resolved through [`rumor_par::resolve_inner_threads`];
    /// bit-identical at every count).
    pub inner_threads: Option<usize>,
    /// Backtracking under-relaxation (see
    /// [`crate::fbsm::FbsmOptions::backtracking`]); on by default, like
    /// the legacy sweep.
    pub backtracking: bool,
}

impl Default for MultiFbsmOptions {
    fn default() -> Self {
        MultiFbsmOptions {
            n_nodes: 201,
            max_iterations: 200,
            tolerance: 1e-5,
            relaxation: 0.4,
            relaxation_floor: 0.02,
            ode: AdaptiveConfig {
                rtol: 1e-7,
                atol: 1e-9,
                ..AdaptiveConfig::default()
            },
            terminal_weight: 1.0,
            initial_control: None,
            inner_threads: None,
            backtracking: true,
        }
    }
}

impl MultiFbsmOptions {
    /// Validates every field up front.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] naming the offending
    /// field, or a wrapped integrator configuration error.
    pub fn validate(&self) -> Result<()> {
        if self.n_nodes < 2 {
            return Err(ControlError::InvalidConfig(format!(
                "need at least two control nodes, got {}",
                self.n_nodes
            )));
        }
        if self.max_iterations < 1 {
            return Err(ControlError::InvalidConfig(
                "need at least one iteration".into(),
            ));
        }
        if !(self.tolerance > 0.0) || !self.tolerance.is_finite() {
            return Err(ControlError::InvalidConfig(format!(
                "tolerance must be positive and finite, got {}",
                self.tolerance
            )));
        }
        if !(self.relaxation > 0.0) || self.relaxation > 1.0 {
            return Err(ControlError::InvalidConfig(format!(
                "relaxation must lie in (0, 1], got {}",
                self.relaxation
            )));
        }
        if !(self.relaxation_floor > 0.0) || self.relaxation_floor > self.relaxation {
            return Err(ControlError::InvalidConfig(format!(
                "relaxation floor must lie in (0, relaxation], got {}",
                self.relaxation_floor
            )));
        }
        if !(self.terminal_weight >= 0.0) || !self.terminal_weight.is_finite() {
            return Err(ControlError::InvalidConfig(format!(
                "terminal weight must be non-negative and finite, got {}",
                self.terminal_weight
            )));
        }
        self.ode.validate().map_err(ControlError::Ode)?;
        Ok(())
    }
}

/// Cost breakdown of a compartment-model schedule: the terminal
/// objective plus one running-cost integral per control channel.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCostBreakdown {
    /// The model's terminal objective at `tf`.
    pub terminal: f64,
    /// `∫ running_cost_c dt` per channel.
    pub channel_costs: Vec<f64>,
}

impl MultiCostBreakdown {
    /// Total running expenditure across channels.
    pub fn running(&self) -> f64 {
        self.channel_costs.iter().sum()
    }

    /// The full objective `terminal + Σ_c ∫ running_cost_c dt`.
    pub fn total(&self) -> f64 {
        self.terminal + self.running()
    }
}

/// Evaluates the objective of `control` along a sampled trajectory —
/// the generalized counterpart of [`crate::cost::evaluate`].
///
/// # Errors
///
/// Returns [`ControlError::InvalidConfig`] on a channel-count mismatch
/// and propagates quadrature failures.
pub fn evaluate_compartments<M: CompartmentModel>(
    model: &M,
    trajectory: &CompartmentTrajectory,
    control: &MultiPiecewiseControl,
) -> Result<MultiCostBreakdown> {
    let n_controls = model.n_controls();
    if control.n_channels() != n_controls {
        return Err(ControlError::InvalidConfig(format!(
            "schedule has {} channels, model has {n_controls}",
            control.n_channels()
        )));
    }
    let ts = trajectory.times();
    let mut u = vec![0.0; n_controls];
    let mut integrand = vec![0.0; n_controls];
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(ts.len()); n_controls];
    for (&t, state) in ts.iter().zip(trajectory.states()) {
        control.eval_into(t, &mut u);
        model.running_cost(state, &u, &mut integrand);
        for (c, &v) in integrand.iter().enumerate() {
            series[c].push(v);
        }
    }
    let channel_costs = series
        .iter()
        .map(|ys| trapezoid_sampled(ts, ys).map_err(ControlError::Numerics))
        .collect::<Result<Vec<f64>>>()?;
    Ok(MultiCostBreakdown {
        terminal: model.terminal_objective(trajectory.last_state()),
        channel_costs,
    })
}

/// Outcome of the generalized sweep.
#[derive(Debug, Clone)]
pub struct MultiSweepResult {
    /// The optimized multi-channel schedule.
    pub control: MultiPiecewiseControl,
    /// The state trajectory under the optimized schedule, on the sweep
    /// grid.
    pub trajectory: CompartmentTrajectory,
    /// Cost of the optimized schedule.
    pub cost: MultiCostBreakdown,
    /// Sweep iterations performed.
    pub iterations: usize,
    /// Whether the control change dropped below tolerance.
    pub converged: bool,
    /// Total diagnostic cost per iteration.
    pub cost_history: Vec<f64>,
    /// Relative control change per iteration.
    pub change_history: Vec<f64>,
    /// How often the adaptive damping halved the relaxation weight.
    pub relaxation_backoffs: usize,
    /// The relaxation weight in effect when the sweep stopped.
    pub final_relaxation: f64,
    /// `true` when the returned control is the best-so-far checkpoint,
    /// restored because the sweep stopped without converging.
    pub restored_checkpoint: bool,
}

/// Simulates `control` on the sweep grid for the diagnostic and final
/// trajectories. Deliberately serial (no pool), mirroring
/// `fbsm::trajectory_on_grid`'s `simulate_grid` path, so the generic
/// sweep on the paper port stays bit-identical to the legacy one.
fn multi_trajectory_on_grid<M: CompartmentModel>(
    model: &M,
    control: &MultiPiecewiseControl,
    y0: &[f64],
    grid: &[f64],
    options: &MultiFbsmOptions,
) -> Result<CompartmentTrajectory> {
    simulate_compartments_grid(
        model,
        control,
        y0,
        grid,
        &CompartmentSimOptions {
            n_out: grid.len(),
            ode: options.ode,
        },
        None,
    )
    .map_err(ControlError::Core)
}

/// Runs the generalized forward–backward sweep, instrumented like
/// [`crate::fbsm::optimize_monitored`]: mere non-convergence is reported
/// through `converged = false` plus the histories, with the best-so-far
/// checkpoint restored.
///
/// # Errors
///
/// * [`ControlError::InvalidConfig`] for bad options, a bounds/channel
///   mismatch, or an initial state of the wrong dimension.
/// * Propagated integration failures.
pub fn optimize_compartments_monitored<M: CompartmentModel>(
    model: &M,
    y0: &[f64],
    tf: f64,
    bounds: &MultiControlBounds,
    options: &MultiFbsmOptions,
) -> Result<MultiSweepResult> {
    if !(tf > 0.0) || !tf.is_finite() {
        return Err(ControlError::InvalidConfig(format!(
            "final time must be positive and finite, got {tf}"
        )));
    }
    options.validate()?;
    let n_controls = model.n_controls();
    if bounds.n_channels() != n_controls {
        return Err(ControlError::InvalidConfig(format!(
            "bounds have {} channels, model has {n_controls}",
            bounds.n_channels()
        )));
    }
    if y0.len() != model.state_dim() {
        return Err(ControlError::InvalidConfig(format!(
            "initial state has length {}, model needs {}",
            y0.len(),
            model.state_dim()
        )));
    }
    let n = model.n_classes();
    let mut sweep_span = rumor_obs::span("control.multi_fbsm_sweep");

    let grid: Vec<f64> = (0..options.n_nodes)
        .map(|i| tf * i as f64 / (options.n_nodes - 1) as f64)
        .collect();
    let mut control = match &options.initial_control {
        // Warm start: resample the prior schedule onto this grid and
        // clamp into the current box so the iterate is always feasible.
        Some(prior) => {
            if prior.n_channels() != n_controls {
                return Err(ControlError::InvalidConfig(format!(
                    "warm-start schedule has {} channels, model has {n_controls}",
                    prior.n_channels()
                )));
            }
            let channels: Vec<Vec<f64>> = (0..n_controls)
                .map(|c| grid.iter().map(|&t| prior.eval(c, t)).collect())
                .collect();
            let mut warm = MultiPiecewiseControl::from_values(grid.clone(), channels)?;
            warm.clamp_to(bounds.max());
            warm
        }
        // Cold start from mid-box controls.
        None => {
            let levels: Vec<f64> = bounds.max().iter().map(|&b| b / 2.0).collect();
            MultiPiecewiseControl::constant(tf, options.n_nodes, &levels)?
        }
    };

    let mut cost_history = Vec::new();
    let mut change_history = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let mut last_change = f64::INFINITY;
    let mut relaxation_backoffs = 0;
    let mut best: Option<(f64, MultiPiecewiseControl)> = None;
    let mut delta = options.relaxation;

    // Intra-replica pool, under the same dispatchability condition as the
    // legacy sweep; bit-identical with and without it.
    let inner_threads = rumor_par::resolve_inner_threads(options.inner_threads);
    let pool = if inner_threads > 1 && rumor_core::kernels::partition_count(n) > 1 {
        Some(std::sync::Arc::new(rumor_par::InnerPool::new(
            inner_threads,
        )))
    } else {
        None
    };

    let mut u_scratch = vec![0.0; n_controls];
    for iter in 1..=options.max_iterations {
        iterations = iter;
        // (i) Forward pass.
        let sys = CompartmentOde::new(model, &control).with_pool(pool.clone());
        let forward = Adaptive::with_config(options.ode)
            .integrate(&sys, 0.0, y0, tf)
            .map_err(ControlError::Ode)?;

        // (ii) Backward pass.
        let adjoint = CompartmentAdjoint::new(model, &forward, &control).with_pool(pool.clone());
        let terminal = adjoint.weighted_terminal_condition(options.terminal_weight);
        let backward = Adaptive::with_config(options.ode)
            .integrate(&adjoint, tf, &terminal, 0.0)
            .map_err(ControlError::Ode)?;

        // (iii) Control update on the grid.
        let mut new_values: Vec<Vec<f64>> = vec![Vec::with_capacity(grid.len()); n_controls];
        for &t in &grid {
            let state = forward.sample(t).map_err(ControlError::Ode)?;
            let adj = backward.sample(t).map_err(ControlError::Ode)?;
            model.stationary_controls(&state, &adj, &mut u_scratch);
            for (c, &u) in u_scratch.iter().enumerate() {
                new_values[c].push(u.clamp(0.0, bounds.max()[c]));
            }
        }
        // Relaxed update + convergence metric, channel by channel in
        // index order (the legacy sweep's eps1-then-eps2 sequence).
        let relax = |d: f64| {
            let relaxed: Vec<Vec<f64>> = (0..n_controls)
                .map(|c| {
                    control
                        .values(c)
                        .iter()
                        .zip(&new_values[c])
                        .map(|(old, new)| (1.0 - d) * old + d * new)
                        .collect()
                })
                .collect();
            let mut change: f64 = 0.0;
            for c in 0..n_controls {
                for (old, new) in control.values(c).iter().zip(&relaxed[c]) {
                    change = change.max((old - new).abs() / bounds.max()[c]);
                }
            }
            (relaxed, change)
        };
        let (mut relaxed, mut change) = relax(delta);

        if change > last_change {
            if options.backtracking {
                // Backtracking under-relaxation: retry this update at a
                // halved weight — the stationary controls are already in
                // hand, no re-integration.
                while change > last_change && delta > options.relaxation_floor {
                    delta = (delta * 0.5).max(options.relaxation_floor);
                    relaxation_backoffs += 1;
                    (relaxed, change) = relax(delta);
                }
            } else {
                // Historical accept-then-damp.
                let lowered = (delta * 0.5).max(options.relaxation_floor);
                if lowered < delta {
                    relaxation_backoffs += 1;
                }
                delta = lowered;
            }
        } else {
            delta = (delta * 1.05).min(options.relaxation);
        }
        let mut next = control.clone();
        next.set_values(relaxed)?;
        last_change = change;
        change_history.push(change);
        control = next;

        // Diagnostic cost of the current iterate.
        let traj = multi_trajectory_on_grid(model, &control, y0, &grid, options)?;
        let total = evaluate_compartments(model, &traj, &control)?.total();
        cost_history.push(total);
        if total.is_finite() && best.as_ref().is_none_or(|(b, _)| total < *b) {
            best = Some((total, control.clone()));
        }

        if last_change < options.tolerance {
            converged = true;
            break;
        }
    }

    // A non-converged sweep hands back its best checkpoint.
    let mut restored_checkpoint = false;
    if !converged {
        if let Some((best_cost, best_control)) = best {
            let final_cost = cost_history.last().copied().unwrap_or(f64::INFINITY);
            if best_cost < final_cost && best_control != control {
                control = best_control;
                restored_checkpoint = true;
            }
        }
    }

    // Per-iteration residual replay for trace consumers.
    if rumor_obs::format() != rumor_obs::LogFormat::Off {
        for (i, (&change, &cost)) in change_history.iter().zip(&cost_history).enumerate() {
            rumor_obs::event(
                "control.multi_fbsm_iter",
                &[
                    ("iter", (i + 1).into()),
                    ("change", change.into()),
                    ("cost", cost.into()),
                ],
            );
        }
    }
    if sweep_span.active() {
        sweep_span.field("iterations", iterations);
        sweep_span.field("converged", converged);
        sweep_span.field("backoffs", relaxation_backoffs);
    }
    rumor_obs::add("control.multi_fbsm_sweeps", 1);
    rumor_obs::add("control.multi_fbsm_iterations", iterations as u64);

    let trajectory = multi_trajectory_on_grid(model, &control, y0, &grid, options)?;
    let cost = evaluate_compartments(model, &trajectory, &control)?;
    Ok(MultiSweepResult {
        control,
        trajectory,
        cost,
        iterations,
        converged,
        cost_history,
        change_history,
        relaxation_backoffs,
        final_relaxation: delta,
        restored_checkpoint,
    })
}

/// Runs the generalized sweep and converts severe non-convergence (last
/// change above 100× tolerance) into [`ControlError::SweepDiverged`],
/// mirroring [`crate::fbsm::optimize`].
///
/// # Errors
///
/// As [`optimize_compartments_monitored`], plus
/// [`ControlError::SweepDiverged`].
pub fn optimize_compartments<M: CompartmentModel>(
    model: &M,
    y0: &[f64],
    tf: f64,
    bounds: &MultiControlBounds,
    options: &MultiFbsmOptions,
) -> Result<MultiSweepResult> {
    let result = optimize_compartments_monitored(model, y0, tf, bounds, options)?;
    if !result.converged {
        let last_change = result
            .change_history
            .last()
            .copied()
            .unwrap_or(f64::INFINITY);
        if !(last_change <= 100.0 * options.tolerance) {
            return Err(ControlError::SweepDiverged {
                iterations: result.iterations,
                last_change,
            });
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_compartments::paper::PaperSir;

    fn model() -> PaperSir {
        PaperSir::from_parts(
            vec![0.02, 0.02, 0.04, 0.04, 0.06, 0.12],
            vec![0.04, 0.04, 0.08, 0.08, 0.12, 0.24],
            0.002,
            5.0,
            10.0,
        )
        .unwrap()
    }

    fn y0() -> Vec<f64> {
        let mut y = vec![0.0; 18];
        for j in 0..6 {
            y[j] = 0.9;
            y[6 + j] = 0.1;
        }
        y
    }

    #[test]
    fn schedule_round_trips_with_the_pair_form() {
        let pair = PiecewiseControl::from_values(
            vec![0.0, 1.0, 3.0],
            vec![0.4, 0.2, 0.0],
            vec![0.0, 0.1, 0.2],
        )
        .unwrap();
        let multi = MultiPiecewiseControl::from_pair(&pair);
        assert_eq!(multi.n_channels(), 2);
        assert_eq!(multi.to_pair().unwrap(), pair);
        assert!((multi.eval(0, 0.5) - 0.3).abs() < 1e-12);
        let mut out = [0.0; 2];
        multi.eval_into(2.0, &mut out);
        assert!((out[0] - 0.1).abs() < 1e-12);
        assert!((out[1] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn schedule_validation() {
        assert!(MultiPiecewiseControl::from_values(vec![0.0, 1.0], vec![]).is_err());
        assert!(MultiPiecewiseControl::from_values(vec![0.0, 1.0], vec![vec![0.1, -0.2]]).is_err());
        assert!(MultiPiecewiseControl::constant(0.0, 5, &[0.1]).is_err());
        assert!(MultiPiecewiseControl::constant(1.0, 1, &[0.1]).is_err());
        let three = MultiPiecewiseControl::constant(1.0, 3, &[0.1, 0.2, 0.3]).unwrap();
        assert!(three.to_pair().is_err());
        let mut c = MultiPiecewiseControl::constant(1.0, 3, &[0.5, 0.5]).unwrap();
        assert!(c.set_values(vec![vec![0.1; 3]]).is_err());
        assert!(c.set_values(vec![vec![0.1; 2], vec![0.1; 2]]).is_err());
        c.set_values(vec![vec![0.9; 3], vec![0.1; 3]]).unwrap();
        c.clamp_to(&[0.6, 0.2]);
        assert_eq!(c.values(0), &[0.6; 3]);
        assert_eq!(c.values(1), &[0.1; 3]);
    }

    #[test]
    fn bounds_validation() {
        assert!(MultiControlBounds::new(vec![]).is_err());
        assert!(MultiControlBounds::new(vec![0.5, 0.0]).is_err());
        assert!(MultiControlBounds::new(vec![f64::NAN]).is_err());
        let b = MultiControlBounds::new(vec![0.5, 0.6]).unwrap();
        assert_eq!(b.n_channels(), 2);
    }

    #[test]
    fn options_validation() {
        assert!(MultiFbsmOptions::default().validate().is_ok());
        for bad in [
            MultiFbsmOptions {
                n_nodes: 1,
                ..Default::default()
            },
            MultiFbsmOptions {
                max_iterations: 0,
                ..Default::default()
            },
            MultiFbsmOptions {
                tolerance: 0.0,
                ..Default::default()
            },
            MultiFbsmOptions {
                relaxation: 1.5,
                ..Default::default()
            },
            MultiFbsmOptions {
                relaxation_floor: 0.9,
                relaxation: 0.4,
                ..Default::default()
            },
            MultiFbsmOptions {
                terminal_weight: -1.0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sweep_converges_on_the_paper_port() {
        let m = model();
        let bounds = MultiControlBounds::new(vec![0.6, 0.6]).unwrap();
        let options = MultiFbsmOptions {
            n_nodes: 51,
            max_iterations: 80,
            tolerance: 1e-4,
            relaxation: 0.5,
            ode: AdaptiveConfig {
                rtol: 1e-6,
                atol: 1e-8,
                ..Default::default()
            },
            ..Default::default()
        };
        let result = optimize_compartments(&m, &y0(), 20.0, &bounds, &options).unwrap();
        assert!(result.converged, "generic sweep did not converge");
        assert!(result.iterations > 1);
        assert!(result.cost.total().is_finite());
        for c in 0..2 {
            assert!(result
                .control
                .values(c)
                .iter()
                .all(|&v| (0.0..=0.6).contains(&v)));
        }
        // Optimized control beats the uncontrolled baseline.
        let no_control = MultiPiecewiseControl::constant(20.0, 51, &[0.0, 0.0]).unwrap();
        let grid: Vec<f64> = (0..51).map(|i| 20.0 * i as f64 / 50.0).collect();
        let base_traj = multi_trajectory_on_grid(&m, &no_control, &y0(), &grid, &options).unwrap();
        let base_cost = evaluate_compartments(&m, &base_traj, &no_control).unwrap();
        assert!(result.cost.total() < base_cost.total());
    }

    #[test]
    fn warm_start_resamples_and_clamps() {
        let m = model();
        let bounds = MultiControlBounds::new(vec![0.3, 0.3]).unwrap();
        let prior = MultiPiecewiseControl::constant(10.0, 5, &[0.9, 0.05]).unwrap();
        let options = MultiFbsmOptions {
            n_nodes: 21,
            max_iterations: 1,
            tolerance: 1e-12,
            relaxation: 0.5,
            initial_control: Some(prior),
            ..Default::default()
        };
        let result = optimize_compartments_monitored(&m, &y0(), 20.0, &bounds, &options).unwrap();
        assert_eq!(result.iterations, 1);
        assert!(!result.converged);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let m = model();
        let bounds3 = MultiControlBounds::new(vec![0.5, 0.5, 0.5]).unwrap();
        let options = MultiFbsmOptions::default();
        assert!(optimize_compartments_monitored(&m, &y0(), 20.0, &bounds3, &options).is_err());
        let bounds = MultiControlBounds::new(vec![0.5, 0.5]).unwrap();
        assert!(optimize_compartments_monitored(&m, &[0.1; 4], 20.0, &bounds, &options).is_err());
        assert!(optimize_compartments_monitored(&m, &y0(), -1.0, &bounds, &options).is_err());
        let wrong_warm = MultiFbsmOptions {
            initial_control: Some(MultiPiecewiseControl::constant(10.0, 5, &[0.1]).unwrap()),
            ..Default::default()
        };
        assert!(optimize_compartments_monitored(&m, &y0(), 20.0, &bounds, &wrong_warm).is_err());
    }
}
