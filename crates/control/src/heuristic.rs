//! The heuristic (myopic feedback) countermeasure baseline.
//!
//! The paper's Fig. 4(c) compares the optimized schedule against
//! "heuristic countermeasures (that) restrain the spread of rumors just
//! based on the current infection state, i.e., there is no global
//! control". We realize that as proportional feedback: both channels
//! react to the current mean infected density,
//!
//! ```text
//! ε1(t) = clamp(g1 · Ī(t), 0, ε1max),   ε2(t) = clamp(g2 · Ī(t), 0, ε2max)
//! ```
//!
//! with `Ī = (1/n) Σ_i I_i`. [`tune`] searches the shared gain so the
//! terminal infection matches a target level, which is how the paper
//! equalizes effectiveness before comparing costs.

use crate::cost::{evaluate, CostBreakdown};
use crate::schedule::PiecewiseControl;
use crate::{ControlBounds, ControlError, CostWeights, Result};
use rumor_core::params::ModelParams;
use rumor_core::state::NetworkState;
use rumor_ode::integrator::{Adaptive, AdaptiveConfig};
use rumor_ode::system::OdeSystem;

/// A state-feedback countermeasure rule: maps the current mean infected
/// density to a rate pair. Implemented by [`HeuristicPolicy`]
/// (proportional) and [`SigmoidPolicy`] (smoothed threshold switching).
pub trait FeedbackRule: Copy {
    /// The feedback rates at mean infected density `i_mean`.
    fn feedback_rates(&self, i_mean: f64) -> (f64, f64);
}

/// Proportional-feedback policy reacting to the mean infected density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicPolicy {
    /// Gain of the truth-spreading channel.
    pub gain1: f64,
    /// Gain of the blocking channel.
    pub gain2: f64,
    /// Saturation bounds (shared with the optimized problem for a fair
    /// comparison).
    pub bounds: ControlBounds,
}

impl HeuristicPolicy {
    /// The feedback rates at mean infected density `i_mean`.
    pub fn rates(&self, i_mean: f64) -> (f64, f64) {
        (
            (self.gain1 * i_mean).clamp(0.0, self.bounds.eps1_max),
            (self.gain2 * i_mean).clamp(0.0, self.bounds.eps2_max),
        )
    }
}

impl FeedbackRule for HeuristicPolicy {
    fn feedback_rates(&self, i_mean: f64) -> (f64, f64) {
        self.rates(i_mean)
    }
}

/// Smoothed threshold ("soft bang-bang") policy: each channel switches
/// from 0 toward its bound as the mean infected density crosses its
/// midpoint, with a logistic transition of the given sharpness (the
/// smooth transition keeps the closed-loop ODE integrable without the
/// chattering a hard switch would induce):
///
/// ```text
/// ε(Ī) = ε_max / (1 + exp(−sharpness·(Ī − mid)))
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmoidPolicy {
    /// Midpoint of the truth-spreading switch.
    pub mid1: f64,
    /// Midpoint of the blocking switch.
    pub mid2: f64,
    /// Logistic sharpness (larger = closer to a hard switch).
    pub sharpness: f64,
    /// Saturation bounds.
    pub bounds: ControlBounds,
}

impl FeedbackRule for SigmoidPolicy {
    fn feedback_rates(&self, i_mean: f64) -> (f64, f64) {
        let sig = |mid: f64| 1.0 / (1.0 + (-self.sharpness * (i_mean - mid)).exp());
        (
            self.bounds.eps1_max * sig(self.mid1),
            self.bounds.eps2_max * sig(self.mid2),
        )
    }
}

/// The rumor dynamics under state-feedback countermeasures (the control
/// depends on the state, so it cannot be expressed as a
/// [`rumor_core::control::ControlSchedule`]).
#[derive(Debug, Clone)]
struct HeuristicModel<'p, P> {
    params: &'p ModelParams,
    policy: P,
}

impl<P: FeedbackRule> OdeSystem for HeuristicModel<'_, P> {
    fn dim(&self) -> usize {
        3 * self.params.n_classes()
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.params.n_classes();
        let alpha = self.params.alpha();
        let lambda = self.params.lambda();
        let phi = self.params.phi();
        let mean_k = self.params.mean_degree();
        let i_mean = y[n..2 * n].iter().sum::<f64>() / n as f64;
        let (eps1, eps2) = self.policy.feedback_rates(i_mean);
        let theta: f64 = phi
            .iter()
            .zip(&y[n..2 * n])
            .map(|(p, i)| p * i)
            .sum::<f64>()
            / mean_k;
        for j in 0..n {
            let s = y[j];
            let inf = y[n + j];
            let force = lambda[j] * s * theta;
            dydt[j] = alpha - force - eps1 * s;
            dydt[n + j] = force - eps2 * inf;
            dydt[2 * n + j] = eps1 * s + eps2 * inf - alpha;
        }
    }
}

/// Outcome of a heuristic run: the realized trajectory, the control
/// signal it induced, and its cost.
#[derive(Debug, Clone)]
pub struct HeuristicRun<P = HeuristicPolicy> {
    /// The policy that produced the run.
    pub policy: P,
    /// State trajectory on the output grid.
    pub trajectory: rumor_core::simulate::Trajectory,
    /// The induced (recorded) control signal.
    pub control: PiecewiseControl,
    /// Itemized cost under the same functional as the optimized problem.
    pub cost: CostBreakdown,
}

/// Simulates the feedback policy over `[0, tf]` and evaluates its cost.
///
/// # Errors
///
/// * [`ControlError::InvalidConfig`] for bad horizon/grid parameters.
/// * Propagated integration failures.
pub fn run<P: FeedbackRule>(
    params: &ModelParams,
    initial: &NetworkState,
    tf: f64,
    policy: P,
    weights: &CostWeights,
    n_out: usize,
) -> Result<HeuristicRun<P>> {
    if !(tf > 0.0) || n_out < 2 {
        return Err(ControlError::InvalidConfig(format!(
            "need tf > 0 and n_out >= 2, got tf = {tf}, n_out = {n_out}"
        )));
    }
    if initial.n_classes() != params.n_classes() {
        return Err(ControlError::InvalidConfig(format!(
            "initial state has {} classes, parameters have {}",
            initial.n_classes(),
            params.n_classes()
        )));
    }
    let model = HeuristicModel { params, policy };
    let cfg = AdaptiveConfig {
        rtol: 1e-7,
        atol: 1e-9,
        ..Default::default()
    };
    let sol = Adaptive::with_config(cfg).integrate(&model, 0.0, &initial.to_flat(), tf)?;
    let grid: Vec<f64> = (0..n_out)
        .map(|i| tf * i as f64 / (n_out - 1) as f64)
        .collect();
    let n = params.n_classes();
    let mut states = Vec::with_capacity(n_out);
    let mut e1 = Vec::with_capacity(n_out);
    let mut e2 = Vec::with_capacity(n_out);
    for &t in &grid {
        let flat = sol.sample(t)?;
        let i_mean = flat[n..2 * n].iter().sum::<f64>() / n as f64;
        let (r1, r2) = policy.feedback_rates(i_mean);
        e1.push(r1);
        e2.push(r2);
        states.push(NetworkState::from_flat(&flat)?);
    }
    let control = PiecewiseControl::from_values(grid.clone(), e1, e2)?;
    let trajectory = rumor_core::simulate::Trajectory::from_parts(grid, states);
    let cost = evaluate(&trajectory, &control, weights)?;
    Ok(HeuristicRun {
        policy,
        trajectory,
        control,
        cost,
    })
}

/// Bisects the shared feedback gain so the run's terminal infection hits
/// `target` (within `tol_rel` relative tolerance). Both channels share
/// the gain, mirroring the paper's single-knob heuristic.
///
/// # Errors
///
/// * [`ControlError::TargetUnreachable`] if even the saturated policy
///   cannot push the terminal infection down to `target`.
/// * [`ControlError::InvalidConfig`] for a non-positive target.
pub fn tune(
    params: &ModelParams,
    initial: &NetworkState,
    tf: f64,
    bounds: &ControlBounds,
    weights: &CostWeights,
    target: f64,
    n_out: usize,
) -> Result<HeuristicRun> {
    if !(target > 0.0) {
        return Err(ControlError::InvalidConfig(format!(
            "terminal infection target must be positive, got {target}"
        )));
    }
    let mk_policy = |g: f64| HeuristicPolicy {
        gain1: g,
        gain2: g,
        bounds: *bounds,
    };
    let terminal = |g: f64| -> Result<f64> {
        Ok(run(params, initial, tf, mk_policy(g), weights, n_out)?
            .trajectory
            .last_state()
            .total_infected())
    };
    // Find an upper gain that reaches the target.
    let mut g_hi = 1.0;
    let mut reached = terminal(g_hi)?;
    let mut guard = 0;
    while reached > target {
        g_hi *= 4.0;
        reached = terminal(g_hi)?;
        guard += 1;
        if guard > 20 {
            return Err(ControlError::TargetUnreachable {
                target,
                best: reached,
            });
        }
    }
    // Bisect on the gain (terminal infection is monotone decreasing).
    let mut g_lo = 0.0;
    for _ in 0..60 {
        let mid = 0.5 * (g_lo + g_hi);
        if terminal(mid)? > target {
            g_lo = mid;
        } else {
            g_hi = mid;
        }
        if (g_hi - g_lo) < 1e-6 * g_hi.max(1.0) {
            break;
        }
    }
    run(params, initial, tf, mk_policy(g_hi), weights, n_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.002)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    fn bounds() -> ControlBounds {
        ControlBounds::new(0.6, 0.6).unwrap()
    }

    #[test]
    fn policy_rates_clamp() {
        let p = HeuristicPolicy {
            gain1: 10.0,
            gain2: 0.5,
            bounds: bounds(),
        };
        let (e1, e2) = p.rates(0.2);
        assert_eq!(e1, 0.6); // saturated
        assert!((e2 - 0.1).abs() < 1e-12);
        assert_eq!(p.rates(0.0), (0.0, 0.0));
    }

    #[test]
    fn run_produces_consistent_artifacts() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let policy = HeuristicPolicy {
            gain1: 2.0,
            gain2: 2.0,
            bounds: bounds(),
        };
        let hr = run(&p, &init, 20.0, policy, &CostWeights::paper_default(), 41).unwrap();
        assert_eq!(hr.trajectory.len(), 41);
        assert_eq!(hr.control.grid().len(), 41);
        assert!(hr.cost.total().is_finite());
        // The recorded control must match the policy applied to the
        // recorded states.
        let n = p.n_classes();
        let _ = n;
        for (k, st) in hr.trajectory.states().iter().enumerate() {
            let i_mean = st.total_infected() / p.n_classes() as f64;
            let (e1, _) = policy.rates(i_mean);
            assert!((hr.control.eps1_values()[k] - e1).abs() < 1e-9);
        }
    }

    #[test]
    fn stronger_gain_means_less_infection() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let w = CostWeights::paper_default();
        let weak = run(
            &p,
            &init,
            30.0,
            HeuristicPolicy {
                gain1: 0.1,
                gain2: 0.1,
                bounds: bounds(),
            },
            &w,
            41,
        )
        .unwrap();
        let strong = run(
            &p,
            &init,
            30.0,
            HeuristicPolicy {
                gain1: 5.0,
                gain2: 5.0,
                bounds: bounds(),
            },
            &w,
            41,
        )
        .unwrap();
        assert!(
            strong.trajectory.last_state().total_infected()
                < weak.trajectory.last_state().total_infected()
        );
    }

    #[test]
    fn tune_hits_target() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let w = CostWeights::paper_default();
        let target = 0.05;
        let hr = tune(&p, &init, 40.0, &bounds(), &w, target, 41).unwrap();
        let terminal = hr.trajectory.last_state().total_infected();
        assert!(
            terminal <= target * 1.05,
            "terminal {terminal} vs target {target}"
        );
    }

    #[test]
    fn tune_unreachable_target_errors() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.5).unwrap();
        let w = CostWeights::paper_default();
        // Absurdly low target over a very short horizon with weak bounds.
        let tight = ControlBounds::new(0.01, 0.01).unwrap();
        let r = tune(&p, &init, 1.0, &tight, &w, 1e-12, 21);
        assert!(matches!(r, Err(ControlError::TargetUnreachable { .. })));
    }

    #[test]
    fn validation_errors() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let w = CostWeights::paper_default();
        let policy = HeuristicPolicy {
            gain1: 1.0,
            gain2: 1.0,
            bounds: bounds(),
        };
        assert!(run(&p, &init, 0.0, policy, &w, 41).is_err());
        assert!(run(&p, &init, 1.0, policy, &w, 1).is_err());
        let bad = NetworkState::initial_uniform(2, 0.1).unwrap();
        assert!(run(&p, &bad, 1.0, policy, &w, 41).is_err());
        assert!(tune(&p, &init, 1.0, &bounds(), &w, 0.0, 21).is_err());
    }
}

#[cfg(test)]
mod sigmoid_tests {
    use super::*;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.002)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    fn bounds() -> ControlBounds {
        ControlBounds::new(0.6, 0.6).unwrap()
    }

    #[test]
    fn sigmoid_rates_interpolate_between_zero_and_bound() {
        let p = SigmoidPolicy {
            mid1: 0.1,
            mid2: 0.2,
            sharpness: 100.0,
            bounds: bounds(),
        };
        // Far below the midpoints: nearly off.
        let (a, b) = p.feedback_rates(0.0);
        assert!(a < 1e-3 && b < 1e-6);
        // At a midpoint: exactly half the bound.
        let (a, _) = p.feedback_rates(0.1);
        assert!((a - 0.3).abs() < 1e-12);
        // Far above: saturated.
        let (a, b) = p.feedback_rates(0.5);
        assert!((a - 0.6).abs() < 1e-6 && (b - 0.6).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_policy_runs_and_suppresses() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.2).unwrap();
        let w = CostWeights::paper_default();
        let policy = SigmoidPolicy {
            mid1: 0.05,
            mid2: 0.05,
            sharpness: 60.0,
            bounds: bounds(),
        };
        let hr = run(&p, &init, 40.0, policy, &w, 41).unwrap();
        assert_eq!(hr.trajectory.len(), 41);
        assert!(hr.cost.total().is_finite());
        // Strong switching suppresses the outbreak relative to no control.
        let free = run(
            &p,
            &init,
            40.0,
            HeuristicPolicy {
                gain1: 0.0,
                gain2: 0.0,
                bounds: bounds(),
            },
            &w,
            41,
        )
        .unwrap();
        assert!(
            hr.trajectory.last_state().total_infected()
                < free.trajectory.last_state().total_infected()
        );
    }

    #[test]
    fn recorded_control_matches_policy_evaluation() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.15).unwrap();
        let w = CostWeights::paper_default();
        let policy = SigmoidPolicy {
            mid1: 0.08,
            mid2: 0.12,
            sharpness: 40.0,
            bounds: bounds(),
        };
        let hr = run(&p, &init, 20.0, policy, &w, 21).unwrap();
        for (k, st) in hr.trajectory.states().iter().enumerate() {
            let i_mean = st.total_infected() / p.n_classes() as f64;
            let (e1, e2) = policy.feedback_rates(i_mean);
            assert!((hr.control.eps1_values()[k] - e1).abs() < 1e-9);
            assert!((hr.control.eps2_values()[k] - e2).abs() < 1e-9);
        }
    }
}
