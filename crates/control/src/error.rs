use std::fmt;

/// Errors produced by the optimal-control routines.
#[derive(Debug)]
#[non_exhaustive]
pub enum ControlError {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// The forward–backward sweep failed to converge.
    SweepDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Last relative control change observed.
        last_change: f64,
    },
    /// The heuristic gain search could not bracket the target.
    TargetUnreachable {
        /// The terminal-infection target.
        target: f64,
        /// Best terminal infection achieved at maximum gain.
        best: f64,
    },
    /// An underlying core-model failure.
    Core(rumor_core::CoreError),
    /// An underlying ODE failure.
    Ode(rumor_ode::OdeError),
    /// An underlying numerical failure.
    Numerics(rumor_numerics::NumericsError),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::InvalidConfig(msg) => write!(f, "invalid control configuration: {msg}"),
            ControlError::SweepDiverged {
                iterations,
                last_change,
            } => write!(
                f,
                "forward-backward sweep did not converge after {iterations} iterations (last change {last_change:.3e})"
            ),
            ControlError::TargetUnreachable { target, best } => write!(
                f,
                "terminal infection target {target} unreachable (best achievable {best})"
            ),
            ControlError::Core(e) => write!(f, "core model error: {e}"),
            ControlError::Ode(e) => write!(f, "ode error: {e}"),
            ControlError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for ControlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ControlError::Core(e) => Some(e),
            ControlError::Ode(e) => Some(e),
            ControlError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rumor_core::CoreError> for ControlError {
    fn from(e: rumor_core::CoreError) -> Self {
        ControlError::Core(e)
    }
}

impl From<rumor_ode::OdeError> for ControlError {
    fn from(e: rumor_ode::OdeError) -> Self {
        ControlError::Ode(e)
    }
}

impl From<rumor_numerics::NumericsError> for ControlError {
    fn from(e: rumor_numerics::NumericsError) -> Self {
        ControlError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::ControlError;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = ControlError::SweepDiverged {
            iterations: 50,
            last_change: 0.1,
        };
        assert!(e.to_string().contains("50"));
        assert!(e.source().is_none());
        let c: ControlError = rumor_core::CoreError::NoEndemicEquilibrium { r0: 0.5 }.into();
        assert!(c.source().is_some());
        let o: ControlError = rumor_ode::OdeError::NonFiniteState { t: 1.0 }.into();
        assert!(o.source().is_some());
        let n: ControlError = rumor_numerics::NumericsError::SingularMatrix.into();
        assert!(n.source().is_some());
    }
}
