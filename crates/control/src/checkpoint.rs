//! A compact, versioned byte encoding of a [`PiecewiseControl`]
//! schedule.
//!
//! This is the watchdog's in-memory best-so-far checkpoint made
//! external: the durable-jobs layer persists the previous grid point's
//! optimized schedule between points (and across process restarts), and
//! feeds it back through [`FbsmOptions::initial_control`] so a resumed
//! sweep warm-starts instead of re-deriving the schedule from the
//! mid-box guess.
//!
//! Format (all little-endian): `magic "RCP1"` · `n: u32` · `grid: n×f64`
//! · `eps1: n×f64` · `eps2: n×f64`. Decoding revalidates through
//! [`PiecewiseControl::from_values`], so corrupt bytes surface as a
//! structured error, never as NaN inside a sweep.
//!
//! [`FbsmOptions::initial_control`]: crate::fbsm::FbsmOptions::initial_control

use crate::schedule::PiecewiseControl;
use crate::{ControlError, Result};

/// Format tag, bumped on any layout change.
const MAGIC: &[u8; 4] = b"RCP1";

/// Encodes a schedule into the versioned checkpoint byte form.
pub fn encode_schedule(control: &PiecewiseControl) -> Vec<u8> {
    let grid = control.grid();
    let mut out = Vec::with_capacity(8 + 24 * grid.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(grid.len() as u32).to_le_bytes());
    for series in [grid, control.eps1_values(), control.eps2_values()] {
        for &x in series {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

/// Decodes checkpoint bytes back into a schedule.
///
/// # Errors
///
/// Returns [`ControlError::InvalidConfig`] for a wrong magic, a
/// truncated buffer, trailing bytes, or node values the schedule
/// validation rejects.
pub fn decode_schedule(bytes: &[u8]) -> Result<PiecewiseControl> {
    let bad = |reason: &str| ControlError::InvalidConfig(format!("control checkpoint: {reason}"));
    if bytes.len() < 8 {
        return Err(bad("truncated header"));
    }
    if &bytes[..4] != MAGIC {
        return Err(bad("unrecognized format tag"));
    }
    let n = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let expected = 8 + 24 * n;
    if bytes.len() != expected {
        return Err(bad(&format!(
            "expected {expected} bytes for {n} nodes, got {}",
            bytes.len()
        )));
    }
    let f64_at = |i: usize| {
        let start = 8 + 8 * i;
        f64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"))
    };
    let grid: Vec<f64> = (0..n).map(f64_at).collect();
    let eps1: Vec<f64> = (n..2 * n).map(f64_at).collect();
    let eps2: Vec<f64> = (2 * n..3 * n).map(f64_at).collect();
    PiecewiseControl::from_values(grid, eps1, eps2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_schedule() {
        let pc = PiecewiseControl::from_values(
            vec![0.0, 1.5, 4.0],
            vec![0.4, 0.25, 0.0],
            vec![0.0, 0.125, 0.5],
        )
        .unwrap();
        let bytes = encode_schedule(&pc);
        let back = decode_schedule(&bytes).unwrap();
        assert_eq!(back, pc);
    }

    #[test]
    fn rejects_corrupt_bytes() {
        let pc = PiecewiseControl::constant(2.0, 5, 0.3, 0.1).unwrap();
        let bytes = encode_schedule(&pc);
        assert!(decode_schedule(&[]).is_err());
        assert!(decode_schedule(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_schedule(&wrong_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_schedule(&trailing).is_err());
        // A NaN node value fails schedule validation on decode.
        let mut nan_value = bytes;
        nan_value[8 + 8 * 5..8 + 8 * 6].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_schedule(&nan_value).is_err());
    }
}
