//! A compact, versioned byte encoding of a [`PiecewiseControl`]
//! schedule.
//!
//! This is the watchdog's in-memory best-so-far checkpoint made
//! external: the durable-jobs layer persists the previous grid point's
//! optimized schedule between points (and across process restarts), and
//! feeds it back through [`FbsmOptions::initial_control`] so a resumed
//! sweep warm-starts instead of re-deriving the schedule from the
//! mid-box guess.
//!
//! Format (all little-endian): `magic "RCP1"` · `n: u32` · `grid: n×f64`
//! · `eps1: n×f64` · `eps2: n×f64`. Decoding revalidates through
//! [`PiecewiseControl::from_values`], so corrupt bytes surface as a
//! structured error, never as NaN inside a sweep.
//!
//! The multi-control generalization uses `magic "RCP2"` ·
//! `n_channels: u32` · `n: u32` · `grid: n×f64` · `n_channels` value
//! series of `n×f64` each. [`decode_multi_schedule`] also accepts RCP1
//! bytes as a two-channel legacy form, so a durable job that upgraded
//! mid-campaign still warm-starts from its old checkpoint.
//!
//! [`FbsmOptions::initial_control`]: crate::fbsm::FbsmOptions::initial_control

use crate::multi::MultiPiecewiseControl;
use crate::schedule::PiecewiseControl;
use crate::{ControlError, Result};

/// Format tag, bumped on any layout change.
const MAGIC: &[u8; 4] = b"RCP1";

/// Format tag of the multi-channel form.
const MAGIC_MULTI: &[u8; 4] = b"RCP2";

/// Encodes a schedule into the versioned checkpoint byte form.
pub fn encode_schedule(control: &PiecewiseControl) -> Vec<u8> {
    let grid = control.grid();
    let mut out = Vec::with_capacity(8 + 24 * grid.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(grid.len() as u32).to_le_bytes());
    for series in [grid, control.eps1_values(), control.eps2_values()] {
        for &x in series {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

/// Decodes checkpoint bytes back into a schedule.
///
/// # Errors
///
/// Returns [`ControlError::InvalidConfig`] for a wrong magic, a
/// truncated buffer, trailing bytes, or node values the schedule
/// validation rejects.
pub fn decode_schedule(bytes: &[u8]) -> Result<PiecewiseControl> {
    let bad = |reason: &str| ControlError::InvalidConfig(format!("control checkpoint: {reason}"));
    if bytes.len() < 8 {
        return Err(bad("truncated header"));
    }
    if &bytes[..4] != MAGIC {
        return Err(bad("unrecognized format tag"));
    }
    let n = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let expected = 8 + 24 * n;
    if bytes.len() != expected {
        return Err(bad(&format!(
            "expected {expected} bytes for {n} nodes, got {}",
            bytes.len()
        )));
    }
    let f64_at = |i: usize| {
        let start = 8 + 8 * i;
        f64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"))
    };
    let grid: Vec<f64> = (0..n).map(f64_at).collect();
    let eps1: Vec<f64> = (n..2 * n).map(f64_at).collect();
    let eps2: Vec<f64> = (2 * n..3 * n).map(f64_at).collect();
    PiecewiseControl::from_values(grid, eps1, eps2)
}

/// Encodes a multi-channel schedule into the RCP2 byte form.
pub fn encode_multi_schedule(control: &MultiPiecewiseControl) -> Vec<u8> {
    let grid = control.grid();
    let n_channels = control.n_channels();
    let mut out = Vec::with_capacity(12 + 8 * grid.len() * (1 + n_channels));
    out.extend_from_slice(MAGIC_MULTI);
    out.extend_from_slice(&(n_channels as u32).to_le_bytes());
    out.extend_from_slice(&(grid.len() as u32).to_le_bytes());
    for &x in grid {
        out.extend_from_slice(&x.to_le_bytes());
    }
    for c in 0..n_channels {
        for &x in control.values(c) {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

/// Decodes multi-channel checkpoint bytes. RCP1 bytes are accepted as
/// the two-channel legacy form (`ε1 → 0`, `ε2 → 1`).
///
/// # Errors
///
/// Returns [`ControlError::InvalidConfig`] for an unrecognized magic, a
/// truncated buffer, trailing bytes, a zero channel count, or node
/// values the schedule validation rejects.
pub fn decode_multi_schedule(bytes: &[u8]) -> Result<MultiPiecewiseControl> {
    let bad = |reason: &str| ControlError::InvalidConfig(format!("control checkpoint: {reason}"));
    if bytes.len() >= 4 && &bytes[..4] == MAGIC {
        return Ok(MultiPiecewiseControl::from_pair(&decode_schedule(bytes)?));
    }
    if bytes.len() < 12 {
        return Err(bad("truncated header"));
    }
    if &bytes[..4] != MAGIC_MULTI {
        return Err(bad("unrecognized format tag"));
    }
    let n_channels = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let n = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    if n_channels == 0 {
        return Err(bad("zero control channels"));
    }
    let expected = 12 + 8 * n * (1 + n_channels);
    if bytes.len() != expected {
        return Err(bad(&format!(
            "expected {expected} bytes for {n_channels} channels of {n} nodes, got {}",
            bytes.len()
        )));
    }
    let f64_at = |i: usize| {
        let start = 12 + 8 * i;
        f64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"))
    };
    let grid: Vec<f64> = (0..n).map(f64_at).collect();
    let channels: Vec<Vec<f64>> = (0..n_channels)
        .map(|c| ((c + 1) * n..(c + 2) * n).map(f64_at).collect())
        .collect();
    MultiPiecewiseControl::from_values(grid, channels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_schedule() {
        let pc = PiecewiseControl::from_values(
            vec![0.0, 1.5, 4.0],
            vec![0.4, 0.25, 0.0],
            vec![0.0, 0.125, 0.5],
        )
        .unwrap();
        let bytes = encode_schedule(&pc);
        let back = decode_schedule(&bytes).unwrap();
        assert_eq!(back, pc);
    }

    #[test]
    fn rejects_corrupt_bytes() {
        let pc = PiecewiseControl::constant(2.0, 5, 0.3, 0.1).unwrap();
        let bytes = encode_schedule(&pc);
        assert!(decode_schedule(&[]).is_err());
        assert!(decode_schedule(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_schedule(&wrong_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_schedule(&trailing).is_err());
        // A NaN node value fails schedule validation on decode.
        let mut nan_value = bytes;
        nan_value[8 + 8 * 5..8 + 8 * 6].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_schedule(&nan_value).is_err());
    }

    #[test]
    fn multi_round_trips_a_schedule() {
        let mc = MultiPiecewiseControl::from_values(
            vec![0.0, 1.5, 4.0],
            vec![
                vec![0.4, 0.25, 0.0],
                vec![0.0, 0.125, 0.5],
                vec![0.2, 0.2, 0.2],
            ],
        )
        .unwrap();
        let bytes = encode_multi_schedule(&mc);
        let back = decode_multi_schedule(&bytes).unwrap();
        assert_eq!(back, mc);
        // Byte-identity of re-encoding: resume-across-SIGKILL contract.
        assert_eq!(encode_multi_schedule(&back), bytes);
    }

    #[test]
    fn multi_accepts_legacy_pair_bytes() {
        let pc = PiecewiseControl::from_values(
            vec![0.0, 2.0, 5.0],
            vec![0.3, 0.2, 0.1],
            vec![0.05, 0.1, 0.15],
        )
        .unwrap();
        let legacy = encode_schedule(&pc);
        let mc = decode_multi_schedule(&legacy).unwrap();
        assert_eq!(mc.n_channels(), 2);
        assert_eq!(mc.to_pair().unwrap(), pc);
    }

    #[test]
    fn multi_rejects_corrupt_bytes() {
        let mc = MultiPiecewiseControl::constant(2.0, 5, &[0.3, 0.1, 0.2]).unwrap();
        let bytes = encode_multi_schedule(&mc);
        assert!(decode_multi_schedule(&[]).is_err());
        assert!(decode_multi_schedule(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[3] = b'9';
        assert!(decode_multi_schedule(&wrong_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_multi_schedule(&trailing).is_err());
        let mut zero_channels = bytes.clone();
        zero_channels[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_multi_schedule(&zero_channels).is_err());
        // A negative node value fails schedule validation on decode.
        let mut negative = bytes;
        negative[12 + 8 * 5..12 + 8 * 6].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert!(decode_multi_schedule(&negative).is_err());
    }
}
