//! Optimized countermeasures for rumor spreading (paper Section IV).
//!
//! The paper poses an optimal-control problem: choose the time profiles
//! of truth-spreading `ε1(t)` and rumor-blocking `ε2(t)` on `(0, tf]` to
//! minimize
//!
//! ```text
//! J = Σ_i I_i(tf) + ∫₀^tf Σ_i ( c1 ε1²(t) S_i²(t) + c2 ε2²(t) I_i²(t) ) dt
//! ```
//!
//! subject to the rumor dynamics and box constraints
//! `0 ≤ ε1 ≤ ε1max`, `0 ≤ ε2 ≤ ε2max`. Pontryagin's maximum principle
//! yields the co-state system (Eqs. (15)–(16)), the transversality
//! conditions `ψ_i(tf) = 0, φ_i(tf) = 1`, and the stationary controls
//! (Eqs. (18)–(19)):
//!
//! ```text
//! ε1(t) = clamp( Σ ψ_i S_i / (2 c1 Σ S_i²), 0, ε1max )
//! ε2(t) = clamp( Σ φ_i I_i / (2 c2 Σ I_i²), 0, ε2max )
//! ```
//!
//! This crate realizes that analysis numerically:
//!
//! * [`schedule::PiecewiseControl`] — grid-sampled control signals that
//!   plug into the core model as a
//!   [`rumor_core::control::ControlSchedule`].
//! * [`cost`] — evaluation of `J` along simulated trajectories.
//! * [`costate`] — the adjoint ODE system integrated backward in time.
//! * [`fbsm`] — the forward–backward sweep method (FBSM) that alternates
//!   state/co-state integrations until the control converges.
//! * [`heuristic`] — the myopic feedback baseline of Fig. 4(c), which
//!   reacts only to the current infection level.
//! * [`watchdog`] — guarded execution of the sweep: divergence
//!   classification, restart backoff with reduced relaxation, and
//!   graceful degradation to the heuristic controller.
//! * [`checkpoint`] — a versioned byte encoding of a schedule, used by
//!   the durable-jobs layer to warm-start sweep campaigns across
//!   process restarts.
//!
//! Note on Eq. (16): the paper writes the `Θ`-coupling of the adjoint
//! with per-class terms `ψ_i λ_i S_i`; differentiating the Hamiltonian
//! exactly gives the *network-coupled* form
//! `(ϕ_j/⟨k⟩) Σ_i (ψ_i − φ_i) λ_i S_i`. We implement the exact adjoint
//! (see `costate`), which reproduces the paper's qualitative results;
//! DESIGN.md records the discrepancy.

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod checkpoint;
pub mod cost;
pub mod costate;
pub mod fbsm;
pub mod heuristic;
pub mod multi;
pub mod schedule;
pub mod watchdog;

mod error;

pub use error::ControlError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, ControlError>;

/// Box constraints on the two countermeasure channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlBounds {
    /// Upper bound `ε1max` on the truth-spreading rate.
    pub eps1_max: f64,
    /// Upper bound `ε2max` on the rumor-blocking rate.
    pub eps2_max: f64,
}

impl ControlBounds {
    /// Creates bounds, validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] if either bound is not
    /// positive and finite.
    pub fn new(eps1_max: f64, eps2_max: f64) -> Result<Self> {
        if !(eps1_max > 0.0) || !eps1_max.is_finite() || !(eps2_max > 0.0) || !eps2_max.is_finite()
        {
            return Err(ControlError::InvalidConfig(format!(
                "control bounds must be positive and finite, got ({eps1_max}, {eps2_max})"
            )));
        }
        Ok(ControlBounds { eps1_max, eps2_max })
    }
}

/// Unit costs `(c1, c2)` of the two countermeasures (paper: spreading
/// truth is cheaper than blocking, `c1 = 5 < c2 = 10`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Unit cost `c1` of spreading truth.
    pub c1: f64,
    /// Unit cost `c2` of blocking rumors.
    pub c2: f64,
}

impl CostWeights {
    /// Creates weights, validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] if either weight is not
    /// positive and finite.
    pub fn new(c1: f64, c2: f64) -> Result<Self> {
        if !(c1 > 0.0) || !c1.is_finite() || !(c2 > 0.0) || !c2.is_finite() {
            return Err(ControlError::InvalidConfig(format!(
                "cost weights must be positive and finite, got ({c1}, {c2})"
            )));
        }
        Ok(CostWeights { c1, c2 })
    }

    /// The paper's Fig. 4 setting: `c1 = 5, c2 = 10`.
    pub fn paper_default() -> Self {
        CostWeights { c1: 5.0, c2: 10.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_validation() {
        assert!(ControlBounds::new(0.5, 0.5).is_ok());
        assert!(ControlBounds::new(0.0, 0.5).is_err());
        assert!(ControlBounds::new(0.5, -1.0).is_err());
        assert!(ControlBounds::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn weights_validation_and_default() {
        assert!(CostWeights::new(1.0, 2.0).is_ok());
        assert!(CostWeights::new(0.0, 2.0).is_err());
        let w = CostWeights::paper_default();
        assert_eq!(w.c1, 5.0);
        assert_eq!(w.c2, 10.0);
    }
}
