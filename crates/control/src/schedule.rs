//! Grid-sampled control schedules.

use crate::{ControlBounds, ControlError, Result};
use rumor_core::control::ControlSchedule;
use rumor_numerics::interp::LinearInterp;

/// A pair of piecewise-linear control signals `(ε1(t), ε2(t))` on a
/// shared time grid, with constant extrapolation outside the grid.
///
/// This is the representation the forward–backward sweep iterates on,
/// and the form in which optimized countermeasures are returned to
/// callers (and printed by the Fig. 4(a) harness).
///
/// # Example
///
/// ```
/// use rumor_control::schedule::PiecewiseControl;
/// use rumor_core::control::ControlSchedule;
///
/// # fn main() -> Result<(), rumor_control::ControlError> {
/// let pc = PiecewiseControl::from_values(
///     vec![0.0, 1.0, 2.0],
///     vec![0.4, 0.2, 0.0],
///     vec![0.0, 0.1, 0.2],
/// )?;
/// assert!((pc.eps1(0.5) - 0.3).abs() < 1e-12);
/// assert!((pc.eps2(1.5) - 0.15).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseControl {
    eps1: LinearInterp,
    eps2: LinearInterp,
}

impl PiecewiseControl {
    /// Creates a schedule from a grid and per-node values.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] if the grid is not
    /// strictly increasing, lengths mismatch, or any value is negative
    /// or non-finite.
    pub fn from_values(grid: Vec<f64>, eps1: Vec<f64>, eps2: Vec<f64>) -> Result<Self> {
        for (name, v) in [("eps1", &eps1), ("eps2", &eps2)] {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(ControlError::InvalidConfig(format!(
                    "{name} values must be non-negative and finite"
                )));
            }
        }
        let eps1 = LinearInterp::new(grid.clone(), eps1)
            .map_err(|e| ControlError::InvalidConfig(e.to_string()))?;
        let eps2 = LinearInterp::new(grid, eps2)
            .map_err(|e| ControlError::InvalidConfig(e.to_string()))?;
        Ok(PiecewiseControl { eps1, eps2 })
    }

    /// Creates a constant schedule on a uniform grid over `[0, tf]`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] for non-positive `tf`,
    /// fewer than two nodes, or negative rates.
    pub fn constant(tf: f64, n_nodes: usize, eps1: f64, eps2: f64) -> Result<Self> {
        if !(tf > 0.0) || !tf.is_finite() || n_nodes < 2 {
            return Err(ControlError::InvalidConfig(format!(
                "need finite tf > 0 and at least two nodes, got tf = {tf}, nodes = {n_nodes}"
            )));
        }
        let grid: Vec<f64> = (0..n_nodes)
            .map(|i| tf * i as f64 / (n_nodes - 1) as f64)
            .collect();
        Self::from_values(grid, vec![eps1; n_nodes], vec![eps2; n_nodes])
    }

    /// The shared time grid.
    pub fn grid(&self) -> &[f64] {
        self.eps1.xs()
    }

    /// The `ε1` node values.
    pub fn eps1_values(&self) -> &[f64] {
        self.eps1.ys()
    }

    /// The `ε2` node values.
    pub fn eps2_values(&self) -> &[f64] {
        self.eps2.ys()
    }

    /// Replaces both value vectors (grid unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] on length mismatch or
    /// invalid values.
    pub fn set_values(&mut self, eps1: Vec<f64>, eps2: Vec<f64>) -> Result<()> {
        for (name, v) in [("eps1", &eps1), ("eps2", &eps2)] {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(ControlError::InvalidConfig(format!(
                    "{name} values must be non-negative and finite"
                )));
            }
        }
        self.eps1
            .set_ys(eps1)
            .map_err(|e| ControlError::InvalidConfig(e.to_string()))?;
        self.eps2
            .set_ys(eps2)
            .map_err(|e| ControlError::InvalidConfig(e.to_string()))?;
        Ok(())
    }

    /// Clamps every node value into `[0, bound]` per channel.
    pub fn clamp_to(&mut self, bounds: &ControlBounds) {
        let e1: Vec<f64> = self
            .eps1
            .ys()
            .iter()
            .map(|&v| v.clamp(0.0, bounds.eps1_max))
            .collect();
        let e2: Vec<f64> = self
            .eps2
            .ys()
            .iter()
            .map(|&v| v.clamp(0.0, bounds.eps2_max))
            .collect();
        self.eps1.set_ys(e1).expect("same length");
        self.eps2.set_ys(e2).expect("same length");
    }

    /// Maximum relative node-wise difference to another schedule on the
    /// same grid (the FBSM convergence metric).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] if the grids differ.
    pub fn relative_change(&self, other: &PiecewiseControl) -> Result<f64> {
        if self.grid() != other.grid() {
            return Err(ControlError::InvalidConfig(
                "schedules live on different grids".into(),
            ));
        }
        let mut change: f64 = 0.0;
        for (a, b) in self
            .eps1
            .ys()
            .iter()
            .chain(self.eps2.ys())
            .zip(other.eps1.ys().iter().chain(other.eps2.ys()))
        {
            change = change.max((a - b).abs() / b.abs().max(1e-3));
        }
        Ok(change)
    }
}

impl ControlSchedule for PiecewiseControl {
    fn eps1(&self, t: f64) -> f64 {
        self.eps1.eval(t)
    }

    fn eps2(&self, t: f64) -> f64 {
        self.eps2.eval(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_everywhere() {
        let pc = PiecewiseControl::constant(10.0, 11, 0.3, 0.1).unwrap();
        for t in [0.0, 3.7, 10.0, 99.0, -5.0] {
            assert_eq!(pc.eps1(t), 0.3);
            assert_eq!(pc.eps2(t), 0.1);
        }
        assert_eq!(pc.grid().len(), 11);
    }

    #[test]
    fn from_values_interpolates() {
        let pc =
            PiecewiseControl::from_values(vec![0.0, 2.0], vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert!((pc.eps1(1.0) - 0.5).abs() < 1e-12);
        assert!((pc.eps2(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(PiecewiseControl::from_values(vec![0.0], vec![0.1], vec![0.1]).is_err());
        assert!(
            PiecewiseControl::from_values(vec![0.0, 1.0], vec![-0.1, 0.0], vec![0.0, 0.0]).is_err()
        );
        assert!(
            PiecewiseControl::from_values(vec![0.0, 1.0], vec![f64::NAN, 0.0], vec![0.0, 0.0])
                .is_err()
        );
        assert!(PiecewiseControl::constant(0.0, 5, 0.1, 0.1).is_err());
        assert!(PiecewiseControl::constant(1.0, 1, 0.1, 0.1).is_err());
    }

    #[test]
    fn set_values_and_clamp() {
        let mut pc = PiecewiseControl::constant(1.0, 3, 0.0, 0.0).unwrap();
        pc.set_values(vec![0.9, 0.5, 0.1], vec![0.2, 0.3, 0.4])
            .unwrap();
        let bounds = ControlBounds::new(0.6, 0.25).unwrap();
        pc.clamp_to(&bounds);
        assert_eq!(pc.eps1_values(), &[0.6, 0.5, 0.1]);
        assert_eq!(pc.eps2_values(), &[0.2, 0.25, 0.25]);
        assert!(pc.set_values(vec![0.1], vec![0.1]).is_err());
    }

    #[test]
    fn relative_change_metric() {
        let a = PiecewiseControl::constant(1.0, 3, 0.2, 0.2).unwrap();
        let mut b = a.clone();
        assert_eq!(a.relative_change(&b).unwrap(), 0.0);
        b.set_values(vec![0.2, 0.2, 0.2], vec![0.2, 0.2, 0.4])
            .unwrap();
        assert!((a.relative_change(&b).unwrap() - 0.5).abs() < 1e-12);
        let c = PiecewiseControl::constant(2.0, 3, 0.2, 0.2).unwrap();
        assert!(a.relative_change(&c).is_err());
    }
}
