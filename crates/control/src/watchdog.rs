//! FBSM watchdog: divergence classification, restart backoff, and
//! graceful degradation.
//!
//! The forward–backward sweep is the numerically fragile heart of the
//! optimized-countermeasure pipeline: near `r0 ≈ 1` the forward and
//! backward passes become stiff, and an aggressive relaxation weight can
//! make the control update oscillate or blow up. A plain
//! [`optimize`](crate::fbsm::optimize) call turns any of that into a
//! hard error, which is the wrong behavior for a sweep over thousands of
//! parameter sets. [`optimize_guarded`] instead:
//!
//! 1. runs the instrumented sweep
//!    ([`optimize_monitored`]), which
//!    checkpoints the best-so-far control internally;
//! 2. on failure, **classifies** the divergence — [`DivergenceKind::Oscillation`],
//!    [`DivergenceKind::BlowUp`], or [`DivergenceKind::Stall`] — from the
//!    change and cost histories;
//! 3. **restarts with reduced relaxation** (and, after an integration
//!    blow-up, with the guarded ODE fallback chain engaged), up to a
//!    bounded restart budget;
//! 4. when every retry is exhausted, **degrades gracefully**: the best
//!    non-converged checkpoint or the myopic heuristic controller is
//!    returned with `degraded = true` and `converged = false` — never a
//!    panic, and an error only for caller bugs (invalid configuration,
//!    dimension mismatches) or when even the heuristic cannot run.

use crate::fbsm::{optimize_monitored, FbsmOptions, SweepResult};
use crate::heuristic::{self, HeuristicPolicy};
use crate::{ControlBounds, ControlError, CostWeights, Result};
use rumor_core::params::ModelParams;
use rumor_core::state::NetworkState;
use rumor_ode::recovery::RecoveryPolicy;
use rumor_ode::OdeError;

/// How a sweep failed, inferred from its iteration telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The control change bounces up and down without contracting —
    /// the classic FBSM failure mode of an overly aggressive relaxation.
    Oscillation,
    /// The change or cost grew without bound (or went non-finite), or an
    /// integration pass failed outright.
    BlowUp,
    /// The change plateaued above tolerance: the iteration still moves
    /// but no longer makes progress.
    Stall,
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceKind::Oscillation => write!(f, "oscillation"),
            DivergenceKind::BlowUp => write!(f, "blow-up"),
            DivergenceKind::Stall => write!(f, "stall"),
        }
    }
}

/// Classifies a non-converged sweep from its per-iteration relative
/// control changes and diagnostic costs.
///
/// Deterministic rules, checked in order: any non-finite entry or a
/// change that grew by more than 10× over the run is a
/// [`DivergenceKind::BlowUp`]; a change series whose direction flips on
/// at least half of the possible turns is an
/// [`DivergenceKind::Oscillation`]; everything else is a
/// [`DivergenceKind::Stall`].
pub fn classify_divergence(changes: &[f64], costs: &[f64]) -> DivergenceKind {
    if changes.iter().chain(costs).any(|v| !v.is_finite()) {
        return DivergenceKind::BlowUp;
    }
    if let (Some(first), Some(last)) = (changes.first(), changes.last()) {
        if *last > 10.0 * *first {
            return DivergenceKind::BlowUp;
        }
    }
    if changes.len() >= 3 {
        let diffs: Vec<f64> = changes.windows(2).map(|w| w[1] - w[0]).collect();
        let turns = diffs.windows(2).filter(|w| w[0] * w[1] < 0.0).count();
        let opportunities = diffs.len().saturating_sub(1);
        if opportunities > 0 && 2 * turns >= opportunities {
            return DivergenceKind::Oscillation;
        }
    }
    DivergenceKind::Stall
}

/// Tuning knobs of the watchdog.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogOptions {
    /// The sweep configuration of the first attempt.
    pub fbsm: FbsmOptions,
    /// Restarts allowed after the initial attempt.
    pub max_restarts: usize,
    /// Factor applied to the relaxation weight on each restart
    /// (`δ ← shrink·δ`), in `(0, 1)`.
    pub relaxation_shrink: f64,
    /// After an integration blow-up, engage the guarded ODE fallback
    /// chain ([`RecoveryPolicy`]) on subsequent attempts.
    pub guard_ode_on_retry: bool,
    /// Shared proportional gain of the heuristic fallback controller
    /// used when every retry is exhausted.
    pub fallback_gain: f64,
}

impl Default for WatchdogOptions {
    fn default() -> Self {
        WatchdogOptions {
            fbsm: FbsmOptions::default(),
            max_restarts: 3,
            relaxation_shrink: 0.5,
            guard_ode_on_retry: true,
            fallback_gain: 5.0,
        }
    }
}

impl WatchdogOptions {
    /// Validates every field up front.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] naming the offending
    /// field (including nested [`FbsmOptions`] problems).
    pub fn validate(&self) -> Result<()> {
        self.fbsm.validate()?;
        if !(self.relaxation_shrink > 0.0 && self.relaxation_shrink < 1.0) {
            return Err(ControlError::InvalidConfig(format!(
                "relaxation_shrink: must lie in (0, 1), got {}",
                self.relaxation_shrink
            )));
        }
        if !(self.fallback_gain > 0.0) || !self.fallback_gain.is_finite() {
            return Err(ControlError::InvalidConfig(format!(
                "fallback_gain: must be positive and finite, got {}",
                self.fallback_gain
            )));
        }
        Ok(())
    }
}

/// One failed attempt: what diverged, how, and with which settings.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartEvent {
    /// Zero-based attempt index.
    pub attempt: usize,
    /// Relaxation weight the attempt ran with.
    pub relaxation: f64,
    /// Whether the attempt integrated under the guarded fallback chain.
    pub guarded_ode: bool,
    /// The inferred failure mode.
    pub divergence: DivergenceKind,
    /// Human-readable detail (iterations, last change, or the
    /// integration error).
    pub detail: String,
}

/// Which solver produced the returned schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepSource {
    /// The forward–backward sweep (possibly a best-so-far checkpoint).
    Fbsm,
    /// The myopic heuristic feedback controller (last-resort fallback).
    HeuristicFallback,
}

/// Outcome of a guarded optimization: always a usable schedule, plus a
/// faithful account of what the watchdog had to do to obtain it.
#[derive(Debug, Clone)]
pub struct GuardedSweep {
    /// The schedule, trajectory, and cost actually returned.
    pub result: SweepResult,
    /// Which solver produced it.
    pub source: SweepSource,
    /// One entry per failed attempt, in order.
    pub restarts: Vec<RestartEvent>,
    /// `true` when the result is not a converged sweep: either a
    /// best-so-far checkpoint of a non-converged sweep or the heuristic
    /// fallback. Strict callers treat this as an error.
    pub degraded: bool,
}

impl GuardedSweep {
    /// One-line human-readable summary for logs and CLI output.
    pub fn summary(&self) -> String {
        match (self.degraded, self.source, self.restarts.len()) {
            (false, _, 0) => "sweep converged on the first attempt".to_string(),
            (false, _, n) => format!("sweep converged after {n} restart(s)"),
            (true, SweepSource::Fbsm, n) => {
                format!("DEGRADED: best-so-far FBSM checkpoint after {n} failed attempt(s)")
            }
            (true, SweepSource::HeuristicFallback, n) => {
                format!("DEGRADED: heuristic fallback controller after {n} failed attempt(s)")
            }
        }
    }
}

/// Is this integration failure worth a restart (as opposed to a caller
/// bug such as a dimension mismatch or an invalid configuration)?
fn ode_recoverable(e: &OdeError) -> bool {
    matches!(
        e,
        OdeError::NonFiniteState { .. }
            | OdeError::StepSizeUnderflow { .. }
            | OdeError::TooManySteps { .. }
            | OdeError::NewtonFailed { .. }
            | OdeError::RecoveryExhausted { .. }
            | OdeError::Numerics(_)
    )
}

/// Extracts the underlying [`OdeError`] of a sweep failure, whether it
/// surfaced through the control layer or the core simulation layer.
fn as_ode_error(e: &ControlError) -> Option<&OdeError> {
    match e {
        ControlError::Ode(ode) => Some(ode),
        ControlError::Core(rumor_core::CoreError::Ode(ode)) => Some(ode),
        _ => None,
    }
}

/// Runs the forward–backward sweep under the watchdog.
///
/// Unlike [`optimize`](crate::fbsm::optimize), this never fails because
/// of divergence: it restarts with reduced relaxation (engaging the
/// guarded ODE fallback chain after a blow-up) and, once the restart
/// budget is exhausted, returns the best non-converged checkpoint or the
/// heuristic fallback controller with `degraded = true`.
///
/// # Errors
///
/// * [`ControlError::InvalidConfig`] for bad options or mismatched
///   dimensions — caller bugs are never retried.
/// * Non-recoverable integration errors (e.g. an invalid ODE
///   configuration).
/// * Any error from the heuristic fallback itself, if it comes to that.
pub fn optimize_guarded(
    params: &ModelParams,
    initial: &NetworkState,
    tf: f64,
    bounds: &ControlBounds,
    weights: &CostWeights,
    options: &WatchdogOptions,
) -> Result<GuardedSweep> {
    options.validate()?;
    let mut wd_span = rumor_obs::span("control.watchdog");
    let mut restarts = Vec::new();
    let mut best: Option<SweepResult> = None;
    let mut relaxation = options.fbsm.relaxation;
    let mut guard_ode = options.fbsm.guard_ode.clone();

    for attempt in 0..=options.max_restarts {
        let opts = FbsmOptions {
            relaxation,
            relaxation_floor: options.fbsm.relaxation_floor.min(relaxation),
            guard_ode: guard_ode.clone(),
            ..options.fbsm.clone()
        };
        match optimize_monitored(params, initial, tf, bounds, weights, &opts) {
            Ok(result) if result.converged => {
                if wd_span.active() {
                    wd_span.field("restarts", restarts.len());
                    wd_span.field("degraded", false);
                }
                return Ok(GuardedSweep {
                    result,
                    source: SweepSource::Fbsm,
                    restarts,
                    degraded: false,
                });
            }
            Ok(result) => {
                let divergence = classify_divergence(&result.change_history, &result.cost_history);
                rumor_obs::event(
                    "control.watchdog_restart",
                    &[
                        ("attempt", attempt.into()),
                        ("kind", divergence.to_string().into()),
                    ],
                );
                rumor_obs::add("control.watchdog_restarts", 1);
                restarts.push(RestartEvent {
                    attempt,
                    relaxation,
                    guarded_ode: opts.guard_ode.is_some(),
                    divergence,
                    detail: format!(
                        "no convergence after {} iteration(s), last change {:.3e}",
                        result.iterations,
                        result.change_history.last().copied().unwrap_or(f64::NAN)
                    ),
                });
                let total = result.cost.total();
                if total.is_finite() && best.as_ref().is_none_or(|b| total < b.cost.total()) {
                    best = Some(result);
                }
            }
            Err(e) if as_ode_error(&e).is_some_and(ode_recoverable) => {
                rumor_obs::event(
                    "control.watchdog_restart",
                    &[
                        ("attempt", attempt.into()),
                        ("kind", DivergenceKind::BlowUp.to_string().into()),
                    ],
                );
                rumor_obs::add("control.watchdog_restarts", 1);
                restarts.push(RestartEvent {
                    attempt,
                    relaxation,
                    guarded_ode: opts.guard_ode.is_some(),
                    divergence: DivergenceKind::BlowUp,
                    detail: format!("integration failed: {e}"),
                });
                if options.guard_ode_on_retry {
                    guard_ode.get_or_insert_with(RecoveryPolicy::default);
                }
            }
            Err(e) => return Err(e),
        }
        relaxation = (relaxation * options.relaxation_shrink).max(1e-3);
    }

    // Retry budget exhausted: degrade. Prefer the best checkpoint a
    // sweep produced; fall back to the myopic heuristic controller when
    // no attempt got far enough to leave one.
    if wd_span.active() {
        wd_span.field("restarts", restarts.len());
        wd_span.field("degraded", true);
    }
    rumor_obs::add("control.watchdog_degraded", 1);
    if let Some(result) = best {
        return Ok(GuardedSweep {
            result,
            source: SweepSource::Fbsm,
            restarts,
            degraded: true,
        });
    }
    let fallback = heuristic::run(
        params,
        initial,
        tf,
        HeuristicPolicy {
            gain1: options.fallback_gain,
            gain2: options.fallback_gain,
            bounds: *bounds,
        },
        weights,
        options.fbsm.n_nodes,
    )?;
    let final_relaxation = relaxation;
    Ok(GuardedSweep {
        result: SweepResult {
            control: fallback.control,
            trajectory: fallback.trajectory,
            cost: fallback.cost,
            iterations: 0,
            converged: false,
            cost_history: Vec::new(),
            change_history: Vec::new(),
            relaxation_backoffs: 0,
            final_relaxation,
            restored_checkpoint: false,
        },
        source: SweepSource::HeuristicFallback,
        restarts,
        degraded: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;
    use rumor_ode::integrator::AdaptiveConfig;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.002)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    fn quick_fbsm() -> FbsmOptions {
        FbsmOptions {
            n_nodes: 51,
            max_iterations: 80,
            tolerance: 1e-4,
            relaxation: 0.5,
            ode: AdaptiveConfig {
                rtol: 1e-6,
                atol: 1e-8,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn classification_rules() {
        // Non-finite anywhere: blow-up.
        assert_eq!(
            classify_divergence(&[0.1, f64::NAN], &[1.0]),
            DivergenceKind::BlowUp
        );
        assert_eq!(
            classify_divergence(&[0.1, 0.2], &[f64::INFINITY]),
            DivergenceKind::BlowUp
        );
        // Strong growth: blow-up.
        assert_eq!(
            classify_divergence(&[0.01, 0.05, 0.3], &[1.0, 2.0, 3.0]),
            DivergenceKind::BlowUp
        );
        // Alternating changes: oscillation.
        assert_eq!(
            classify_divergence(&[0.2, 0.1, 0.2, 0.1, 0.2], &[1.0; 5]),
            DivergenceKind::Oscillation
        );
        // Flat above tolerance: stall.
        assert_eq!(
            classify_divergence(&[0.1, 0.1, 0.1, 0.1], &[1.0; 4]),
            DivergenceKind::Stall
        );
        // Too little data for a verdict: stall.
        assert_eq!(classify_divergence(&[], &[]), DivergenceKind::Stall);
    }

    #[test]
    fn healthy_sweep_is_untouched() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = WatchdogOptions {
            fbsm: quick_fbsm(),
            ..Default::default()
        };
        let g = optimize_guarded(&p, &init, 20.0, &bounds, &w, &opts).unwrap();
        assert!(!g.degraded);
        assert!(g.result.converged);
        assert_eq!(g.source, SweepSource::Fbsm);
        assert!(g.restarts.is_empty());
        assert!(g.summary().contains("first attempt"));
    }

    #[test]
    fn nonconverging_sweep_degrades_to_checkpoint() {
        // One iteration against a tolerance no sweep can meet: every
        // attempt ends non-converged, and the watchdog hands back the
        // best checkpoint, flagged.
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = WatchdogOptions {
            fbsm: FbsmOptions {
                max_iterations: 1,
                tolerance: 1e-14,
                ..quick_fbsm()
            },
            max_restarts: 2,
            ..Default::default()
        };
        let g = optimize_guarded(&p, &init, 20.0, &bounds, &w, &opts).unwrap();
        assert!(g.degraded);
        assert!(!g.result.converged);
        assert_eq!(g.source, SweepSource::Fbsm);
        assert_eq!(g.restarts.len(), 3, "initial attempt + 2 restarts");
        assert!(g.result.cost.total().is_finite());
        // Relaxation must actually back off between attempts.
        assert!(g.restarts[1].relaxation < g.restarts[0].relaxation);
        assert!(g.summary().contains("DEGRADED"));
    }

    #[test]
    fn forced_ode_failure_degrades_to_heuristic() {
        // A 2-step budget kills every forward pass before the first
        // iteration completes, so no checkpoint ever exists; with the
        // guarded retry disabled, the watchdog must fall back to the
        // heuristic controller — flagged, not an error, never a panic.
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = WatchdogOptions {
            fbsm: FbsmOptions {
                ode: AdaptiveConfig {
                    max_steps: 2,
                    ..Default::default()
                },
                ..quick_fbsm()
            },
            max_restarts: 1,
            guard_ode_on_retry: false,
            ..Default::default()
        };
        let g = optimize_guarded(&p, &init, 20.0, &bounds, &w, &opts).unwrap();
        assert!(g.degraded);
        assert!(!g.result.converged);
        assert_eq!(g.source, SweepSource::HeuristicFallback);
        assert_eq!(g.restarts.len(), 2);
        assert!(g
            .restarts
            .iter()
            .all(|r| r.divergence == DivergenceKind::BlowUp));
        assert!(g.result.cost.total().is_finite());
        assert!(g.summary().contains("heuristic"));
    }

    #[test]
    fn guarded_ode_retry_rescues_step_starved_sweep() {
        // Same starved step budget, but with the guarded retry enabled
        // the second attempt integrates under the fallback chain and the
        // sweep completes (converged or at worst checkpointed) instead
        // of losing every attempt to the integrator.
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = WatchdogOptions {
            fbsm: FbsmOptions {
                ode: AdaptiveConfig {
                    max_steps: 40,
                    ..Default::default()
                },
                ..quick_fbsm()
            },
            max_restarts: 2,
            guard_ode_on_retry: true,
            ..Default::default()
        };
        let g = optimize_guarded(&p, &init, 20.0, &bounds, &w, &opts).unwrap();
        // The first attempt fails on the raw integrator…
        assert!(!g.restarts.is_empty());
        assert_eq!(g.restarts[0].divergence, DivergenceKind::BlowUp);
        // …and a later attempt runs guarded.
        assert!(g.restarts.len() < 2 || g.restarts[1].guarded_ode);
        assert_ne!(g.source, SweepSource::HeuristicFallback);
        assert!(g.result.cost.total().is_finite());
    }

    #[test]
    fn caller_bugs_are_not_retried() {
        let p = params();
        let bad_init = NetworkState::initial_uniform(2, 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        let opts = WatchdogOptions::default();
        let r = optimize_guarded(&p, &bad_init, 20.0, &bounds, &w, &opts);
        assert!(matches!(r, Err(ControlError::InvalidConfig(_))));
    }

    #[test]
    fn invalid_watchdog_options_rejected() {
        let p = params();
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).unwrap();
        let bounds = ControlBounds::new(0.6, 0.6).unwrap();
        let w = CostWeights::paper_default();
        for opts in [
            WatchdogOptions {
                relaxation_shrink: 1.0,
                ..Default::default()
            },
            WatchdogOptions {
                fallback_gain: f64::NAN,
                ..Default::default()
            },
            WatchdogOptions {
                fbsm: FbsmOptions {
                    relaxation_floor: 0.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        ] {
            assert!(optimize_guarded(&p, &init, 10.0, &bounds, &w, &opts).is_err());
        }
    }
}
