//! Persistent worker pool for deterministic *intra*-replica parallelism.
//!
//! [`par_map_indexed`](crate::par_map_indexed) spawns scoped threads per
//! call, which is fine for replica-level fan-out (one spawn per ensemble)
//! but far too slow for the ODE inner loop, where a single 848-class RHS
//! evaluation takes on the order of a microsecond and is evaluated tens
//! of thousands of times per sweep. [`InnerPool`] keeps its workers alive
//! across dispatches: publishing a job is one mutex acquisition plus an
//! atomic epoch bump, workers claim tasks through an atomic cursor, and
//! between dispatches they spin briefly before parking on a condvar so a
//! hot solver loop never pays a futex round-trip per step.
//!
//! # Determinism contract
//!
//! The pool itself never combines results — it only runs `f(task)` for
//! each task index exactly once, on *some* thread. Callers obtain
//! determinism by (a) deriving task boundaries from the problem size
//! alone (see [`chunk_count`]/[`chunk_bounds`]: boundaries never depend
//! on the thread count) and (b) writing each task's result into its own
//! slot ([`InnerPool::map_into`]) and folding the slots in task order on
//! the calling thread. Every floating-point association is therefore
//! fixed by the chunk plan, not by scheduling, and a pool of 1, 2, 4 or
//! 8 threads produces bit-identical results — the same contract the
//! replica-level executor has carried since PR 2.
//!
//! # Safety
//!
//! This module contains the crate's only `unsafe` code, in three audited
//! places:
//!
//! 1. **Lifetime erasure of the job closure.** A persistent pool cannot
//!    receive a borrowed closure through safe channels (that would
//!    require `'static`), so [`InnerPool::run`] erases `&F` to a raw
//!    pointer plus a monomorphized call thunk. Soundness: the closure
//!    outlives the dispatch because `run` blocks until the job's
//!    `remaining` counter reaches zero, every dereference happens only
//!    after a successful cursor claim `t < n_tasks`, and exactly
//!    `n_tasks` claims ever succeed (the cursor is monotonic, and each
//!    dispatch gets a fresh `JobState` behind an `Arc`, so a worker that
//!    wakes up late holds an *exhausted* job and can never claim — let
//!    alone dereference — anything).
//! 2. **`Send`/`Sync` for the erased job.** `run` requires
//!    `F: Fn(usize) + Sync`, so sharing `&F` across workers is exactly
//!    what the bound promises.
//! 3. **Disjoint slot writes** in [`InnerPool::map_into`] and the
//!    one-shot moves in [`InnerPool::scatter`]: each index is claimed
//!    exactly once, so each slot is written (or each item read) exactly
//!    once, and the caller's `Acquire` on the completion counter orders
//!    those writes before `run` returns.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Spin iterations before a waiting thread starts yielding; small enough
/// that an oversubscribed single-core host degrades to yields quickly,
/// large enough that a hot multi-core solver loop never parks between
/// consecutive RHS evaluations.
const SPIN_BUDGET: u32 = 2_048;
/// Yield iterations after the spin budget before a worker parks on the
/// condvar.
const YIELD_BUDGET: u32 = 64;

/// Number of fixed-size chunks covering `0..n`. The count depends only
/// on `n` and `chunk` — never on the thread count — which is what pins
/// the reduction tree across pool sizes.
pub const fn chunk_count(n: usize, chunk: usize) -> usize {
    assert!(chunk > 0);
    n.div_ceil(chunk)
}

/// Half-open bounds `[start, end)` of fixed-size chunk `idx` of `0..n`.
pub const fn chunk_bounds(n: usize, chunk: usize, idx: usize) -> (usize, usize) {
    let start = idx * chunk;
    let end = start + chunk;
    (start, if end < n { end } else { n })
}

/// One dispatched job: an erased closure plus claim/completion counters.
/// Fresh per dispatch (behind an `Arc`), so late-waking workers from a
/// previous epoch hold an exhausted job rather than racing the new one.
struct JobState {
    /// Erased `&F`; only dereferenced through `call` after a successful
    /// cursor claim, and `run` keeps `F` alive until all claims complete.
    data: *const (),
    call: unsafe fn(*const (), usize),
    n_tasks: usize,
    cursor: AtomicUsize,
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `data` is only produced from `&F` with `F: Fn(usize) + Sync`
// (enforced by `InnerPool::run`), so sharing it across worker threads is
// precisely the access pattern `Sync` licenses.
unsafe impl Send for JobState {}
unsafe impl Sync for JobState {}

impl JobState {
    /// Claims and executes tasks until the cursor is exhausted. Called by
    /// workers and by the dispatching thread itself; safe to call on an
    /// already-exhausted job (claims nothing).
    fn execute(&self) {
        loop {
            let t = self.cursor.fetch_add(1, Ordering::Relaxed);
            if t >= self.n_tasks {
                break;
            }
            // SAFETY: the claim succeeded, so the dispatching `run` has
            // not returned yet and the closure behind `data` is alive.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.data, t) }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // Release pairs with the dispatcher's Acquire so task writes
            // (e.g. `map_into` slots) are visible when `run` returns.
            self.remaining.fetch_sub(1, Ordering::Release);
        }
    }
}

/// The epoch-stamped job slot workers copy from under the mutex.
struct Slot {
    epoch: u64,
    job: Option<Arc<JobState>>,
}

struct Shared {
    /// Mirror of `Slot::epoch` for cheap lock-free change detection while
    /// spinning; the authoritative copy (and the job) live in `slot`.
    epoch: AtomicU64,
    slot: Mutex<Slot>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// A persistent worker pool for splitting *one* solve across cores. See
/// the module docs for the determinism contract and safety argument.
///
/// A pool of `threads <= 1` spawns no workers and runs every dispatch
/// inline on the calling thread, so serial and parallel callers share
/// one code path. The dispatching thread always participates in the
/// claim loop, so a pool of `t` threads applies `t` threads of compute
/// (`t - 1` workers plus the caller).
///
/// Dispatches are not intended to overlap; if two threads `run` on the
/// same pool concurrently the results are still correct (each caller
/// drains its own job to completion), merely slower.
pub struct InnerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for InnerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InnerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl InnerPool {
    /// Creates a pool applying up to `threads` threads per dispatch
    /// (clamped to `1..=256`). `threads <= 1` spawns nothing.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, 256);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("rumor-inner".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn inner-pool worker")
            })
            .collect();
        InnerPool {
            shared,
            workers,
            threads,
        }
    }

    /// The thread count this pool applies per dispatch (including the
    /// dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(t)` exactly once for every `t in 0..n_tasks`, on this
    /// thread and the pool's workers, returning once all tasks have
    /// completed. Task scheduling is dynamic; callers must not let
    /// execution order affect results (write per-task slots, fold on the
    /// caller — see the module docs).
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic on the calling thread, after all
    /// tasks have finished.
    pub fn run<F>(&self, n_tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n_tasks == 0 {
            return;
        }
        if self.workers.is_empty() || n_tasks == 1 {
            // Inline path: identical task boundaries, zero dispatch cost.
            for t in 0..n_tasks {
                f(t);
            }
            return;
        }
        /// Monomorphized call thunk recovering `&F` from the erased
        /// pointer.
        unsafe fn call_thunk<F: Fn(usize)>(data: *const (), t: usize) {
            // SAFETY: `data` was erased from `&F` in `run` below and is
            // alive for every successful claim (see module docs).
            unsafe { (*(data as *const F))(t) }
        }
        let job = Arc::new(JobState {
            data: (&raw const f).cast::<()>(),
            call: call_thunk::<F>,
            n_tasks,
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_tasks),
            panic: Mutex::new(None),
        });
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.epoch += 1;
            slot.job = Some(Arc::clone(&job));
            self.shared.epoch.store(slot.epoch, Ordering::Release);
            self.shared.cv.notify_all();
        }
        job.execute();
        // All tasks are claimed (our own execute drained the cursor), but
        // workers may still be finishing theirs; `f` must stay alive and
        // we must observe their writes before returning.
        let mut spins: u32 = 0;
        while job.remaining.load(Ordering::Acquire) != 0 {
            spins = spins.wrapping_add(1);
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Fills `out[t] = f(t)` for every index, one task per slot, and
    /// returns once all slots are written. Bit-for-bit equal to the
    /// serial loop for pure `f` at every pool size.
    pub fn map_into<T, F>(&self, out: &mut [T], f: F)
    where
        T: Copy + Send,
        F: Fn(usize) -> T + Sync,
    {
        struct OutPtr<T>(*mut T);
        // SAFETY: each task writes only its own slot (claims are unique),
        // so concurrent access through the shared pointer is disjoint.
        unsafe impl<T: Send> Sync for OutPtr<T> {}
        impl<T> OutPtr<T> {
            // Accessor so closures capture the `Sync` wrapper, not the
            // raw-pointer field (edition-2021 disjoint capture).
            fn get(&self) -> *mut T {
                self.0
            }
        }
        let n = out.len();
        let ptr = OutPtr(out.as_mut_ptr());
        self.run(n, |t| {
            let value = f(t);
            // SAFETY: `t < n` and each `t` is claimed exactly once.
            unsafe { ptr.get().add(t).write(value) };
        });
    }

    /// Moves each item into `f` exactly once (`f(t, items[t])`), letting
    /// tasks own mutable state (e.g. disjoint `&mut` sub-slices built by
    /// the caller) without any shared mutation.
    pub fn scatter<T, F>(&self, items: Vec<T>, f: F)
    where
        T: Send,
        F: Fn(usize, T) + Sync,
    {
        struct ItemsPtr<T>(*const T);
        // SAFETY: each item is read (moved out) exactly once by its
        // unique claimant.
        unsafe impl<T: Send> Sync for ItemsPtr<T> {}
        impl<T> ItemsPtr<T> {
            fn get(&self) -> *const T {
                self.0
            }
        }
        let mut items = items;
        let n = items.len();
        let base = ItemsPtr(items.as_ptr());
        // The tasks take ownership of the elements; keep only the raw
        // buffer for `items` to free. Every element is moved out because
        // `run` executes all `n` tasks even when some panic (a panicking
        // task consumed its item; unwinding drops it).
        // SAFETY: shrinking only; elements beyond len 0 are moved out by
        // the tasks below before anyone could observe them again.
        unsafe { items.set_len(0) };
        self.run(n, |t| {
            // SAFETY: unique claim of `t`; the element is still
            // initialized because only this task reads it.
            let item = unsafe { std::ptr::read(base.get().add(t)) };
            f(t, item);
        });
    }
}

impl Drop for InnerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_epoch = 0u64;
    loop {
        // Wait for a new epoch: spin, yield, then park.
        let mut spins: u32 = 0;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if shared.epoch.load(Ordering::Acquire) != last_epoch {
                break;
            }
            spins = spins.wrapping_add(1);
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else if spins < SPIN_BUDGET + YIELD_BUDGET {
                std::thread::yield_now();
            } else {
                let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
                while !shared.shutdown.load(Ordering::Acquire) && slot.epoch == last_epoch {
                    slot = shared.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
                break;
            }
        }
        let job = {
            let slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            last_epoch = slot.epoch;
            slot.job.clone()
        };
        if let Some(job) = job {
            job.execute();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn chunk_plan_depends_only_on_problem_size() {
        assert_eq!(chunk_count(0, 256), 0);
        assert_eq!(chunk_count(1, 256), 1);
        assert_eq!(chunk_count(256, 256), 1);
        assert_eq!(chunk_count(257, 256), 2);
        assert_eq!(chunk_count(848, 256), 4);
        assert_eq!(chunk_bounds(848, 256, 0), (0, 256));
        assert_eq!(chunk_bounds(848, 256, 3), (768, 848));
    }

    #[test]
    fn map_into_matches_serial_at_every_pool_size() {
        let expect: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = InnerPool::new(threads);
            let mut out = vec![0.0f64; 37];
            pool.map_into(&mut out, |i| (i as f64).sin());
            assert!(
                expect
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        // The hot-loop shape: thousands of small dispatches on one pool.
        let pool = InnerPool::new(4);
        let mut out = vec![0u64; 8];
        let mut total = 0u64;
        for round in 0..5_000u64 {
            pool.map_into(&mut out, |i| round.wrapping_mul(31) + i as u64);
            total = total.wrapping_add(out.iter().sum::<u64>());
        }
        let mut expect = 0u64;
        for round in 0..5_000u64 {
            for i in 0..8u64 {
                expect = expect.wrapping_add(round.wrapping_mul(31) + i);
            }
        }
        assert_eq!(total, expect);
    }

    #[test]
    fn scatter_moves_every_item_exactly_once() {
        let pool = InnerPool::new(4);
        let counter = AtomicU32::new(0);
        let items: Vec<Box<u32>> = (0..64).map(Box::new).collect();
        pool.scatter(items, |t, item| {
            assert_eq!(t as u32, *item);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scatter_hands_out_disjoint_mut_slices() {
        let pool = InnerPool::new(4);
        let mut data = vec![0u32; 1000];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(64).collect();
        pool.scatter(chunks, |t, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (t * 64 + k) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = InnerPool::new(4);
        let done = AtomicU32::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |t| {
                if t == 5 {
                    panic!("injected task fault");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(caught.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 15);
        // The pool survives a panicked dispatch.
        let mut out = vec![0u64; 4];
        pool.map_into(&mut out, |i| i as u64);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = InnerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0u64; 16];
        pool.map_into(&mut out, |i| i as u64 * 3);
        assert_eq!(out[15], 45);
    }
}
