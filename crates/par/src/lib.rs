//! Std-only parallel execution layer.
//!
//! Two executors, one determinism contract:
//!
//! - **Replica-level**: a chunked scoped-thread executor over
//!   [`std::thread::scope`] exposing [`par_map`] and [`par_map_indexed`]
//!   with **ordered, deterministic result collection** — results come
//!   back in input order regardless of which worker computed what or in
//!   which order workers finished. One spawn per call, which is cheap at
//!   ensemble granularity.
//! - **Intra-replica**: a persistent worker pool ([`InnerPool`]) for
//!   splitting a *single* solve (RHS/costate kernels, sharded ABM steps)
//!   across cores without paying thread-spawn per ODE step. Task
//!   boundaries are derived from the problem size alone and partial
//!   results are folded in task order on the caller, so every
//!   floating-point association is fixed by the chunk plan — a pool of
//!   1..N threads is bit-identical to serial.
//!
//! A run with `threads = 1` executes inline on the calling thread (no
//! spawn) in both executors, so serial and parallel callers share one
//! code path. The scoped-thread executor uses no `unsafe`; the only
//! `unsafe` in the crate is the audited lifetime-erasure inside
//! [`inner`] (see that module's safety notes).
//!
//! # Determinism contract
//!
//! `par_map_indexed(n, t, f)` returns exactly
//! `(0..n).map(f).collect::<Vec<_>>()` for every thread count `t`,
//! provided `f` is a pure function of its index. Work is handed out as
//! contiguous index chunks through an atomic cursor (dynamic load
//! balancing), each worker tags results with their index, and the main
//! thread reassembles the output by index — so scheduling order can
//! never leak into the result. Worker panics propagate to the caller.
//! [`InnerPool`] carries the same contract at sub-solve granularity (see
//! [`inner`]).
//!
//! # Thread-count resolution
//!
//! [`resolve_threads`] resolves the replica-level worker count from, in
//! order:
//!
//! 1. an explicit count passed by the caller (e.g. a `--threads` CLI
//!    flag),
//! 2. the process-wide override installed with [`set_thread_override`],
//! 3. the `RUMOR_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! [`resolve_inner_threads`] resolves the *intra*-replica count:
//! explicit argument, then [`set_inner_thread_override`], then
//! `RUMOR_INNER_THREADS`, then the whole [`resolve_threads`] chain. The
//! split policy is structural: ensembles fan out replicas and never
//! construct inner pools (outer parallelism keeps the budget), while
//! single solves (FBSM sweeps, one-off ABM runs) soak the full budget
//! intra-replica. Because pooled kernels are bit-identical to serial,
//! the split affects wall-clock only, never results.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod inner;

pub use inner::{chunk_bounds, chunk_count, InnerPool};

/// Process-wide thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or clears, with `None`) a process-wide worker-count
/// override, consulted by [`resolve_threads`] after an explicit argument
/// but before the `RUMOR_THREADS` environment variable. The CLI wires
/// its `--threads` flag through this.
///
/// A count of `Some(0)` is treated as `Some(1)`.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::Relaxed);
}

/// The currently installed override, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        t => Some(t),
    }
}

/// Resolves the worker count: explicit argument, then the
/// [`set_thread_override`] override, then `RUMOR_THREADS`, then
/// [`std::thread::available_parallelism`] (1 if unavailable). Always at
/// least 1; malformed or zero environment values are ignored.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit {
        return t.max(1);
    }
    if let Some(t) = thread_override() {
        return t;
    }
    if let Ok(raw) = std::env::var("RUMOR_THREADS") {
        if let Ok(t) = raw.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Process-wide intra-replica thread-count override; 0 means "unset".
static INNER_THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or clears, with `None`) a process-wide override for the
/// *intra*-replica thread count, consulted by [`resolve_inner_threads`]
/// after an explicit argument but before the `RUMOR_INNER_THREADS`
/// environment variable. The CLI wires its `--inner-threads` flag
/// through this.
///
/// A count of `Some(0)` is treated as `Some(1)`.
pub fn set_inner_thread_override(threads: Option<usize>) {
    INNER_THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::Relaxed);
}

/// The currently installed intra-replica override, if any.
pub fn inner_thread_override() -> Option<usize> {
    match INNER_THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        t => Some(t),
    }
}

/// Resolves the intra-replica thread count for a *single* solve:
/// explicit argument, then the [`set_inner_thread_override`] override,
/// then `RUMOR_INNER_THREADS`, then the whole [`resolve_threads`] chain
/// (`--threads`/`RUMOR_THREADS`/available parallelism). Single solves
/// therefore soak the full thread budget by default; ensembles keep the
/// budget at replica level by never constructing inner pools.
pub fn resolve_inner_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit {
        return t.max(1);
    }
    if let Some(t) = inner_thread_override() {
        return t;
    }
    if let Ok(raw) = std::env::var("RUMOR_INNER_THREADS") {
        if let Ok(t) = raw.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    resolve_threads(None)
}

/// Maps `f` over `0..n` with up to `threads` workers, returning results
/// in index order. See the crate docs for the determinism contract.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // Contiguous chunks through an atomic cursor: small enough to
    // balance uneven item costs, large enough to amortize the fetch.
    let chunk = (n / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            local.push((i, f(i)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => tagged.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Reassemble in index order: each index was claimed exactly once.
    tagged.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over `items` with up to `threads` workers, returning results
/// in input order. Equivalent to `items.iter().map(f).collect()` for
/// every thread count (for pure `f`).
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = par_map_indexed(0, 8, |i| i);
        assert!(empty.is_empty());
        assert_eq!(par_map_indexed(1, 8, |i| i * 2), vec![0]);
    }

    #[test]
    fn results_are_ordered_for_every_thread_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 8, 16, 97, 200] {
            assert_eq!(
                par_map_indexed(97, threads, |i| i * i),
                expect,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<f64> = (0..64).map(|i| i as f64 * 0.1).collect();
        let serial: Vec<f64> = items.iter().map(|x| x.sin()).collect();
        for threads in [1, 2, 4, 8] {
            let par = par_map(&items, threads, |x| x.sin());
            // Bit-identical, not merely approximately equal.
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Later indices are much cheaper: early-finishing workers steal.
        let out = par_map_indexed(40, 4, |i| {
            let spins = if i < 4 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (slot, (i, _)) in out.iter().enumerate() {
            assert_eq!(slot, *i);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(16, 4, |i| {
                if i == 7 {
                    panic!("injected worker fault");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn resolve_threads_precedence() {
        // Explicit always wins and is clamped to >= 1.
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        // Override beats the environment/default path.
        set_thread_override(Some(5));
        assert_eq!(thread_override(), Some(5));
        assert_eq!(resolve_threads(None), 5);
        assert_eq!(resolve_threads(Some(2)), 2);
        set_thread_override(Some(0));
        assert_eq!(thread_override(), Some(1));
        set_thread_override(None);
        assert_eq!(thread_override(), None);
        // Without an override, the result is >= 1 whatever the
        // environment says.
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn resolve_inner_threads_precedence() {
        // Explicit always wins and is clamped to >= 1.
        assert_eq!(resolve_inner_threads(Some(3)), 3);
        assert_eq!(resolve_inner_threads(Some(0)), 1);
        // The inner override beats the environment/outer-chain fallback.
        set_inner_thread_override(Some(6));
        assert_eq!(inner_thread_override(), Some(6));
        assert_eq!(resolve_inner_threads(None), 6);
        assert_eq!(resolve_inner_threads(Some(2)), 2);
        set_inner_thread_override(Some(0));
        assert_eq!(inner_thread_override(), Some(1));
        set_inner_thread_override(None);
        assert_eq!(inner_thread_override(), None);
        // Without an override the chain bottoms out at >= 1 whatever the
        // environment says.
        assert!(resolve_inner_threads(None) >= 1);
    }

    #[test]
    fn borrowed_captures_work_across_threads() {
        let base: Vec<u64> = (0..32).collect();
        let sum_serial: u64 = base.iter().map(|v| v + 1).sum();
        let out = par_map_indexed(base.len(), 4, |i| base[i] + 1);
        assert_eq!(out.iter().sum::<u64>(), sum_serial);
    }
}
