//! Regression pin for the small-tier FBSM bench configuration.
//!
//! The perfreport Fig. 4 sweep (workload 3) historically reported
//! `converged: false` at its 150-iteration cap: the relative control
//! change plateaus around 4e-3 in this setting. With backtracking
//! under-relaxation as the [`FbsmOptions`] default, warm-started
//! continuation rounds (each restart resets the relaxation weight,
//! breaking the plateau cycle) settle convergence in three rounds.
//! This test replicates the exact bench configuration and pins the
//! round/iteration counts so a regression in the default (or in the
//! sweep numerics) shows up as a test failure, not as a silently
//! non-converging benchmark.

use rumor_bench::{digg_dataset, fig4_params, Scale};
use rumor_control::fbsm::{optimize_monitored, FbsmOptions};
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::state::NetworkState;

#[test]
// ~3 minutes unoptimized vs ~5 s in release; CI runs it through the
// release test step. The pinned counts are identical in both profiles.
#[cfg_attr(debug_assertions, ignore = "slow unoptimized; run with --release")]
fn small_tier_bench_sweep_converges_under_warm_continuation() {
    let dataset = digg_dataset(Scale::Small);
    let params = fig4_params(&dataset);
    let bounds = ControlBounds::new(0.7, 0.7).expect("static bounds");
    let weights = CostWeights::paper_default();
    let initial =
        NetworkState::initial_uniform(params.n_classes(), 0.05).expect("static initial state");
    // Byte-for-byte the perfreport workload-3 configuration: everything
    // not listed here (notably `backtracking`) comes from the default,
    // which is exactly what this test guards.
    let options = FbsmOptions {
        n_nodes: 81,
        max_iterations: 150,
        tolerance: 1e-4,
        relaxation: 0.3,
        inner_threads: Some(1),
        ..Default::default()
    };
    assert!(
        options.backtracking,
        "backtracking under-relaxation must stay the FbsmOptions default"
    );

    let mut sweep = optimize_monitored(&params, &initial, 40.0, &bounds, &weights, &options)
        .expect("small-tier sweep");
    assert!(
        !sweep.converged,
        "the timed first sweep is iteration-capped"
    );
    assert_eq!(sweep.iterations, 150);

    let mut rounds = Vec::new();
    while !sweep.converged && rounds.len() < 5 {
        let warm = FbsmOptions {
            initial_control: Some(sweep.control.clone()),
            ..options.clone()
        };
        sweep = optimize_monitored(&params, &initial, 40.0, &bounds, &weights, &warm)
            .expect("continuation sweep");
        rounds.push(sweep.iterations);
    }

    assert!(
        sweep.converged,
        "small-tier continuation no longer converges: rounds {rounds:?}, last change {:?}",
        sweep.change_history.last()
    );
    let residual = sweep
        .change_history
        .last()
        .copied()
        .unwrap_or(f64::INFINITY);
    assert!(
        residual <= 1e-4,
        "final residual {residual} above tolerance"
    );
    // The whole chain is deterministic (fixed grid, fixed dataset seed,
    // pinned single-threaded kernels), so the counts are exact. Update
    // the pin deliberately when the numerics change.
    assert_eq!(rounds, vec![150, 150, 78]);
}
