//! Shared experiment configuration for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (Section V). This library pins the parameter sets
//! — including the calibrations documented in DESIGN.md §2 — so the
//! binaries, tests and EXPERIMENTS.md all describe the same experiments.
//!
//! | entry point | experiment |
//! |---|---|
//! | `table1`   | model-parameter glossary with Digg-calibrated values |
//! | `fig2`     | extinction regime, `r0 = 0.7220 < 1` (Dist0 + S/I/R curves) |
//! | `fig3`     | persistence regime, `r0 = 2.1661 > 1` (Dist+ + S/I/R curves) |
//! | `fig4`     | optimized countermeasures (schedule, r0 decline, cost sweep) |
//! | `ablation` | heterogeneity / infectivity / solver / ABM ablations |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumor_core::equilibrium::calibrate_acceptance;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_core::state::NetworkState;
use rumor_datasets::digg::{DiggConfig, DiggDataset};
use std::io::Write;
use std::path::PathBuf;

/// Scale of the synthetic Digg network used by an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~7k nodes, degree span [1, 300] — seconds per experiment.
    Small,
    /// The full 71,367-node Digg2009-equivalent network.
    Full,
}

impl Scale {
    /// Reads the scale from the `RUMOR_SCALE` environment variable
    /// (`full` → [`Scale::Full`], anything else → [`Scale::Small`]).
    pub fn from_env() -> Self {
        match std::env::var("RUMOR_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// The dataset configuration for this scale.
    pub fn config(self) -> DiggConfig {
        match self {
            Scale::Small => DiggConfig::small(),
            Scale::Full => DiggConfig::default(),
        }
    }
}

/// Synthesizes the Digg-equivalent dataset at the given scale.
///
/// # Panics
///
/// Panics on synthesis failure (experiment configurations are static and
/// known-good; a failure is a programming error).
pub fn digg_dataset(scale: Scale) -> DiggDataset {
    DiggDataset::synthesize(scale.config()).expect("digg dataset synthesis")
}

/// A fully specified constant-control experiment regime.
#[derive(Debug, Clone)]
pub struct Regime {
    /// Calibrated model parameters.
    pub params: ModelParams,
    /// Truth-spreading rate.
    pub eps1: f64,
    /// Blocking rate.
    pub eps2: f64,
    /// The threshold the regime was calibrated to.
    pub target_r0: f64,
}

/// The Fig. 2 extinction regime: `α = 0.01, ε1 = 0.2, ε2 = 0.05`,
/// `λ(k) = λ0·k` calibrated so `r0 = 0.7220` (paper Section V-A).
///
/// # Panics
///
/// Panics on calibration failure (static configuration).
pub fn fig2_regime(dataset: &DiggDataset) -> Regime {
    let base = ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("fig2 base params");
    let (eps1, eps2) = (0.2, 0.05);
    let (params, _) = calibrate_acceptance(&base, 0.7220, eps1, eps2).expect("fig2 calibration");
    Regime {
        params,
        eps1,
        eps2,
        target_r0: 0.7220,
    }
}

/// The Fig. 3 persistence regime: `α = 0.002, ε1 = 0.002`, calibrated so
/// `r0 = 2.1661`.
///
/// The paper prints `ε2 = 0.0001`, but `α/ε2 = 20` forces
/// `I⁺ = 20·(1 − S⁺)` per class — outside the density simplex for *any*
/// acceptance rate, and inconsistent with the paper's own Fig. 3
/// (`I ≤ 0.45`). We use `ε2 = 0.004`, which admits a valid endemic
/// equilibrium while preserving the printed threshold (DESIGN.md §2).
///
/// # Panics
///
/// Panics on calibration failure (static configuration).
pub fn fig3_regime(dataset: &DiggDataset) -> Regime {
    let base = ModelParams::builder(dataset.classes().clone())
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("fig3 base params");
    let (eps1, eps2) = (0.002, 0.004);
    let (params, _) = calibrate_acceptance(&base, 2.1661, eps1, eps2).expect("fig3 calibration");
    Regime {
        params,
        eps1,
        eps2,
        target_r0: 2.1661,
    }
}

/// The Fig. 4 optimal-control setting: an aggressive supercritical rumor
/// (`α = 0.01, λ(k) = 0.15·k`) with box bounds `ε ≤ 0.7` and the paper's
/// unit costs `c1 = 5, c2 = 10`.
///
/// # Panics
///
/// Panics on parameter-construction failure (static configuration).
pub fn fig4_params(dataset: &DiggDataset) -> ModelParams {
    ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.15 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("fig4 params")
}

/// The paper's 10 random initial conditions: per-class infected
/// fractions drawn uniformly from `(0, 0.5]`, `S = 1 − I`, `R = 0`,
/// deterministic given the experiment seed.
pub fn random_initial_conditions(n_classes: usize, count: usize, seed: u64) -> Vec<NetworkState> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let i: Vec<f64> = (0..n_classes).map(|_| rng.gen_range(0.005..0.5)).collect();
            NetworkState::initial_from_infected(i).expect("valid initial condition")
        })
        .collect()
}

/// Writes a CSV file under `results/`, creating the directory on demand.
///
/// # Panics
///
/// Panics on I/O failure (the harness treats an unwritable results
/// directory as fatal).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.8}")).collect();
        writeln!(f, "{}", line.join(",")).expect("write row");
    }
    path
}

/// The `results/` directory at the workspace root (or the current
/// directory when run elsewhere).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Selects `count` class indices spread evenly across `n` classes —
/// the harness analogue of the paper's "i = 1, 50, 100, …, 800" picks.
pub fn spread_classes(n: usize, count: usize) -> Vec<usize> {
    if count == 0 || n == 0 {
        return Vec::new();
    }
    if count >= n {
        return (0..n).collect();
    }
    (0..count)
        .map(|j| j * (n - 1) / (count - 1).max(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::equilibrium::r0;

    #[test]
    fn regimes_hit_their_thresholds() {
        let ds = digg_dataset(Scale::Small);
        let f2 = fig2_regime(&ds);
        assert!((r0(&f2.params, f2.eps1, f2.eps2).unwrap() - 0.7220).abs() < 1e-9);
        let f3 = fig3_regime(&ds);
        assert!((r0(&f3.params, f3.eps1, f3.eps2).unwrap() - 2.1661).abs() < 1e-9);
    }

    #[test]
    fn initial_conditions_are_deterministic_and_valid() {
        let a = random_initial_conditions(5, 10, 99);
        let b = random_initial_conditions(5, 10, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for st in &a {
            assert_eq!(st.n_classes(), 5);
            assert!(st.i().iter().all(|&x| x > 0.0 && x <= 0.5));
            assert!(st.r().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn spread_classes_covers_range() {
        assert_eq!(spread_classes(848, 2), vec![0, 847]);
        let picks = spread_classes(848, 17);
        assert_eq!(picks.len(), 17);
        assert_eq!(picks[0], 0);
        assert_eq!(*picks.last().unwrap(), 847);
        assert!(picks.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(spread_classes(3, 10), vec![0, 1, 2]);
        assert!(spread_classes(0, 5).is_empty());
        assert!(spread_classes(5, 0).is_empty());
    }

    #[test]
    fn scale_from_env_defaults_small() {
        // Without the env var set, default is Small.
        assert_eq!(Scale::from_env(), Scale::Small);
        assert_eq!(Scale::Small.config().nodes, 7_000);
        assert_eq!(Scale::Full.config().nodes, 71_367);
    }
}
