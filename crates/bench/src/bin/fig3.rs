//! Regenerates Fig. 3 — the persistence regime (`r0 = 2.1661 > 1`).
//!
//! * Fig. 3(a): `Dist+(t) = ‖E(t) − E+‖∞` under 10 random initial
//!   conditions, all converging to 0 (global stability of `E+`,
//!   Theorem 4).
//! * Fig. 3(b–d): `S_k(t), I_k(t), R_k(t)` for the 20 lowest-degree
//!   classes (the paper plots i = 1, 2, …, 20).
//!
//! Writes `results/fig3a.csv` and `results/fig3bcd.csv`.
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin fig3
//! ```

use rumor_bench::{digg_dataset, fig3_regime, random_initial_conditions, write_csv, Scale};
use rumor_core::control::ConstantControl;
use rumor_core::equilibrium::positive_equilibrium;
use rumor_core::simulate::{simulate, SimulateOptions};
use rumor_core::state::NetworkState;

fn main() {
    let dataset = digg_dataset(Scale::from_env());
    let regime = fig3_regime(&dataset);
    let (params, eps1, eps2) = (&regime.params, regime.eps1, regime.eps2);
    println!(
        "fig3: persistence regime, r0 = {:.4} > 1 on {} degree classes",
        regime.target_r0,
        params.n_classes()
    );

    let eplus = positive_equilibrium(params, eps1, eps2).expect("E+");
    println!(
        "endemic equilibrium: mean I+ per class = {:.4} (paper Fig. 3c: ~0.1-0.45)",
        eplus.total_infected() / params.n_classes() as f64
    );
    let tf = 3000.0;
    let opts = SimulateOptions {
        n_out: 151,
        ..Default::default()
    };

    // --- Fig. 3(a): Dist+(t) under 10 random initial conditions.
    let initials = random_initial_conditions(params.n_classes(), 10, 0xF1630);
    let mut dist_rows: Vec<Vec<f64>> = Vec::new();
    let mut all_final = Vec::new();
    for (run, init) in initials.iter().enumerate() {
        let traj = simulate(params, ConstantControl::new(eps1, eps2), init, tf, &opts)
            .expect("fig3a simulation");
        let dist = traj.dist_series(&eplus).expect("dist series");
        if run == 0 {
            dist_rows = traj.times().iter().map(|&t| vec![t]).collect();
        }
        for (row, d) in dist_rows.iter_mut().zip(&dist) {
            row.push(*d);
        }
        all_final.push(*dist.last().expect("non-empty"));
    }
    let header = {
        let runs: Vec<String> = (1..=10).map(|i| format!("distplus_run{i}")).collect();
        format!("t,{}", runs.join(","))
    };
    let path = write_csv("fig3a.csv", &header, &dist_rows);
    println!(
        "\nfig3(a): Dist+(t) under 10 initial conditions -> {}",
        path.display()
    );
    println!("   t      min(Dist+)  max(Dist+)");
    for row in dist_rows.iter().step_by(25) {
        let (min, max) = row[1..]
            .iter()
            .fold((f64::INFINITY, 0.0_f64), |(lo, hi), &d| {
                (lo.min(d), hi.max(d))
            });
        println!("{:7.1}   {:9.5}   {:9.5}", row[0], min, max);
    }
    let worst = all_final.iter().fold(0.0_f64, |m, &d| m.max(d));
    println!("all 10 runs converge to E+: max final Dist+ = {worst:.2e}");
    assert!(worst < 5e-3, "persistence must reach E+");

    // --- Fig. 3(b,c,d): the 20 lowest-degree classes, one initial condition.
    let init = NetworkState::initial_uniform(params.n_classes(), 0.1).expect("init");
    let traj = simulate(params, ConstantControl::new(eps1, eps2), &init, tf, &opts)
        .expect("fig3bcd simulation");
    let picks: Vec<usize> = (0..params.n_classes().min(20)).collect();
    let mut rows: Vec<Vec<f64>> = traj.times().iter().map(|&t| vec![t]).collect();
    let mut headers = vec!["t".to_string()];
    for &class in &picks {
        let (s, i, r) = traj.class_series(class).expect("class series");
        let k = params.classes().degree(class);
        headers.push(format!("S_k{k}"));
        headers.push(format!("I_k{k}"));
        headers.push(format!("R_k{k}"));
        for (row, ((sv, iv), rv)) in rows.iter_mut().zip(s.iter().zip(&i).zip(&r)) {
            row.push(*sv);
            row.push(*iv);
            row.push(*rv);
        }
    }
    let path = write_csv("fig3bcd.csv", &headers.join(","), &rows);
    println!(
        "\nfig3(b,c,d): S/I/R for classes 1..=20 -> {}",
        path.display()
    );

    // Shape summary: infection persists and matches E+ per class.
    let last = traj.last_state();
    println!("terminal state vs endemic equilibrium (first 5 classes):");
    for &class in picks.iter().take(5) {
        let k = params.classes().degree(class);
        println!(
            "  k = {k:3}: I(tf) = {:.4} vs I+ = {:.4}; S(tf) = {:.4} vs S+ = {:.4}",
            last.i()[class],
            eplus.i()[class],
            last.s()[class],
            eplus.s()[class]
        );
    }
    assert!(
        last.total_infected() > 0.5,
        "the rumor must persist at a stable endemic level"
    );
}
