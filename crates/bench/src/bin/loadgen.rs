//! Load/soak harness for the serving layer — std-only, no HTTP client
//! crate, so CI exercises the exact byte protocol a operator's probe
//! would.
//!
//! The workload models the paper's operator console under load: one
//! long throttled campaign, a wall of keep-alive status pollers (each
//! an established connection for the whole run — the epoll backend's
//! reason to exist), and a few streaming consumers following the
//! campaign's chunked results. The harness then gates on service
//! health:
//!
//! * **No 5xx besides sheds** — `503` is admission control doing its
//!   job; any other 5xx fails the run.
//! * **p99 latency bound** — over every poller request.
//! * **fd stability** — the server's `/proc/<pid>/fd` count may not
//!   grow across the soak (leaked connections would).
//!
//! ```text
//! loadgen --addr 127.0.0.1:8080 [--connections 1000] [--threads 32]
//!         [--streams 4] [--duration-secs 15] [--poll-interval-ms 100]
//!         [--p99-ms 250] [--server-pid PID] [--max-fd-growth 16]
//! ```
//!
//! Exits 0 on pass, 1 on a failed gate, 2 on usage errors.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    addr: String,
    connections: usize,
    threads: usize,
    streams: usize,
    duration: Duration,
    poll_interval: Duration,
    p99_ms: u64,
    server_pid: Option<u32>,
    max_fd_growth: i64,
}

impl Config {
    fn parse() -> Result<Config, String> {
        let mut config = Config {
            addr: String::new(),
            connections: 1000,
            threads: 32,
            streams: 4,
            duration: Duration::from_secs(15),
            poll_interval: Duration::from_millis(100),
            p99_ms: 250,
            server_pid: None,
            max_fd_growth: 16,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--addr" => config.addr = value("--addr")?,
                "--connections" => {
                    config.connections = value("--connections")?
                        .parse()
                        .map_err(|e| format!("bad --connections: {e}"))?;
                }
                "--threads" => {
                    config.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?;
                }
                "--streams" => {
                    config.streams = value("--streams")?
                        .parse()
                        .map_err(|e| format!("bad --streams: {e}"))?;
                }
                "--duration-secs" => {
                    config.duration = Duration::from_secs(
                        value("--duration-secs")?
                            .parse()
                            .map_err(|e| format!("bad --duration-secs: {e}"))?,
                    );
                }
                "--poll-interval-ms" => {
                    config.poll_interval = Duration::from_millis(
                        value("--poll-interval-ms")?
                            .parse()
                            .map_err(|e| format!("bad --poll-interval-ms: {e}"))?,
                    );
                }
                "--p99-ms" => {
                    config.p99_ms = value("--p99-ms")?
                        .parse()
                        .map_err(|e| format!("bad --p99-ms: {e}"))?;
                }
                "--server-pid" => {
                    config.server_pid = Some(
                        value("--server-pid")?
                            .parse()
                            .map_err(|e| format!("bad --server-pid: {e}"))?,
                    );
                }
                "--max-fd-growth" => {
                    config.max_fd_growth = value("--max-fd-growth")?
                        .parse()
                        .map_err(|e| format!("bad --max-fd-growth: {e}"))?;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if config.addr.is_empty() {
            return Err("--addr is required".to_string());
        }
        if config.threads == 0 || config.connections == 0 {
            return Err("--threads and --connections must be at least 1".to_string());
        }
        Ok(config)
    }
}

/// Tallies shared across the fleet; latencies stay thread-local and
/// are merged at join time.
#[derive(Default)]
struct Tally {
    requests: AtomicU64,
    sheds: AtomicU64,
    other_5xx: AtomicU64,
    non_200: AtomicU64,
    reconnects: AtomicU64,
    stream_bytes: AtomicU64,
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// One keep-alive exchange: request, then a `Content-Length`-framed
/// response. Returns the status code.
fn exchange(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> std::io::Result<u16> {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes())?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 head"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no content-length"))?;
    let mut have = buf.len() - head_end - 4;
    while have < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-body",
            ));
        }
        have += n;
    }
    Ok(status)
}

/// One-shot request returning the full body (for submit/cancel).
fn oneshot(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| format!("send {path}: {e}"))?;
    let mut buf = Vec::new();
    stream
        .read_to_end(&mut buf)
        .map_err(|e| format!("read {path}: {e}"))?;
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad response from {path}: {text}"))?;
    let body_text = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body_text))
}

fn record_status(tally: &Tally, status: u16) {
    tally.requests.fetch_add(1, Ordering::Relaxed);
    if status == 503 {
        tally.sheds.fetch_add(1, Ordering::Relaxed);
    } else if status >= 500 {
        tally.other_5xx.fetch_add(1, Ordering::Relaxed);
    } else if status != 200 {
        tally.non_200.fetch_add(1, Ordering::Relaxed);
    }
}

/// A poller thread: owns a slice of the keep-alive connection fleet
/// and round-robins status polls over it until the deadline.
#[allow(clippy::too_many_arguments)]
fn poller(
    addr: &str,
    path: &str,
    conns: usize,
    poll_interval: Duration,
    deadline: Instant,
    stop: &AtomicBool,
    tally: &Tally,
) -> Vec<u64> {
    let mut fleet: Vec<Option<TcpStream>> = (0..conns).map(|_| connect(addr).ok()).collect();
    let mut latencies_us = Vec::new();
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        let round_started = Instant::now();
        for slot in &mut fleet {
            if slot.is_none() {
                tally.reconnects.fetch_add(1, Ordering::Relaxed);
                *slot = connect(addr).ok();
            }
            let Some(stream) = slot else { continue };
            let started = Instant::now();
            match exchange(stream, "GET", path, "") {
                Ok(status) => {
                    latencies_us.push(started.elapsed().as_micros() as u64);
                    record_status(tally, status);
                    if status == 503 {
                        *slot = None; // Shed responses close the connection.
                    }
                }
                Err(_) => {
                    *slot = None;
                }
            }
        }
        // Pace the fleet: one poll per connection per interval.
        let elapsed = round_started.elapsed();
        if elapsed < poll_interval {
            std::thread::sleep(poll_interval - elapsed);
        }
    }
    latencies_us
}

/// A streaming consumer: follows the campaign's chunked results until
/// the stream ends or the soak deadline passes.
fn stream_consumer(addr: &str, path: &str, deadline: Instant, stop: &AtomicBool, tally: &Tally) {
    let Ok(mut stream) = connect(addr) else {
        return;
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    let raw = format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n");
    if stream.write_all(raw.as_bytes()).is_err() {
        return;
    }
    let mut chunk = [0u8; 4096];
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        match stream.read(&mut chunk) {
            Ok(0) => return, // Stream finished.
            Ok(n) => {
                tally.stream_bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
    // Deadline hit mid-stream: drop abruptly — the server must reclaim
    // the slot (the e2e suite pins this; the soak exercises it at scale).
}

fn server_fd_count(pid: u32) -> Option<usize> {
    std::fs::read_dir(format!("/proc/{pid}/fd"))
        .ok()
        .map(|entries| entries.count())
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() {
    let config = match Config::parse() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // One long throttled campaign spans the soak: ~20 points/s, with
    // enough points to outlive the run (it is cancelled afterwards).
    let points = config.duration.as_secs() * 20 + 100;
    let submit_body = format!(
        r#"{{"kind": "threshold_sweep", "points": {points}, "throttle_ms": 50,
            "base": {{"network": {{"nodes": 300, "k_max": 25, "mean_degree": 4}}}}}}"#
    );
    let (status, body) = match oneshot(&config.addr, "POST", "/v1/jobs", &submit_body) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: submit failed: {e}");
            std::process::exit(2);
        }
    };
    if status != 200 {
        eprintln!("loadgen: submit answered {status}: {body}");
        std::process::exit(2);
    }
    let job_id = body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_default()
        .to_string();
    if job_id.is_empty() {
        eprintln!("loadgen: no job id in submit response: {body}");
        std::process::exit(2);
    }
    println!(
        "loadgen: soaking {} for {:?}: {} pollers x {} threads, {} streams, job {job_id}",
        config.addr, config.duration, config.connections, config.threads, config.streams
    );

    let fd_before = config.server_pid.and_then(server_fd_count);
    let tally = Arc::new(Tally::default());
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + config.duration;

    let mut stream_threads = Vec::new();
    for _ in 0..config.streams {
        let addr = config.addr.clone();
        let path = format!("/v1/jobs/{job_id}/stream");
        let tally = Arc::clone(&tally);
        let stop = Arc::clone(&stop);
        stream_threads.push(std::thread::spawn(move || {
            stream_consumer(&addr, &path, deadline, &stop, &tally);
        }));
    }

    let per_thread = config.connections.div_ceil(config.threads);
    let mut poller_threads = Vec::new();
    let mut remaining = config.connections;
    for _ in 0..config.threads {
        let conns = per_thread.min(remaining);
        remaining -= conns;
        if conns == 0 {
            break;
        }
        let addr = config.addr.clone();
        let path = format!("/v1/jobs/{job_id}");
        let interval = config.poll_interval;
        let tally = Arc::clone(&tally);
        let stop = Arc::clone(&stop);
        poller_threads.push(std::thread::spawn(move || {
            poller(&addr, &path, conns, interval, deadline, &stop, &tally)
        }));
    }

    let mut latencies_us: Vec<u64> = Vec::new();
    for handle in poller_threads {
        if let Ok(thread_latencies) = handle.join() {
            latencies_us.extend(thread_latencies);
        }
    }
    stop.store(true, Ordering::Relaxed);
    for handle in stream_threads {
        let _ = handle.join();
    }

    // Quiesce before the fd check: closed client sockets take a loop
    // tick to be reaped server-side.
    std::thread::sleep(Duration::from_millis(500));
    let fd_after = config.server_pid.and_then(server_fd_count);
    let _ = oneshot(
        &config.addr,
        "POST",
        &format!("/v1/jobs/{job_id}/cancel"),
        "",
    );

    latencies_us.sort_unstable();
    let requests = tally.requests.load(Ordering::Relaxed);
    let sheds = tally.sheds.load(Ordering::Relaxed);
    let other_5xx = tally.other_5xx.load(Ordering::Relaxed);
    let non_200 = tally.non_200.load(Ordering::Relaxed);
    let reconnects = tally.reconnects.load(Ordering::Relaxed);
    let stream_bytes = tally.stream_bytes.load(Ordering::Relaxed);
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);
    let max = latencies_us.last().copied().unwrap_or(0);

    println!("loadgen: requests={requests} sheds={sheds} other_5xx={other_5xx} non_200={non_200} reconnects={reconnects}");
    println!("loadgen: latency_us p50={p50} p99={p99} max={max}; stream_bytes={stream_bytes}");
    if let (Some(before), Some(after)) = (fd_before, fd_after) {
        println!("loadgen: server_fds before={before} after={after}");
    }

    let mut failures = Vec::new();
    if requests == 0 {
        failures.push("no poller request completed".to_string());
    }
    if other_5xx > 0 {
        failures.push(format!("{other_5xx} non-shed 5xx responses"));
    }
    if non_200 > 0 {
        failures.push(format!("{non_200} unexpected non-200 responses"));
    }
    let p99_ms = p99 / 1000;
    if p99_ms > config.p99_ms {
        failures.push(format!("p99 {p99_ms}ms exceeds bound {}ms", config.p99_ms));
    }
    if let (Some(before), Some(after)) = (fd_before, fd_after) {
        let growth = after as i64 - before as i64;
        if growth > config.max_fd_growth {
            failures.push(format!(
                "server fd count grew by {growth} (bound {})",
                config.max_fd_growth
            ));
        }
    }

    if failures.is_empty() {
        println!("LOADGEN PASS");
    } else {
        for failure in &failures {
            eprintln!("loadgen: FAIL: {failure}");
        }
        println!("LOADGEN FAIL");
        std::process::exit(1);
    }
}
