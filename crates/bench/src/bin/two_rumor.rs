//! `two_rumor` — cost-effectiveness of truth campaigning vs blocking on
//! the competing two-rumor model (EXPERIMENTS.md "Two-rumor
//! cost-effectiveness" section).
//!
//! Three multi-control FBSM runs on the canonical two-rumor small tier
//! (the configuration pinned in `crates/control/tests/two_rumor_fbsm.rs`
//! and the perfreport `two_rumor` workload):
//!
//! * **joint** — both channels free inside the `[0, 0.2]` box;
//! * **truth-only** — the blocking channel's bound collapsed to ~0, so
//!   only truth seeding fights the rumor;
//! * **blocking-only** — the truth channel collapsed instead.
//!
//! For each run the report carries the FBSM iteration count, the
//! itemized cost (per-channel running cost + terminal objective) and the
//! final rumor/truth prevalences. CSVs land in `results/`:
//! `two_rumor_summary.csv` (one row per scenario) and
//! `two_rumor_schedule.csv` (the joint run's optimal schedule).

use rumor_bench::write_csv;
use rumor_control::multi::{optimize_compartments_monitored, MultiControlBounds, MultiFbsmOptions};
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_models::two_rumor::TwoRumorModel;
use rumor_net::degree::DegreeClasses;
use rumor_ode::integrator::AdaptiveConfig;

/// A channel bound that is effectively "off" without tripping the
/// positivity validation of [`MultiControlBounds`].
const OFF: f64 = 1e-9;

fn canonical_params() -> ModelParams {
    let degrees: Vec<usize> = (0..24).map(|i| 1 + i % 12).collect();
    let classes = DegreeClasses::from_degrees(&degrees).expect("classes");
    ModelParams::builder(classes)
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params")
}

fn options() -> MultiFbsmOptions {
    MultiFbsmOptions {
        n_nodes: 51,
        max_iterations: 150,
        tolerance: 1e-4,
        relaxation: 0.4,
        ode: AdaptiveConfig {
            rtol: 1e-6,
            atol: 1e-8,
            ..Default::default()
        },
        inner_threads: Some(1),
        ..Default::default()
    }
}

fn main() {
    let params = canonical_params();
    let model =
        TwoRumorModel::from_params(&params, 0.03, 0.05, 0.08, 0.5, 5.0, 10.0).expect("model");
    let n = params.n_classes();
    let mut y0 = vec![0.0; 4 * n];
    for j in 0..n {
        y0[j] = 0.88;
        y0[n + j] = 0.1;
        y0[2 * n + j] = 0.02;
    }
    let tf = 40.0;
    println!(
        "two_rumor: {} classes, tf = {tf}, c_truth = 5, c_block = 10, initial (s, i1, i2) = (0.88, 0.10, 0.02)",
        n
    );

    let scenarios: [(&str, [f64; 2]); 3] = [
        ("joint", [0.2, 0.2]),
        ("truth_only", [0.2, OFF]),
        ("blocking_only", [OFF, 0.2]),
    ];
    let mut summary_rows: Vec<Vec<f64>> = Vec::new();
    let mut joint_schedule: Vec<Vec<f64>> = Vec::new();
    for (idx, (name, boxed)) in scenarios.iter().enumerate() {
        let bounds = MultiControlBounds::new(boxed.to_vec()).expect("bounds");
        let result = optimize_compartments_monitored(&model, &y0, tf, &bounds, &options())
            .expect("two-rumor sweep");
        assert!(
            result.converged,
            "{name}: sweep must converge, residual {:?}",
            result.change_history.last()
        );
        let last = result.trajectory.last_state().to_vec();
        let mean = |c: usize| last[c * n..(c + 1) * n].iter().sum::<f64>() / n as f64;
        let (rumor, truth) = (mean(1), mean(2));
        println!(
            "{name:14} iterations {:3}  cost: truth {:.4} + blocking {:.4} + terminal {:.4} = J {:.4}  final prevalence: rumor {rumor:.5}, truth {truth:.5}",
            result.iterations,
            result.cost.channel_costs[0],
            result.cost.channel_costs[1],
            result.cost.terminal,
            result.cost.total()
        );
        summary_rows.push(vec![
            idx as f64,
            result.iterations as f64,
            result.cost.channel_costs[0],
            result.cost.channel_costs[1],
            result.cost.terminal,
            result.cost.total(),
            rumor,
            truth,
        ]);
        if *name == "joint" {
            let times = result.control.grid().to_vec();
            for (k, &t) in times.iter().enumerate() {
                let row: Vec<f64> = std::iter::once(t)
                    .chain((0..2).map(|c| result.control.values(c)[k]))
                    .collect();
                joint_schedule.push(row);
            }
        }
    }
    let summary = write_csv(
        "two_rumor_summary.csv",
        "scenario,iterations,cost_truth,cost_blocking,cost_terminal,cost_total,final_rumor,final_truth",
        &summary_rows,
    );
    let schedule = write_csv(
        "two_rumor_schedule.csv",
        "t,truth,blocking",
        &joint_schedule,
    );
    println!("wrote {} and {}", summary.display(), schedule.display());
    println!("scenario ids: 0 = joint, 1 = truth_only, 2 = blocking_only");
}
