//! `degseq` — writes the Digg-equivalent degree sequence to a file,
//! one degree per line, preceded by `#`-comment header lines recording
//! the generating configuration.
//!
//! This is the deterministic fallback behind `scripts/fetch_digg.sh`:
//! the real Digg2009 distribution link is dead and the data is not
//! redistributable, so anything that needs the degree sequence (bench
//! tiers, external tooling, plotting) can synthesize the calibrated
//! equivalent reproducibly — same bytes on every machine, every run.
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin degseq -- [--scale small|full] [--out FILE]
//! ```
//!
//! Defaults: `--scale full`, `--out results/digg_degrees.txt`.

use rumor_bench::{digg_dataset, results_dir, Scale};
use std::io::{BufWriter, Write};
use std::path::PathBuf;

fn main() {
    let mut scale = Scale::Full;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => {
                scale = match value("--scale").as_str() {
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("error: --scale must be small or full, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = Some(PathBuf::from(value("--out"))),
            other => {
                eprintln!("error: unknown option {other:?} (expected --scale, --out)");
                std::process::exit(2);
            }
        }
    }
    let path = out.unwrap_or_else(|| {
        std::fs::create_dir_all(results_dir()).expect("create results dir");
        results_dir().join("digg_degrees.txt")
    });

    let ds = digg_dataset(scale);
    let s = ds.summary();
    let file = std::fs::File::create(&path).expect("create degree-sequence file");
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# synthetic Digg2009-equivalent degree sequence (one degree per line)"
    )
    .expect("write header");
    writeln!(
        w,
        "# nodes: {}, classes: {}, k: [{}, {}], mean: {:.4}, gamma: {:.6}, seed: {:#x}",
        s.nodes,
        s.degree_classes,
        s.min_degree,
        s.max_degree,
        s.mean_degree,
        ds.gamma(),
        ds.config().seed
    )
    .expect("write header");
    for &k in ds.degrees() {
        writeln!(w, "{k}").expect("write degree");
    }
    w.flush().expect("flush degree sequence");
    println!(
        "wrote {} degrees ({} classes) to {}",
        s.nodes,
        s.degree_classes,
        path.display()
    );
}
