//! Regenerates Table I — the model-parameter glossary — with the
//! Digg-calibrated values of both experiment regimes, plus the dataset
//! statistics the paper quotes in Section V.
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin table1
//! RUMOR_SCALE=full cargo run --release -p rumor-bench --bin table1
//! ```

use rumor_bench::{digg_dataset, fig2_regime, fig3_regime, Scale};
use rumor_core::equilibrium::r0;

fn main() {
    let scale = Scale::from_env();
    let dataset = digg_dataset(scale);
    let summary = dataset.summary();

    println!("=== Dataset (paper Section V) ===");
    println!("{summary}");
    println!(
        "  published reference: 71367 nodes, 1731658 arcs, 848 classes, k in [1, 995], <k> ~ 24"
    );

    println!("\n=== Table I: major parameters in the dynamic model ===");
    println!("{:<10} {:<58} value(s)", "symbol", "definition");
    let rows: Vec<(&str, &str, String)> = vec![
        (
            "k_i",
            "social connectivity (degree) of group i",
            format!(
                "{} classes in [{}, {}]",
                summary.degree_classes, summary.min_degree, summary.max_degree
            ),
        ),
        (
            "alpha",
            "rate of new individuals entering the OSN",
            "0.01 (fig2) / 0.002 (fig3)".into(),
        ),
        (
            "lambda(k)",
            "rumor acceptance rate of susceptibles in group i",
            "lambda0 * k, lambda0 calibrated per regime".into(),
        ),
        (
            "eps1",
            "proportion of susceptibles immunized (truth) at t",
            "0.2 (fig2) / 0.002 (fig3) / optimized (fig4)".into(),
        ),
        (
            "eps2",
            "proportion of infected blocked at t",
            "0.05 (fig2) / 0.004 (fig3; paper prints 1e-4, see DESIGN.md) / optimized".into(),
        ),
        (
            "P(k)",
            "probability of a node having degree k",
            format!("power law, gamma = {:.4}", dataset.gamma()),
        ),
        (
            "<k>",
            "average degree of the OSN",
            format!("{:.3}", summary.mean_degree),
        ),
        (
            "omega(k)",
            "infectivity of an infected individual with degree k",
            "k^0.5 / (1 + k^0.5)".into(),
        ),
    ];
    for (sym, def, val) in rows {
        println!("{sym:<10} {def:<58} {val}");
    }

    println!("\n=== Calibrated thresholds ===");
    let f2 = fig2_regime(&dataset);
    let f3 = fig3_regime(&dataset);
    println!(
        "fig2 regime: r0 = {:.4} (target 0.7220) under (eps1, eps2) = ({}, {})",
        r0(&f2.params, f2.eps1, f2.eps2).expect("fig2 r0"),
        f2.eps1,
        f2.eps2
    );
    println!(
        "fig3 regime: r0 = {:.4} (target 2.1661) under (eps1, eps2) = ({}, {})",
        r0(&f3.params, f3.eps1, f3.eps2).expect("fig3 r0"),
        f3.eps1,
        f3.eps2
    );
}
