//! Regenerates Fig. 4 — the optimized countermeasures.
//!
//! * Fig. 4(a): the optimized `ε1(t), ε2(t)` on `(0, 100]` from the
//!   forward–backward sweep (`c1 = 5, c2 = 10`). Shape check:
//!   truth-spreading dominates the early/middle phase, blocking ramps up
//!   toward the deadline.
//! * Fig. 4(b): the threshold `r0` under the cumulative (running-average)
//!   countermeasure level — above 1 early (the rumor propagates mildly),
//!   pushed below 1 as the optimized controls accumulate. (The paper
//!   plots pointwise `r0(t)`; with the exact adjoint the transversality
//!   condition forces `ε1(tf) = 0`, where pointwise `r0` diverges, so we
//!   report the running-average variant — see EXPERIMENTS.md.)
//! * Fig. 4(c): cost of heuristic vs optimized countermeasures for
//!   `tf = 10, 20, …, 100` at matched terminal infection.
//!
//! Writes `results/fig4a.csv`, `results/fig4b.csv`, `results/fig4c.csv`.
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin fig4
//! ```

use rumor_bench::{digg_dataset, fig4_params, write_csv, Scale};
use rumor_control::fbsm::{optimize, FbsmOptions};
use rumor_control::heuristic;
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::equilibrium::r0;
use rumor_core::state::NetworkState;

fn sweep_options() -> FbsmOptions {
    FbsmOptions {
        n_nodes: 101,
        max_iterations: 300,
        tolerance: 1e-4,
        relaxation: 0.3,
        ..Default::default()
    }
}

fn main() {
    let dataset = digg_dataset(Scale::from_env());
    let params = fig4_params(&dataset);
    let bounds = ControlBounds::new(0.7, 0.7).expect("bounds");
    let weights = CostWeights::paper_default();
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.05).expect("initial");
    let tf = 100.0;

    println!(
        "fig4: optimized countermeasures on {} classes, tf = {tf}, c1 = {}, c2 = {}",
        params.n_classes(),
        weights.c1,
        weights.c2
    );

    // --- Fig. 4(a): the optimized schedule.
    let result = optimize(&params, &initial, tf, &bounds, &weights, &sweep_options())
        .expect("forward-backward sweep");
    println!(
        "sweep: {} iterations (converged: {}), objective J = {:.4}",
        result.iterations,
        result.converged,
        result.cost.total()
    );
    let grid = result.control.grid().to_vec();
    let e1 = result.control.eps1_values().to_vec();
    let e2 = result.control.eps2_values().to_vec();
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .zip(e1.iter().zip(&e2))
        .map(|(&t, (&a, &b))| vec![t, a, b])
        .collect();
    let path = write_csv("fig4a.csv", "t,eps1,eps2", &rows);
    println!(
        "\nfig4(a): optimized eps1(t), eps2(t) -> {}",
        path.display()
    );
    println!("   t      eps1      eps2");
    for row in rows.iter().step_by(10) {
        println!("{:6.1}   {:7.4}   {:7.4}", row[0], row[1], row[2]);
    }
    let n = e1.len();
    assert!(
        e1[n / 2] > e2[n / 2],
        "truth-spreading dominates mid-horizon"
    );
    assert!(e2[n - 1] > e1[n - 1], "blocking dominates at the deadline");

    // --- Fig. 4(b): r0 under the cumulative countermeasure level.
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut rows_b: Vec<Vec<f64>> = Vec::new();
    for (idx, w) in grid.windows(2).enumerate() {
        let dt = w[1] - w[0];
        acc1 += 0.5 * dt * (e1[idx] + e1[idx + 1]);
        acc2 += 0.5 * dt * (e2[idx] + e2[idx + 1]);
        let t = w[1];
        let avg1 = (acc1 / t).max(1e-6);
        let avg2 = (acc2 / t).max(1e-6);
        rows_b.push(vec![t, r0(&params, avg1, avg2).expect("r0")]);
    }
    let path = write_csv("fig4b.csv", "t,r0_cumulative", &rows_b);
    println!(
        "\nfig4(b): r0 under cumulative countermeasures -> {}",
        path.display()
    );
    for row in rows_b.iter().step_by(10) {
        println!("  t = {:5.1}: r0 = {:8.3}", row[0], row[1]);
    }
    let first = rows_b.first().expect("non-empty")[1];
    let last = rows_b.last().expect("non-empty")[1];
    assert!(
        first > 1.0,
        "rumor propagates mildly early (r0 > 1), got {first}"
    );
    assert!(
        last < 1.0,
        "countermeasures push r0 below 1 by tf, got {last}"
    );

    // --- Fig. 4(c): cost comparison across expected time periods.
    println!("\nfig4(c): heuristic vs optimized cost at matched terminal infection");
    println!("   tf    optimized   heuristic   ratio");
    let mut rows_c: Vec<Vec<f64>> = Vec::new();
    for step in 1..=10 {
        let tf_i = 10.0 * step as f64;
        let opt =
            optimize(&params, &initial, tf_i, &bounds, &weights, &sweep_options()).expect("sweep");
        let target = opt.trajectory.last_state().total_infected().max(1e-6);
        let heur = heuristic::tune(&params, &initial, tf_i, &bounds, &weights, target, 101)
            .expect("heuristic tune");
        let (oc, hc) = (opt.cost.running(), heur.cost.running());
        println!("{:6.1}   {:9.4}   {:9.4}   {:5.2}x", tf_i, oc, hc, hc / oc);
        rows_c.push(vec![tf_i, oc, hc]);
        assert!(
            oc < hc,
            "optimized must be cheaper than heuristic at tf = {tf_i}"
        );
    }
    let path = write_csv("fig4c.csv", "tf,optimized_cost,heuristic_cost", &rows_c);
    println!("-> {}", path.display());
    println!("\noptimized countermeasures are cheaper at every horizon, as in Fig. 4(c)");
}
