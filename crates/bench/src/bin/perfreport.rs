//! `perfreport` — headline performance numbers for the allocation-free
//! hot path, the parallel ensemble layer, and the HTTP service, written
//! as machine-readable JSON to `BENCH_PR9.json` at the workspace root.
//! Runs with `rumor-obs` rollups enabled, so the report also carries a
//! `span_rollup` section: per-span-name call counts and total wall time
//! plus the instrumentation counters (steps, sweeps, replicas) observed
//! while the workloads ran.
//!
//! Doubles as the CI perf-regression gate:
//!
//! ```sh
//! perfreport [--out FILE] [--check BASELINE.json] [--tolerance F] [--heavy]
//! ```
//!
//! With `--check`, the headline metrics from the fresh run are compared
//! against the committed baseline; every watched metric is printed as a
//! baseline/current/limit diff row and the process exits 1 if *any*
//! throughput falls below `tolerance × baseline` (or a wall time
//! exceeds `baseline / tolerance`) — the full table is always emitted,
//! not just the first offender. Metrics missing from either report
//! (e.g. the `--heavy`-only sections in a per-PR run) are reported and
//! skipped so one baseline serves both tiers. The default tolerance
//! 0.25 is deliberately generous: CI runners differ wildly from the
//! machines baselines are recorded on, so the gate only catches
//! order-of-magnitude regressions (a dropped `--release`, an
//! accidentally quadratic loop), not percent-level noise.
//!
//! Twelve canonical workloads (the last behind `--heavy`):
//!
//! 1. **RHS evals/s** — the heterogeneous SIR right-hand side on the
//!    Digg-calibrated class structure (the kernel every integrator step
//!    and every FBSM pass is made of), running the chunked
//!    auto-vectorized kernels of `rumor_core::kernels`.
//! 2. **ABM replicas/s** — a 64-replica synchronous-ABM ensemble on a
//!    Digg-like power-law (Barabási–Albert) graph, serial vs. 2/4/8
//!    worker threads, with a bit-identity check of every parallel run
//!    against the serial baseline.
//! 3. **FBSM sweep wall time** — one forward–backward sweep in the
//!    paper's Fig. 4 optimal-control setting. The timed sweep is
//!    iteration-capped (a fixed-size workload); afterwards warm-started
//!    continuation rounds re-run the sweep seeded with the previous
//!    schedule until it converges, and the report carries the final
//!    residual either way.
//! 4. **Wire throughput** — JSON parse + validation + canonicalization
//!    of a representative `/v1/simulate` body (the per-request CPU cost
//!    the service pays before any caching or compute).
//! 5. **Cache-hit vs. cold latency** — the same `/v1/simulate` request
//!    against a live in-process server over a real socket, cold
//!    (computes) then repeated (served from the LRU byte cache).
//! 6. **Sustained req/s at the admission limit** — concurrent clients
//!    hammering the server; reports the served rate plus how many
//!    requests were shed with `503` by the bounded queue.
//! 7. **Durable campaign throughput** — a 200-point threshold sweep
//!    submitted to `/v1/jobs`, measured end to end through the durable
//!    queue: journaled state transitions, per-point result persistence,
//!    and checkpoints included.
//! 8. **digg_full** — the full 71,367-node / 848-class Digg-equivalent
//!    problem: RHS evals/s at 848 classes plus a warm-start-continued
//!    FBSM sweep whose continuation rounds run with backtracking
//!    under-relaxation until the sweep genuinely converges (final
//!    residual <= 1e-4 is pinned in the committed report). Runs on
//!    every invocation (and so on every PR).
//! 9. **intra_scaling** — the deterministic intra-replica thread table:
//!    the 848-class RHS, the 848-class costate RHS and a sharded
//!    million-agent ABM step at 1/2/4/8 inner-pool threads, each row
//!    asserting bitwise identity against the serial kernel. On a
//!    single-core host the parallel rows measure dispatch overhead,
//!    not speedup; the table is keyed `t1`/`t2`/... so the perf gate
//!    can watch the serial row on any host.
//! 10. **ingest_sparse** — streaming two-pass CSR ingest of an edge
//!     list whose node ids all sit at or above the interner's 2^24
//!     direct-map limit, exercising the hash fallback and its geometric
//!     capacity reservation.
//! 11. **two_rumor** — the competing two-rumor compartment model:
//!     4-band RHS evals/s on the small-tier Digg classes (directly
//!     comparable with workload 1) plus one capped multi-control FBSM
//!     sweep on the canonical two-rumor small tier, asserting a final
//!     residual <= 1e-4.
//! 12. **synthetic_1m** (`--heavy`, nightly) — a deterministic
//!     million-node edge list streamed from disk through the two-pass
//!     CSR ingest (`rumor_datasets::streaming`), then a synchronous ABM
//!     replica stepped over all million agents on the flat state arena;
//!     reports ingest MB/s + edges/s and ABM node-steps/s.
//!
//! Numbers are measured on whatever host runs the binary; the report
//! records `available_parallelism` so speedups can be judged against the
//! hardware (on a single-core host the parallel runs measure scheduling
//! overhead, not speedup).
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin perfreport
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_bench::{digg_dataset, fig4_params, Scale};
use rumor_control::costate::CostateSystem;
use rumor_control::fbsm::{optimize_monitored, FbsmOptions, SweepResult};
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::control::ConstantControl;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_core::state::NetworkState;
use rumor_datasets::streaming::StreamingCsrBuilder;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::barabasi_albert;
use rumor_net::graph::{EdgeKind, Graph};
use rumor_ode::integrator::{Adaptive, AdaptiveConfig};
use rumor_ode::system::OdeSystem;
use rumor_par::InnerPool;
use rumor_serve::api::SimulateRequest;
use rumor_serve::{serve, wire, ServeConfig, Server};
use rumor_sim::abm::{self, run_sharded, AbmConfig};
use rumor_sim::ensemble::{run_ensemble_threads, EnsembleResult, Simulator};
use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ABM_REPLICAS: usize = 64;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Command-line configuration for the report/gate.
struct Config {
    out: PathBuf,
    check: Option<PathBuf>,
    tolerance: f64,
    /// Include the million-node `synthetic_1m` section (nightly tier).
    heavy: bool,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: PathBuf::from("BENCH_PR9.json"),
        check: None,
        tolerance: 0.25,
        heavy: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => config.out = PathBuf::from(value("--out")),
            "--check" => config.check = Some(PathBuf::from(value("--check"))),
            "--heavy" => config.heavy = true,
            "--tolerance" => {
                let raw = value("--tolerance");
                config.tolerance = match raw.parse::<f64>() {
                    Ok(t) if t > 0.0 && t <= 1.0 => t,
                    _ => {
                        eprintln!("error: --tolerance must be in (0, 1], got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!(
                    "error: unknown option {other:?} (expected --out, --check, --tolerance, --heavy)"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

fn main() {
    let config = parse_args();
    // Span rollups (not the line sink) are on for the whole report: the
    // near-zero-cost aggregation path the workloads would run with in
    // production, surfaced as a `span_rollup` section at the end.
    rumor_obs::set_rollup(true);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("perfreport: host has {cores} available core(s)");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"pr\": 9,");
    let _ = writeln!(json, "  \"generated_by\": \"perfreport\",");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"available_parallelism\": {cores}, \"os\": \"{}\", \"arch\": \"{}\" }},",
        std::env::consts::OS,
        std::env::consts::ARCH
    );

    // ---- Workload 1: RHS evaluations per second. --------------------
    let params = {
        let ds = digg_dataset(Scale::Small);
        fig4_params(&ds)
    };
    let model = RumorModel::new(&params, ConstantControl::new(0.2, 0.05));
    let y = NetworkState::initial_uniform(params.n_classes(), 0.1)
        .expect("state")
        .to_flat();
    let mut dydt = vec![0.0; y.len()];
    // Warm up, then take the best of several short windows: on shared
    // or virtualized hosts a single long window absorbs steal time, and
    // the max-rate window is the least-contaminated estimate of what
    // the kernel actually sustains.
    for _ in 0..100 {
        model.rhs(0.0, &y, &mut dydt);
    }
    let (evals, rhs_wall, rhs_rate) = best_rate_window(200, || model.rhs(0.0, &y, &mut dydt));
    println!(
        "rhs: {} classes, {evals} evals in {rhs_wall:.3} s = {rhs_rate:.0} evals/s (best of {RATE_WINDOWS} windows)",
        params.n_classes()
    );
    let _ = writeln!(
        json,
        "  \"rhs\": {{ \"n_classes\": {}, \"evals\": {evals}, \"wall_s\": {rhs_wall:.4}, \"evals_per_s\": {rhs_rate:.1} }},",
        params.n_classes()
    );

    // ---- Workload 2: ABM ensemble, serial vs. N threads. ------------
    let mut rng = StdRng::seed_from_u64(7);
    let graph = barabasi_albert(2_000, 3, &mut rng).expect("graph");
    let classes = DegreeClasses::from_graph(&graph).expect("classes");
    let abm_params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("abm params");
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 5.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 10,
    };
    let run = |threads: usize| -> (f64, EnsembleResult) {
        let start = Instant::now();
        let ens = run_ensemble_threads(
            &graph,
            &abm_params,
            &cfg,
            Simulator::Synchronous,
            ABM_REPLICAS,
            42,
            Some(threads),
        )
        .expect("ensemble");
        (start.elapsed().as_secs_f64(), ens)
    };
    // Warm-up run (page-in, allocator steady state), then the baseline.
    let _ = run(1);
    let (serial_wall, serial) = run(1);
    let _ = writeln!(
        json,
        "  \"abm_ensemble\": {{\n    \"graph\": \"barabasi_albert(n=2000, m=3)\",\n    \"replicas\": {ABM_REPLICAS}, \"tf\": {}, \"dt\": {},\n    \"runs\": [",
        cfg.tf, cfg.dt
    );
    for (pos, &threads) in THREAD_COUNTS.iter().enumerate() {
        let (wall, ens) = if threads == 1 {
            (serial_wall, serial.clone())
        } else {
            run(threads)
        };
        let identical = ens
            .i_mean
            .iter()
            .zip(&serial.i_mean)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && ens
                .i_std
                .iter()
                .zip(&serial.i_std)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "parallel run diverged from serial baseline");
        let speedup = serial_wall / wall;
        let rate = ABM_REPLICAS as f64 / wall;
        println!(
            "abm: {threads} thread(s): {wall:.3} s, {rate:.1} replicas/s, speedup {speedup:.2}x, bit-identical: {identical}"
        );
        let comma = if pos + 1 == THREAD_COUNTS.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "      {{ \"threads\": {threads}, \"wall_s\": {wall:.4}, \"replicas_per_s\": {rate:.2}, \"speedup_vs_serial\": {speedup:.3}, \"bit_identical_to_serial\": {identical} }}{comma}"
        );
    }
    let _ = writeln!(json, "    ]\n  }},");

    // ---- Workload 3: one FBSM sweep in the Fig. 4 setting. ----------
    let ds = digg_dataset(Scale::Small);
    let fbsm_params = fig4_params(&ds);
    let bounds = ControlBounds::new(0.7, 0.7).expect("bounds");
    let weights = CostWeights::paper_default();
    let initial = NetworkState::initial_uniform(fbsm_params.n_classes(), 0.05).expect("initial");
    // Iteration-capped on purpose: the relative control change plateaus
    // just above tight tolerances in this setting, so the cap — not the
    // tolerance — defines a fixed-size workload whose wall time is
    // comparable across runs. `optimize_monitored` skips the divergence
    // gate that `optimize` applies to non-converged sweeps. Convergence
    // is then finished off by warm-started continuation rounds (each
    // restart resets the relaxation, and the default backtracking
    // under-relaxation carries it past the ~4e-3 plateau), reported
    // (with the final residual) separately from the timed sweep so the
    // gate metric keeps its fixed-size meaning; three continuation
    // rounds settle it, pinned in crates/bench/tests/fbsm_small_tier.rs.
    // `inner_threads` is pinned to 1 on every gated sweep so the wall
    // time the perf gate watches stays comparable across hosts with
    // different core counts (and to the single-core baseline).
    let options = FbsmOptions {
        n_nodes: 81,
        max_iterations: 150,
        tolerance: 1e-4,
        relaxation: 0.3,
        inner_threads: Some(1),
        ..Default::default()
    };
    let tf = 40.0;
    let fbsm = fbsm_workload(
        &fbsm_params,
        &initial,
        tf,
        &bounds,
        &weights,
        &options,
        6,
        true,
    );
    assert!(
        fbsm.converged_final && fbsm.final_residual_after <= 1e-4,
        "small-tier FBSM continuation failed to converge: residual {}",
        fbsm.final_residual_after
    );
    println!(
        "fbsm: {} classes, tf = {tf}: {}",
        fbsm_params.n_classes(),
        fbsm.summary()
    );
    let _ = writeln!(
        json,
        "  \"fbsm\": {},",
        fbsm.to_json(fbsm_params.n_classes(), tf, options.n_nodes)
    );

    // ---- Workload 4: wire parse + validate + canonicalize. ----------
    let body = r#"{"network": {"nodes": 2000, "k_max": 60, "mean_degree": 5}, "model": {"alpha": 0.01, "lambda0": 0.02}, "eps1": 0.25, "eps2": 0.1, "tf": 120, "i0": 0.08, "n_out": 201}"#;
    for _ in 0..200 {
        let parsed = wire::parse(body).expect("wire parse");
        let _ = SimulateRequest::from_value(&parsed)
            .expect("validate")
            .canonical();
    }
    let start = Instant::now();
    let mut wire_ops = 0u64;
    while start.elapsed().as_secs_f64() < 0.3 {
        for _ in 0..500 {
            let parsed = wire::parse(body).expect("wire parse");
            let canonical = SimulateRequest::from_value(&parsed)
                .expect("validate")
                .canonical();
            std::hint::black_box(&canonical);
        }
        wire_ops += 500;
    }
    let wire_wall = start.elapsed().as_secs_f64();
    let wire_rate = wire_ops as f64 / wire_wall;
    println!(
        "wire: {wire_ops} parse+validate ops ({} B bodies) in {wire_wall:.3} s = {wire_rate:.0} ops/s",
        body.len()
    );
    let _ = writeln!(
        json,
        "  \"wire\": {{ \"body_bytes\": {}, \"ops\": {wire_ops}, \"wall_s\": {wire_wall:.4}, \"parse_validate_per_s\": {wire_rate:.1} }},",
        body.len()
    );

    // ---- Workload 5: cold vs. cache-hit /v1/simulate latency. -------
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("bind bench server");
    // The service defaults: the paper-scale Digg-like network. Heavy
    // enough that the cold/hit contrast measures the cache, not socket
    // overhead.
    let sim_body = r#"{"network": {"nodes": 5000, "k_max": 300, "mean_degree": 24}, "tf": 150}"#;
    let cold_start = Instant::now();
    let cold = http_request(&server, "/v1/simulate", sim_body);
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    assert!(
        cold.contains("X-Cache: miss"),
        "first request must be a cache miss"
    );
    // Median of repeated hits: each is a full TCP connect + parse +
    // cache lookup + response, so this is end-to-end hit latency.
    let mut hit_ms: Vec<f64> = (0..25)
        .map(|_| {
            let start = Instant::now();
            let hit = http_request(&server, "/v1/simulate", sim_body);
            assert!(hit.contains("X-Cache: hit"), "repeat must hit the cache");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    hit_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let hit_median_ms = hit_ms[hit_ms.len() / 2];
    println!(
        "serve latency: cold {cold_ms:.2} ms, cache-hit median {hit_median_ms:.3} ms ({:.0}x)",
        cold_ms / hit_median_ms
    );
    let _ = writeln!(
        json,
        "  \"serve_latency\": {{ \"cold_ms\": {cold_ms:.3}, \"cache_hit_median_ms\": {hit_median_ms:.4}, \"hit_speedup\": {:.1} }},",
        cold_ms / hit_median_ms
    );
    server.shutdown_and_join();

    // ---- Workload 6: sustained req/s at the admission limit. --------
    // More always-outstanding clients than `workers + queue_depth` can
    // hold, so the bounded queue must shed the excess with `503` while
    // the served (cache-hit) rate stays high. Counts both outcomes.
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        queue_depth: 2,
        ..ServeConfig::default()
    })
    .expect("bind admission server");
    let _ = http_request(&server, "/v1/simulate", sim_body); // warm the cache
    let clients = 8;
    let window = Duration::from_millis(600);
    let addr = server.local_addr();
    let (served, shed): (u64, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let (mut ok, mut rejected) = (0u64, 0u64);
                    let start = Instant::now();
                    while start.elapsed() < window {
                        match raw_request(addr, "POST", "/v1/simulate", sim_body) {
                            Some(response) if response.starts_with("HTTP/1.1 200") => ok += 1,
                            Some(response) if response.starts_with("HTTP/1.1 503") => {
                                rejected += 1;
                            }
                            _ => {}
                        }
                    }
                    (ok, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    });
    let served_rate = served as f64 / window.as_secs_f64();
    println!(
        "admission: {clients} clients for {:.1} s: {served} served ({served_rate:.0} req/s), {shed} shed with 503",
        window.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "  \"admission\": {{ \"clients\": {clients}, \"window_s\": {:.2}, \"served\": {served}, \"served_per_s\": {served_rate:.1}, \"shed_503\": {shed} }},",
        window.as_secs_f64()
    );
    server.shutdown_and_join();

    // ---- Workload 7: durable campaign throughput. -------------------
    // A 200-point threshold sweep through the journaled job queue: every
    // point pays the durability tax (journaled transitions, persisted
    // results, periodic checkpoints), so points/s measures the whole
    // durable path, not just the engine.
    let jobs_dir =
        std::env::temp_dir().join(format!("rumor_perfreport_jobs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&jobs_dir);
    std::fs::create_dir_all(&jobs_dir).expect("create jobs dir");
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        jobs_dir: Some(jobs_dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("bind jobs server");
    let campaign = r#"{"kind": "threshold_sweep", "points": 200, "sweep": {"from": 0.01, "to": 0.05}, "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#;
    let jobs_points = 200u64;
    let start = Instant::now();
    let submitted = http_request(&server, "/v1/jobs", campaign);
    let submit_body = submitted.split("\r\n\r\n").nth(1).unwrap_or("");
    let job_id = wire::parse(submit_body)
        .ok()
        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(str::to_string)))
        .expect("submit response carries a job id");
    let status_path = format!("/v1/jobs/{job_id}");
    loop {
        let response =
            raw_request(server.local_addr(), "GET", &status_path, "").expect("job status request");
        if response.contains("\"state\":\"done\"") {
            break;
        }
        assert!(
            !response.contains("\"failed\"") && !response.contains("\"partial\""),
            "benchmark campaign did not finish clean: {response}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(300),
            "benchmark campaign did not finish within 300 s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let jobs_wall = start.elapsed().as_secs_f64();
    let jobs_rate = jobs_points as f64 / jobs_wall;
    println!(
        "jobs: {jobs_points}-point durable threshold sweep in {jobs_wall:.3} s = {jobs_rate:.1} points/s"
    );
    let _ = writeln!(
        json,
        "  \"jobs\": {{ \"points\": {jobs_points}, \"wall_s\": {jobs_wall:.4}, \"points_per_s\": {jobs_rate:.2} }},"
    );
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&jobs_dir);

    // ---- Workload 8: the full 848-class Digg-equivalent problem. ----
    // RHS throughput and an FBSM sweep at the paper's full scale
    // (71,367 nodes, 848 degree classes). Runs on every invocation so
    // every PR gates the full-scale hot path, not just the small tier.
    let full_ds = digg_dataset(Scale::Full);
    let full_params = fig4_params(&full_ds);
    let model = RumorModel::new(&full_params, ConstantControl::new(0.2, 0.05));
    let y = NetworkState::initial_uniform(full_params.n_classes(), 0.1)
        .expect("state")
        .to_flat();
    let mut dydt = vec![0.0; y.len()];
    for _ in 0..50 {
        model.rhs(0.0, &y, &mut dydt);
    }
    let (full_evals, full_rhs_wall, full_rhs_rate) =
        best_rate_window(100, || model.rhs(0.0, &y, &mut dydt));
    println!(
        "digg_full rhs: {} classes, {full_evals} evals in {full_rhs_wall:.3} s = {full_rhs_rate:.0} evals/s (best of {RATE_WINDOWS} windows)",
        full_params.n_classes()
    );
    let full_initial =
        NetworkState::initial_uniform(full_params.n_classes(), 0.05).expect("initial");
    // Same grid as the small-tier sweep; a lower iteration cap keeps
    // the per-PR wall time bounded, with warm-started continuation
    // finishing convergence (final residual reported either way).
    let full_options = FbsmOptions {
        n_nodes: 81,
        max_iterations: 60,
        tolerance: 1e-4,
        relaxation: 0.3,
        inner_threads: Some(1),
        ..Default::default()
    };
    // The capped timed sweep stays the fixed-size gate workload; the
    // continuation rounds run with backtracking under-relaxation (retry
    // an oscillating update at a smaller step inside the same iteration
    // instead of accepting it), which is what carries this problem past
    // the ~4e-3 plateau plain damping stalls at and down to genuine
    // convergence (residual <= 1e-4, pinned in the committed report).
    let full_fbsm = fbsm_workload(
        &full_params,
        &full_initial,
        tf,
        &bounds,
        &weights,
        &full_options,
        12,
        true,
    );
    assert!(
        full_fbsm.converged_final && full_fbsm.final_residual_after <= 1e-4,
        "digg_full continuation must converge to <= 1e-4, got converged {} residual {:.3e}",
        full_fbsm.converged_final,
        full_fbsm.final_residual_after
    );
    println!(
        "digg_full fbsm: {} classes, tf = {tf}: {}",
        full_params.n_classes(),
        full_fbsm.summary()
    );
    let _ = writeln!(
        json,
        "  \"digg_full\": {{\n    \"nodes\": {},\n    \"rhs\": {{ \"n_classes\": {}, \"evals\": {full_evals}, \"wall_s\": {full_rhs_wall:.4}, \"evals_per_s\": {full_rhs_rate:.1} }},\n    \"fbsm\": {}\n  }},",
        full_ds.summary().nodes,
        full_params.n_classes(),
        full_fbsm.to_json(full_params.n_classes(), tf, full_options.n_nodes)
    );

    // ---- Workload 9: deterministic intra-replica thread scaling. ----
    let _ = writeln!(
        json,
        "  \"intra_scaling\": {},",
        intra_scaling_section(&full_params)
    );

    // ---- Workload 10: sparse-id streaming ingest (hash fallback). ---
    let _ = writeln!(json, "  \"ingest_sparse\": {},", ingest_sparse_section());

    // ---- Workload 11: the competing two-rumor compartment model. ----
    let _ = writeln!(json, "  \"two_rumor\": {},", two_rumor_section());

    // ---- Workload 12 (--heavy): million-node ingest + ABM stepping. --
    if config.heavy {
        let _ = writeln!(json, "  \"synthetic_1m\": {},", synthetic_1m_section());
    }

    // ---- Span rollups accumulated across every workload above. ------
    let rollup = rumor_obs::snapshot();
    println!(
        "rollup: {} span name(s), {} counter(s) aggregated",
        rollup.spans.len(),
        rollup.counters.len()
    );
    let _ = writeln!(json, "  \"span_rollup\": {},", rumor_obs::rollup_json());

    let _ = writeln!(
        json,
        "  \"notes\": [\n    \"parallel ensemble output is bit-identical to the serial run at every thread count (asserted above)\",\n    \"speedups are physical: on a host with {cores} available core(s), thread counts beyond {cores} measure scheduling overhead rather than parallel speedup\",\n    \"intra_scaling rows beyond t{cores} on this host measure pool dispatch overhead, not parallel speedup; bit-identity is asserted for every row regardless\",\n    \"gated fbsm sweeps pin inner_threads = 1 so their wall times stay host-comparable; production solves resolve the inner budget from RUMOR_INNER_THREADS / --threads\",\n    \"serve latencies are end-to-end over a real localhost socket, one connection per request\",\n    \"the admission workload intentionally overloads a queue_depth=8 pool: 503s are the bounded queue working, not a failure\"\n  ]"
    );
    json.push_str("}\n");

    // Relative --out paths land at the workspace root (two up from
    // CARGO_MANIFEST_DIR = crates/bench), absolute paths go verbatim.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = if config.out.is_absolute() {
        config.out.clone()
    } else {
        root.join(&config.out)
    };
    std::fs::write(&path, &json).expect("write report");
    println!("wrote {}", path.display());

    if let Some(baseline_path) = &config.check {
        let baseline_path = if baseline_path.is_absolute() {
            baseline_path.clone()
        } else {
            root.join(baseline_path)
        };
        if !gate(&json, &baseline_path, config.tolerance) {
            std::process::exit(1);
        }
    }
}

/// Number of measurement windows per throughput estimate.
const RATE_WINDOWS: usize = 5;

/// Runs `op` in `RATE_WINDOWS` windows of ~0.12 s each and returns
/// `(ops, wall_s, ops_per_s)` of the **fastest** window. On shared or
/// virtualized hosts the max-rate window is the least contaminated by
/// steal time, so it estimates what the kernel sustains rather than
/// what the noisy neighborhood allowed.
fn best_rate_window(batch: u64, mut op: impl FnMut()) -> (u64, f64, f64) {
    let mut best = (0u64, f64::INFINITY, 0.0f64);
    for _ in 0..RATE_WINDOWS {
        let start = Instant::now();
        let mut ops = 0u64;
        while start.elapsed().as_secs_f64() < 0.12 {
            for _ in 0..batch {
                op();
            }
            ops += batch;
        }
        let wall = start.elapsed().as_secs_f64();
        let rate = ops as f64 / wall;
        if rate > best.2 {
            best = (ops, wall, rate);
        }
    }
    best
}

/// Outcome of the FBSM workload: the timed, iteration-capped sweep plus
/// warm-started continuation rounds that finish convergence.
struct FbsmBench {
    iterations: usize,
    converged: bool,
    wall_s: f64,
    final_residual: f64,
    continuation_rounds: usize,
    continuation_iterations: usize,
    continuation_wall_s: f64,
    converged_final: bool,
    final_residual_after: f64,
}

impl FbsmBench {
    fn summary(&self) -> String {
        format!(
            "{} iterations (converged: {}) in {:.3} s, residual {:.2e}; \
             after {} warm-start round(s) (+{} iterations, {:.3} s): converged {}, residual {:.2e}",
            self.iterations,
            self.converged,
            self.wall_s,
            self.final_residual,
            self.continuation_rounds,
            self.continuation_iterations,
            self.continuation_wall_s,
            self.converged_final,
            self.final_residual_after
        )
    }

    fn to_json(&self, n_classes: usize, tf: f64, grid_nodes: usize) -> String {
        format!(
            "{{ \"n_classes\": {n_classes}, \"tf\": {tf}, \"grid_nodes\": {grid_nodes}, \
             \"iterations\": {}, \"converged\": {}, \"wall_s\": {:.4}, \"final_residual\": {:.6e}, \
             \"continuation\": {{ \"rounds\": {}, \"iterations\": {}, \"wall_s\": {:.4}, \
             \"converged\": {}, \"final_residual\": {:.6e} }} }}",
            self.iterations,
            self.converged,
            self.wall_s,
            self.final_residual,
            self.continuation_rounds,
            self.continuation_iterations,
            self.continuation_wall_s,
            self.converged_final,
            self.final_residual_after
        )
    }
}

/// Last relative control change of a sweep (infinite when the sweep
/// recorded no iterations).
fn residual(sweep: &SweepResult) -> f64 {
    sweep
        .change_history
        .last()
        .copied()
        .unwrap_or(f64::INFINITY)
}

/// Runs the timed, iteration-capped FBSM sweep, then — if the cap (not
/// the tolerance) stopped it — up to `max_rounds - 1` warm-started
/// continuation rounds, each seeded with the previous schedule via
/// `FbsmOptions::initial_control`. The continuation settles
/// convergence without disturbing the fixed-size timed workload the
/// gate watches; the final residual is reported either way.
#[allow(clippy::too_many_arguments)]
fn fbsm_workload(
    params: &ModelParams,
    initial: &NetworkState,
    tf: f64,
    bounds: &ControlBounds,
    weights: &CostWeights,
    options: &FbsmOptions,
    max_rounds: usize,
    backtracking_continuation: bool,
) -> FbsmBench {
    let start = Instant::now();
    let first = optimize_monitored(params, initial, tf, bounds, weights, options).expect("sweep");
    let wall_s = start.elapsed().as_secs_f64();

    let mut last = first.clone();
    let mut continuation_rounds = 0usize;
    let mut continuation_iterations = 0usize;
    let cont_start = Instant::now();
    while !last.converged && continuation_rounds + 1 < max_rounds {
        let warm = FbsmOptions {
            initial_control: Some(last.control.clone()),
            backtracking: backtracking_continuation,
            ..options.clone()
        };
        last = optimize_monitored(params, initial, tf, bounds, weights, &warm)
            .expect("continuation sweep");
        continuation_rounds += 1;
        continuation_iterations += last.iterations;
    }
    FbsmBench {
        iterations: first.iterations,
        converged: first.converged,
        wall_s,
        final_residual: residual(&first),
        continuation_rounds,
        continuation_iterations,
        continuation_wall_s: if continuation_rounds > 0 {
            cont_start.elapsed().as_secs_f64()
        } else {
            0.0
        },
        converged_final: last.converged,
        final_residual_after: residual(&last),
    }
}

/// SplitMix64 finalizer shared by the synthetic graph generators below.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Builds the deterministic million-node graph in process through the
/// two-phase [`StreamingCsrBuilder`] protocol (no file round-trip):
/// replay the same SplitMix64 edge stream into `count`, then `place`.
fn synthetic_graph_in_process(n: usize, out_degree: usize) -> Graph {
    let edges = |sink: &mut dyn FnMut(u64, u64)| {
        for u in 0..n {
            for j in 0..out_degree {
                let v = (splitmix64((u as u64) << 3 | j as u64) % n as u64) as usize;
                if v != u {
                    sink(u as u64, v as u64);
                }
            }
        }
    };
    let mut b = StreamingCsrBuilder::new(EdgeKind::Undirected);
    edges(&mut |u, v| b.count(u, v).expect("count"));
    b.start_placement();
    edges(&mut |u, v| b.place(u, v).expect("place"));
    let (graph, _) = b.finish().expect("finish synthetic CSR");
    graph
}

/// The tentpole's scaling table: the 848-class RHS, the 848-class
/// costate RHS and a sharded million-agent ABM step, each at inner-pool
/// sizes 1/2/4/8 with bitwise identity against the serial kernel
/// asserted per row. Keyed `t1`/`t2`/`t4`/`t8` so the gate can watch
/// the serial row by dotted path on any host.
fn intra_scaling_section(full_params: &ModelParams) -> String {
    let n = full_params.n_classes();
    let mut json = String::from("{\n");

    // -- 848-class forward RHS (theta reduction + element map). -------
    let y = NetworkState::initial_uniform(n, 0.1)
        .expect("state")
        .to_flat();
    let serial_model = RumorModel::new(full_params, ConstantControl::new(0.2, 0.05));
    let mut d_serial = vec![0.0; y.len()];
    serial_model.rhs(0.0, &y, &mut d_serial);
    let _ = writeln!(json, "    \"rhs_848\": {{");
    let mut t1_rate = 0.0f64;
    for (pos, &threads) in THREAD_COUNTS.iter().enumerate() {
        let pool = Arc::new(InnerPool::new(threads));
        let model = RumorModel::new(full_params, ConstantControl::new(0.2, 0.05))
            .with_pool(Some(Arc::clone(&pool)));
        let mut dydt = vec![0.0; y.len()];
        model.rhs(0.0, &y, &mut dydt);
        let identical = dydt
            .iter()
            .zip(&d_serial)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "pooled RHS diverged at {threads} thread(s)");
        for _ in 0..50 {
            model.rhs(0.0, &y, &mut dydt);
        }
        let (evals, wall, rate) = best_rate_window(100, || model.rhs(0.0, &y, &mut dydt));
        if threads == 1 {
            t1_rate = rate;
        }
        println!(
            "intra rhs_848: {threads} thread(s): {evals} evals in {wall:.3} s = {rate:.0} evals/s, speedup vs t1 {:.2}x, bit-identical: {identical}",
            rate / t1_rate
        );
        let comma = if pos + 1 == THREAD_COUNTS.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "      \"t{threads}\": {{ \"evals\": {evals}, \"wall_s\": {wall:.4}, \"evals_per_s\": {rate:.1}, \"speedup_vs_t1\": {:.3}, \"bit_identical_to_serial\": {identical} }}{comma}",
            rate / t1_rate
        );
    }
    let _ = writeln!(json, "    }},");

    // -- 848-class costate (adjoint) RHS over a real forward solve. ---
    let control = ConstantControl::new(0.2, 0.05);
    let forward = Adaptive::with_config(AdaptiveConfig {
        rtol: 1e-6,
        atol: 1e-8,
        ..Default::default()
    })
    .integrate(&serial_model, 0.0, &y, 40.0)
    .expect("forward solve for costate bench");
    let weights = CostWeights::paper_default();
    let serial_costate = CostateSystem::new(full_params, &forward, &control, weights);
    let yc = serial_costate.terminal_condition();
    let mut dc_serial = vec![0.0; yc.len()];
    serial_costate.rhs(20.0, &yc, &mut dc_serial);
    let _ = writeln!(json, "    \"costate_848\": {{");
    let mut t1_rate = 0.0f64;
    for (pos, &threads) in THREAD_COUNTS.iter().enumerate() {
        let pool = Arc::new(InnerPool::new(threads));
        let costate = CostateSystem::new(full_params, &forward, &control, weights)
            .with_pool(Some(Arc::clone(&pool)));
        let mut dydt = vec![0.0; yc.len()];
        costate.rhs(20.0, &yc, &mut dydt);
        let identical = dydt
            .iter()
            .zip(&dc_serial)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            identical,
            "pooled costate RHS diverged at {threads} thread(s)"
        );
        for _ in 0..50 {
            costate.rhs(20.0, &yc, &mut dydt);
        }
        let (evals, wall, rate) = best_rate_window(100, || costate.rhs(20.0, &yc, &mut dydt));
        if threads == 1 {
            t1_rate = rate;
        }
        println!(
            "intra costate_848: {threads} thread(s): {evals} evals in {wall:.3} s = {rate:.0} evals/s, speedup vs t1 {:.2}x, bit-identical: {identical}",
            rate / t1_rate
        );
        let comma = if pos + 1 == THREAD_COUNTS.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "      \"t{threads}\": {{ \"evals\": {evals}, \"wall_s\": {wall:.4}, \"evals_per_s\": {rate:.1}, \"speedup_vs_t1\": {:.3}, \"bit_identical_to_serial\": {identical} }}{comma}",
            rate / t1_rate
        );
    }
    let _ = writeln!(json, "    }},");

    // -- Sharded million-agent ABM stepping. --------------------------
    const N_1M: usize = 1_000_000;
    let graph = synthetic_graph_in_process(N_1M, 4);
    let classes = DegreeClasses::from_graph(&graph).expect("1M classes");
    let abm_params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("1M params");
    let abm_cfg = AbmConfig {
        alpha: 0.0,
        dt: 1.0,
        tf: 3.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.02,
        record_every: 3,
    };
    let n_steps = (abm_cfg.tf / abm_cfg.dt).round() as u64;
    let active = graph.degrees().into_iter().filter(|&d| d > 0).count();
    let serial_traj =
        run_sharded(&graph, &abm_params, &abm_cfg, 1_000_003, None).expect("serial sharded ABM");
    let _ = writeln!(json, "    \"abm_1m\": {{");
    let mut t1_rate = 0.0f64;
    for (pos, &threads) in THREAD_COUNTS.iter().enumerate() {
        let pool = InnerPool::new(threads);
        let start = Instant::now();
        let traj = run_sharded(&graph, &abm_params, &abm_cfg, 1_000_003, Some(&pool))
            .expect("pooled sharded ABM");
        let wall = start.elapsed().as_secs_f64();
        let identical = traj == serial_traj;
        assert!(identical, "sharded ABM diverged at {threads} thread(s)");
        let rate = active as f64 * n_steps as f64 / wall;
        if threads == 1 {
            t1_rate = rate;
        }
        println!(
            "intra abm_1m: {threads} thread(s): {active} active nodes x {n_steps} steps in {wall:.3} s = {rate:.0} node-steps/s, speedup vs t1 {:.2}x, bit-identical: {identical}",
            rate / t1_rate
        );
        let comma = if pos + 1 == THREAD_COUNTS.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "      \"t{threads}\": {{ \"active_nodes\": {active}, \"steps\": {n_steps}, \"wall_s\": {wall:.4}, \"node_steps_per_s\": {rate:.1}, \"speedup_vs_t1\": {:.3}, \"bit_identical_to_serial\": {identical} }}{comma}",
            rate / t1_rate
        );
    }
    let _ = writeln!(json, "    }}");
    json.push_str("  }");
    json
}

/// Streaming ingest of an edge list whose raw node ids all sit at or
/// above the interner's 2^24 direct-map limit, so every id takes the
/// hash-fallback path (with its geometric capacity reservation).
fn ingest_sparse_section() -> String {
    use std::io::{BufWriter, Write as _};

    const NODES: usize = 120_000;
    const EDGES: usize = 360_000;
    const BASE: u64 = 1 << 24;
    // Deterministic sparse ids spread over a 2^40 band above the limit.
    let id = |i: usize| BASE + splitmix64(0xC0FFEE ^ i as u64) % (1u64 << 40);

    let path = std::env::temp_dir().join(format!("rumor_sparse_ingest_{}.txt", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create sparse edge list");
        let mut w = BufWriter::with_capacity(1 << 20, file);
        for e in 0..EDGES {
            let a = (splitmix64(e as u64) % NODES as u64) as usize;
            let b = (splitmix64(!(e as u64)) % NODES as u64) as usize;
            if a == b {
                continue;
            }
            let mut line = String::with_capacity(32);
            let _ = writeln!(line, "{} {}", id(a), id(b));
            w.write_all(line.as_bytes()).expect("write sparse edge");
        }
        w.flush().expect("flush sparse edge list");
    }
    let start = Instant::now();
    let (graph, stats) =
        rumor_datasets::streaming::load_edge_list_path(&path, EdgeKind::Undirected)
            .expect("stream sparse edge list");
    let wall = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    assert!(
        stats.nodes as usize <= NODES,
        "id compaction must not invent nodes"
    );
    let mbytes = stats.bytes as f64 / 1e6;
    let mbytes_per_s = mbytes / wall;
    let edges_per_s = stats.edges as f64 / wall;
    println!(
        "ingest_sparse: {} nodes (all ids >= 2^24), {} edges, {mbytes:.1} MB in {wall:.3} s = {mbytes_per_s:.1} MB/s ({edges_per_s:.0} edges/s)",
        stats.nodes, stats.edges
    );
    format!(
        "{{ \"nodes\": {}, \"edges\": {}, \"bytes\": {}, \"min_raw_id\": {BASE}, \"wall_s\": {wall:.4}, \"mbytes_per_s\": {mbytes_per_s:.2}, \"edges_per_s\": {edges_per_s:.1}, \"graph_nodes\": {} }}",
        stats.nodes,
        stats.edges,
        stats.bytes,
        graph.node_count()
    )
}

/// The million-node tier: writes a deterministic synthetic edge list to
/// a temp file, streams it through the two-pass CSR ingest, then steps
/// one synchronous-ABM replica over all agents on the flat state arena.
/// Returns the `synthetic_1m` JSON object.
fn synthetic_1m_section() -> String {
    use std::io::{BufWriter, Write as _};

    const N: usize = 1_000_000;
    const OUT_DEGREE: usize = 4;

    let path = std::env::temp_dir().join(format!("rumor_synth_1m_{}.txt", std::process::id()));
    let gen_start = Instant::now();
    {
        let file = std::fs::File::create(&path).expect("create synthetic edge list");
        let mut w = BufWriter::with_capacity(1 << 20, file);
        let mut line = String::with_capacity(32);
        for u in 0..N {
            for j in 0..OUT_DEGREE {
                let v = (splitmix64((u as u64) << 3 | j as u64) % N as u64) as usize;
                if v == u {
                    continue; // self-loops carry no contact dynamics
                }
                line.clear();
                let _ = writeln!(line, "{u} {v}");
                w.write_all(line.as_bytes()).expect("write edge");
            }
        }
        w.flush().expect("flush edge list");
    }
    let gen_wall = gen_start.elapsed().as_secs_f64();

    let ingest_start = Instant::now();
    let (graph, stats) =
        rumor_datasets::streaming::load_edge_list_path(&path, EdgeKind::Undirected)
            .expect("stream 1M-node edge list");
    let ingest_wall = ingest_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    let mbytes = stats.bytes as f64 / 1e6;
    let mbytes_per_s = mbytes / ingest_wall;
    let edges_per_s = stats.edges as f64 / ingest_wall;
    println!(
        "synthetic_1m ingest: {} nodes, {} edges, {:.1} MB in {ingest_wall:.3} s = {mbytes_per_s:.1} MB/s ({edges_per_s:.0} edges/s; generation took {gen_wall:.3} s)",
        stats.nodes, stats.edges, mbytes
    );

    let classes = DegreeClasses::from_graph(&graph).expect("1M classes");
    let n_classes = classes.len();
    let abm_params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("1M params");
    let abm_cfg = AbmConfig {
        alpha: 0.0,
        dt: 1.0,
        tf: 5.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.02,
        record_every: 5,
    };
    let n_steps = (abm_cfg.tf / abm_cfg.dt).round() as u64;
    let active = graph.degrees().into_iter().filter(|&d| d > 0).count();
    let abm_start = Instant::now();
    let traj = abm::run(
        &graph,
        &abm_params,
        &abm_cfg,
        &mut StdRng::seed_from_u64(1_000_003),
    )
    .expect("1M ABM replica");
    let abm_wall = abm_start.elapsed().as_secs_f64();
    let node_steps_per_s = active as f64 * n_steps as f64 / abm_wall;
    println!(
        "synthetic_1m abm: {active} active nodes x {n_steps} steps in {abm_wall:.3} s = {node_steps_per_s:.0} node-steps/s (final infected {:.4})",
        traj.final_infected()
    );

    format!(
        "{{\n    \"ingest\": {{ \"nodes\": {}, \"edges\": {}, \"bytes\": {}, \"wall_s\": {ingest_wall:.4}, \"mbytes_per_s\": {mbytes_per_s:.2}, \"edges_per_s\": {edges_per_s:.1} }},\n    \"abm\": {{ \"active_nodes\": {active}, \"n_classes\": {n_classes}, \"steps\": {n_steps}, \"dt\": {}, \"wall_s\": {abm_wall:.4}, \"node_steps_per_s\": {node_steps_per_s:.1} }}\n  }}",
        stats.nodes, stats.edges, stats.bytes, abm_cfg.dt
    )
}

/// The competing two-rumor compartment model: RHS throughput of the
/// generalized 4-band kernels on the small-tier Digg classes, plus one
/// capped multi-control FBSM sweep on the canonical two-rumor small
/// tier (byte-for-byte the configuration of
/// `crates/control/tests/two_rumor_fbsm.rs` and the EXPERIMENTS.md
/// cost-effectiveness study), asserting genuine convergence.
fn two_rumor_section() -> String {
    use rumor_compartments::model::{CompartmentModel, CompartmentOde};
    use rumor_compartments::schedule::ConstantMultiControl;
    use rumor_control::multi::{
        optimize_compartments_monitored, MultiControlBounds, MultiFbsmOptions,
    };
    use rumor_models::two_rumor::TwoRumorModel;

    // RHS throughput on the same small-tier class structure as the
    // paper-model `rhs` workload, so the 4-band generalized kernel cost
    // is directly comparable with the 3-band legacy one.
    let ds = digg_dataset(Scale::Small);
    let params = fig4_params(&ds);
    let model =
        TwoRumorModel::from_params(&params, 0.03, 0.05, 0.08, 0.5, 5.0, 10.0).expect("model");
    let n = model.n_classes();
    let ode = CompartmentOde::new(&model, ConstantMultiControl::new(vec![0.2, 0.05]));
    let mut y = vec![0.0; model.state_dim()];
    for j in 0..n {
        y[j] = 0.88;
        y[n + j] = 0.1;
        y[2 * n + j] = 0.02;
    }
    let mut dydt = vec![0.0; y.len()];
    for _ in 0..100 {
        ode.rhs(0.0, &y, &mut dydt);
    }
    let (evals, rhs_wall, rhs_rate) = best_rate_window(200, || ode.rhs(0.0, &y, &mut dydt));
    println!(
        "two_rumor rhs: {n} classes x 4 compartments, {evals} evals in {rhs_wall:.3} s = {rhs_rate:.0} evals/s (best of {RATE_WINDOWS} windows)"
    );

    // The canonical two-rumor small tier: 12 degree classes, bounds
    // [0.2, 0.2] (wider boxes put grid nodes on the clamp boundary and
    // the Picard iteration cycles), 51 grid nodes over tf = 40. The cap
    // bounds the workload; the sweep in fact converges well inside it
    // and the final residual is asserted, so a regression in the
    // multi-control numerics fails the report instead of skewing it.
    let degrees: Vec<usize> = (0..24).map(|i| 1 + i % 12).collect();
    let classes = DegreeClasses::from_degrees(&degrees).expect("classes");
    let fbsm_params = ModelParams::builder(classes)
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("two-rumor params");
    let fbsm_model = TwoRumorModel::from_params(&fbsm_params, 0.03, 0.05, 0.08, 0.5, 5.0, 10.0)
        .expect("two-rumor model");
    let nn = fbsm_model.n_classes();
    let mut y0 = vec![0.0; fbsm_model.state_dim()];
    for j in 0..nn {
        y0[j] = 0.88;
        y0[nn + j] = 0.1;
        y0[2 * nn + j] = 0.02;
    }
    let bounds = MultiControlBounds::new(vec![0.2, 0.2]).expect("bounds");
    let options = MultiFbsmOptions {
        n_nodes: 51,
        max_iterations: 150,
        tolerance: 1e-4,
        relaxation: 0.4,
        ode: AdaptiveConfig {
            rtol: 1e-6,
            atol: 1e-8,
            ..Default::default()
        },
        inner_threads: Some(1),
        ..Default::default()
    };
    let tf = 40.0;
    let start = Instant::now();
    let sweep = optimize_compartments_monitored(&fbsm_model, &y0, tf, &bounds, &options)
        .expect("two-rumor sweep");
    let fbsm_wall = start.elapsed().as_secs_f64();
    let residual = sweep
        .change_history
        .last()
        .copied()
        .unwrap_or(f64::INFINITY);
    assert!(
        sweep.converged && residual <= 1e-4,
        "two-rumor multi-control sweep must converge to <= 1e-4, got converged {} residual {residual:.3e}",
        sweep.converged
    );
    println!(
        "two_rumor fbsm: {nn} classes, 2 control channels: {} iterations in {fbsm_wall:.3} s, residual {residual:.3e}, J = {:.4}",
        sweep.iterations,
        sweep.cost.total()
    );

    format!(
        "{{\n    \"rhs\": {{ \"n_classes\": {n}, \"n_compartments\": 4, \"evals\": {evals}, \"wall_s\": {rhs_wall:.4}, \"evals_per_s\": {rhs_rate:.1} }},\n    \"fbsm\": {{ \"n_classes\": {nn}, \"n_controls\": 2, \"grid_nodes\": {}, \"tf\": {tf}, \"iterations\": {}, \"converged\": {}, \"wall_s\": {fbsm_wall:.4}, \"final_residual\": {residual:.6e}, \"cost_total\": {:.6} }}\n  }}",
        options.n_nodes,
        sweep.iterations,
        sweep.converged,
        sweep.cost.total()
    )
}

/// The headline metrics the regression gate watches: a dotted JSON path
/// and whether larger values are better (throughputs) or worse (wall
/// times). The `synthetic_1m.*` paths only exist in `--heavy` reports;
/// the gate skips paths missing from either side, so one baseline
/// serves both the per-PR and the nightly tier.
const GATE_METRICS: [(&str, bool); 13] = [
    ("rhs.evals_per_s", true),
    ("two_rumor.rhs.evals_per_s", true),
    ("two_rumor.fbsm.wall_s", false),
    ("wire.parse_validate_per_s", true),
    ("jobs.points_per_s", true),
    ("fbsm.wall_s", false),
    ("digg_full.rhs.evals_per_s", true),
    ("intra_scaling.rhs_848.t1.evals_per_s", true),
    ("intra_scaling.costate_848.t1.evals_per_s", true),
    ("intra_scaling.abm_1m.t1.node_steps_per_s", true),
    ("ingest_sparse.mbytes_per_s", true),
    ("synthetic_1m.ingest.mbytes_per_s", true),
    ("synthetic_1m.abm.node_steps_per_s", true),
];

/// Walks a dotted path (`"digg_full.rhs.evals_per_s"`) into a parsed
/// report and returns the numeric leaf, if present.
fn lookup_metric(value: &wire::Value, path: &str) -> Option<f64> {
    let mut node = value;
    let mut segments = path.split('.').peekable();
    while let Some(segment) = segments.next() {
        if segments.peek().is_none() {
            return node.get(segment).and_then(|leaf| leaf.as_f64());
        }
        node = node.get(segment)?;
    }
    None
}

/// Compares the fresh report against the committed baseline. Every
/// watched metric is evaluated and printed as one diff row — the gate
/// never stops at the first offender — and the function returns false
/// (→ exit 1) if any metric regressed past the tolerance. Metrics
/// absent from either report are reported and skipped so the gate keeps
/// working across report-format growth and across the per-PR/nightly
/// tier split.
fn gate(current_json: &str, baseline_path: &std::path::Path, tolerance: f64) -> bool {
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf gate: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return false;
        }
    };
    let baseline = match wire::parse(&baseline_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "perf gate: baseline {} is not valid JSON: {e}",
                baseline_path.display()
            );
            return false;
        }
    };
    let current = wire::parse(current_json).expect("fresh report is valid JSON");
    println!(
        "perf gate: comparing against {} (tolerance {tolerance})",
        baseline_path.display()
    );
    println!(
        "  {:<34} {:>14} {:>14} {:>9} {:>14}  verdict",
        "metric", "baseline", "current", "delta", "limit"
    );
    let mut regressions: Vec<String> = Vec::new();
    for (path, higher_is_better) in GATE_METRICS {
        let Some(base) = lookup_metric(&baseline, path) else {
            println!("  {path:<34} not in baseline, skipped");
            continue;
        };
        let Some(now) = lookup_metric(&current, path) else {
            println!("  {path:<34} not in current run, skipped");
            continue;
        };
        let (passed, limit) = if higher_is_better {
            (now >= base * tolerance, base * tolerance)
        } else {
            (now <= base / tolerance, base / tolerance)
        };
        let delta_pct = (now / base - 1.0) * 100.0;
        println!(
            "  {path:<34} {base:>14.2} {now:>14.2} {delta_pct:>+8.1}% {limit:>14.2}  {}",
            if passed { "ok" } else { "REGRESSION" }
        );
        if !passed {
            regressions.push(format!(
                "{path}: {now:.2} vs baseline {base:.2} ({delta_pct:+.1}%, {} {limit:.2})",
                if higher_is_better { "floor" } else { "ceiling" }
            ));
        }
    }
    if !regressions.is_empty() {
        eprintln!(
            "perf gate: {} metric(s) regressed past the {tolerance}x tolerance:",
            regressions.len()
        );
        for line in &regressions {
            eprintln!("  {line}");
        }
    }
    regressions.is_empty()
}

/// One full HTTP exchange against the bench server; panics on failure
/// (the server is in-process, so failures are bugs, not flakiness).
fn http_request(server: &Server, path: &str, body: &str) -> String {
    raw_request(server.local_addr(), "POST", path, body).expect("bench request")
}

/// One full HTTP exchange; `None` on connection failure (expected under
/// deliberate overload in the admission workload).
fn raw_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response).ok()?;
    Some(String::from_utf8_lossy(&response).into_owned())
}
