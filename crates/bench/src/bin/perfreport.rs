//! `perfreport` — headline performance numbers for the allocation-free
//! hot path, the parallel ensemble layer, and the HTTP service, written
//! as machine-readable JSON to `BENCH_PR6.json` at the workspace root.
//! Runs with `rumor-obs` rollups enabled, so the report also carries a
//! `span_rollup` section: per-span-name call counts and total wall time
//! plus the instrumentation counters (steps, sweeps, replicas) observed
//! while the workloads ran.
//!
//! Doubles as the CI perf-regression gate:
//!
//! ```sh
//! perfreport [--out FILE] [--check BASELINE.json] [--tolerance F]
//! ```
//!
//! With `--check`, a handful of headline metrics from the fresh run are
//! compared against the committed baseline and the process exits 1 if
//! any throughput falls below `tolerance × baseline` (or a wall time
//! exceeds `baseline / tolerance`). The default tolerance 0.35 is
//! deliberately generous: CI runners differ wildly from the machines
//! baselines are recorded on, so the gate only catches order-of-
//! magnitude regressions (a dropped `--release`, an accidentally
//! quadratic loop), not percent-level noise.
//!
//! Seven canonical workloads:
//!
//! 1. **RHS evals/s** — the heterogeneous SIR right-hand side on the
//!    Digg-calibrated class structure (the kernel every integrator step
//!    and every FBSM pass is made of).
//! 2. **ABM replicas/s** — a 64-replica synchronous-ABM ensemble on a
//!    Digg-like power-law (Barabási–Albert) graph, serial vs. 2/4/8
//!    worker threads, with a bit-identity check of every parallel run
//!    against the serial baseline.
//! 3. **FBSM sweep wall time** — one forward–backward sweep in the
//!    paper's Fig. 4 optimal-control setting.
//! 4. **Wire throughput** — JSON parse + validation + canonicalization
//!    of a representative `/v1/simulate` body (the per-request CPU cost
//!    the service pays before any caching or compute).
//! 5. **Cache-hit vs. cold latency** — the same `/v1/simulate` request
//!    against a live in-process server over a real socket, cold
//!    (computes) then repeated (served from the LRU byte cache).
//! 6. **Sustained req/s at the admission limit** — concurrent clients
//!    hammering the server; reports the served rate plus how many
//!    requests were shed with `503` by the bounded queue.
//! 7. **Durable campaign throughput** — a 200-point threshold sweep
//!    submitted to `/v1/jobs`, measured end to end through the durable
//!    queue: journaled state transitions, per-point result persistence,
//!    and checkpoints included.
//!
//! Numbers are measured on whatever host runs the binary; the report
//! records `available_parallelism` so speedups can be judged against the
//! hardware (on a single-core host the parallel runs measure scheduling
//! overhead, not speedup).
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin perfreport
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_bench::{digg_dataset, fig4_params, Scale};
use rumor_control::fbsm::{optimize_monitored, FbsmOptions};
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::control::ConstantControl;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_core::state::NetworkState;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::barabasi_albert;
use rumor_ode::system::OdeSystem;
use rumor_serve::api::SimulateRequest;
use rumor_serve::{serve, wire, ServeConfig, Server};
use rumor_sim::abm::AbmConfig;
use rumor_sim::ensemble::{run_ensemble_threads, EnsembleResult, Simulator};
use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const ABM_REPLICAS: usize = 64;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Command-line configuration for the report/gate.
struct Config {
    out: PathBuf,
    check: Option<PathBuf>,
    tolerance: f64,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: PathBuf::from("BENCH_PR6.json"),
        check: None,
        tolerance: 0.35,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => config.out = PathBuf::from(value("--out")),
            "--check" => config.check = Some(PathBuf::from(value("--check"))),
            "--tolerance" => {
                let raw = value("--tolerance");
                config.tolerance = match raw.parse::<f64>() {
                    Ok(t) if t > 0.0 && t <= 1.0 => t,
                    _ => {
                        eprintln!("error: --tolerance must be in (0, 1], got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("error: unknown option {other:?} (expected --out, --check, --tolerance)");
                std::process::exit(2);
            }
        }
    }
    config
}

fn main() {
    let config = parse_args();
    // Span rollups (not the line sink) are on for the whole report: the
    // near-zero-cost aggregation path the workloads would run with in
    // production, surfaced as a `span_rollup` section at the end.
    rumor_obs::set_rollup(true);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("perfreport: host has {cores} available core(s)");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"pr\": 6,");
    let _ = writeln!(json, "  \"generated_by\": \"perfreport\",");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"available_parallelism\": {cores}, \"os\": \"{}\", \"arch\": \"{}\" }},",
        std::env::consts::OS,
        std::env::consts::ARCH
    );

    // ---- Workload 1: RHS evaluations per second. --------------------
    let params = {
        let ds = digg_dataset(Scale::Small);
        fig4_params(&ds)
    };
    let model = RumorModel::new(&params, ConstantControl::new(0.2, 0.05));
    let y = NetworkState::initial_uniform(params.n_classes(), 0.1)
        .expect("state")
        .to_flat();
    let mut dydt = vec![0.0; y.len()];
    // Warm up, then measure for at least ~0.3 s of wall time.
    for _ in 0..100 {
        model.rhs(0.0, &y, &mut dydt);
    }
    let start = Instant::now();
    let mut evals = 0u64;
    while start.elapsed().as_secs_f64() < 0.3 {
        for _ in 0..200 {
            model.rhs(0.0, &y, &mut dydt);
        }
        evals += 200;
    }
    let rhs_wall = start.elapsed().as_secs_f64();
    let rhs_rate = evals as f64 / rhs_wall;
    println!(
        "rhs: {} classes, {evals} evals in {rhs_wall:.3} s = {rhs_rate:.0} evals/s",
        params.n_classes()
    );
    let _ = writeln!(
        json,
        "  \"rhs\": {{ \"n_classes\": {}, \"evals\": {evals}, \"wall_s\": {rhs_wall:.4}, \"evals_per_s\": {rhs_rate:.1} }},",
        params.n_classes()
    );

    // ---- Workload 2: ABM ensemble, serial vs. N threads. ------------
    let mut rng = StdRng::seed_from_u64(7);
    let graph = barabasi_albert(2_000, 3, &mut rng).expect("graph");
    let classes = DegreeClasses::from_graph(&graph).expect("classes");
    let abm_params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("abm params");
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 5.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 10,
    };
    let run = |threads: usize| -> (f64, EnsembleResult) {
        let start = Instant::now();
        let ens = run_ensemble_threads(
            &graph,
            &abm_params,
            &cfg,
            Simulator::Synchronous,
            ABM_REPLICAS,
            42,
            Some(threads),
        )
        .expect("ensemble");
        (start.elapsed().as_secs_f64(), ens)
    };
    // Warm-up run (page-in, allocator steady state), then the baseline.
    let _ = run(1);
    let (serial_wall, serial) = run(1);
    let _ = writeln!(
        json,
        "  \"abm_ensemble\": {{\n    \"graph\": \"barabasi_albert(n=2000, m=3)\",\n    \"replicas\": {ABM_REPLICAS}, \"tf\": {}, \"dt\": {},\n    \"runs\": [",
        cfg.tf, cfg.dt
    );
    for (pos, &threads) in THREAD_COUNTS.iter().enumerate() {
        let (wall, ens) = if threads == 1 {
            (serial_wall, serial.clone())
        } else {
            run(threads)
        };
        let identical = ens
            .i_mean
            .iter()
            .zip(&serial.i_mean)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && ens
                .i_std
                .iter()
                .zip(&serial.i_std)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "parallel run diverged from serial baseline");
        let speedup = serial_wall / wall;
        let rate = ABM_REPLICAS as f64 / wall;
        println!(
            "abm: {threads} thread(s): {wall:.3} s, {rate:.1} replicas/s, speedup {speedup:.2}x, bit-identical: {identical}"
        );
        let comma = if pos + 1 == THREAD_COUNTS.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "      {{ \"threads\": {threads}, \"wall_s\": {wall:.4}, \"replicas_per_s\": {rate:.2}, \"speedup_vs_serial\": {speedup:.3}, \"bit_identical_to_serial\": {identical} }}{comma}"
        );
    }
    let _ = writeln!(json, "    ]\n  }},");

    // ---- Workload 3: one FBSM sweep in the Fig. 4 setting. ----------
    let ds = digg_dataset(Scale::Small);
    let fbsm_params = fig4_params(&ds);
    let bounds = ControlBounds::new(0.7, 0.7).expect("bounds");
    let weights = CostWeights::paper_default();
    let initial = NetworkState::initial_uniform(fbsm_params.n_classes(), 0.05).expect("initial");
    // Iteration-capped on purpose: the relative control change plateaus
    // just above tight tolerances in this setting, so the cap — not the
    // tolerance — defines a fixed-size workload whose wall time is
    // comparable across runs. `optimize_monitored` skips the divergence
    // gate that `optimize` applies to non-converged sweeps.
    let options = FbsmOptions {
        n_nodes: 81,
        max_iterations: 150,
        tolerance: 1e-4,
        relaxation: 0.3,
        ..Default::default()
    };
    let tf = 40.0;
    let start = Instant::now();
    let sweep =
        optimize_monitored(&fbsm_params, &initial, tf, &bounds, &weights, &options).expect("sweep");
    let fbsm_wall = start.elapsed().as_secs_f64();
    println!(
        "fbsm: {} classes, tf = {tf}, {} iterations (converged: {}) in {fbsm_wall:.3} s",
        fbsm_params.n_classes(),
        sweep.iterations,
        sweep.converged
    );
    let _ = writeln!(
        json,
        "  \"fbsm\": {{ \"n_classes\": {}, \"tf\": {tf}, \"grid_nodes\": {}, \"iterations\": {}, \"converged\": {}, \"wall_s\": {fbsm_wall:.4} }},",
        fbsm_params.n_classes(),
        options.n_nodes,
        sweep.iterations,
        sweep.converged
    );

    // ---- Workload 4: wire parse + validate + canonicalize. ----------
    let body = r#"{"network": {"nodes": 2000, "k_max": 60, "mean_degree": 5}, "model": {"alpha": 0.01, "lambda0": 0.02}, "eps1": 0.25, "eps2": 0.1, "tf": 120, "i0": 0.08, "n_out": 201}"#;
    for _ in 0..200 {
        let parsed = wire::parse(body).expect("wire parse");
        let _ = SimulateRequest::from_value(&parsed)
            .expect("validate")
            .canonical();
    }
    let start = Instant::now();
    let mut wire_ops = 0u64;
    while start.elapsed().as_secs_f64() < 0.3 {
        for _ in 0..500 {
            let parsed = wire::parse(body).expect("wire parse");
            let canonical = SimulateRequest::from_value(&parsed)
                .expect("validate")
                .canonical();
            std::hint::black_box(&canonical);
        }
        wire_ops += 500;
    }
    let wire_wall = start.elapsed().as_secs_f64();
    let wire_rate = wire_ops as f64 / wire_wall;
    println!(
        "wire: {wire_ops} parse+validate ops ({} B bodies) in {wire_wall:.3} s = {wire_rate:.0} ops/s",
        body.len()
    );
    let _ = writeln!(
        json,
        "  \"wire\": {{ \"body_bytes\": {}, \"ops\": {wire_ops}, \"wall_s\": {wire_wall:.4}, \"parse_validate_per_s\": {wire_rate:.1} }},",
        body.len()
    );

    // ---- Workload 5: cold vs. cache-hit /v1/simulate latency. -------
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("bind bench server");
    // The service defaults: the paper-scale Digg-like network. Heavy
    // enough that the cold/hit contrast measures the cache, not socket
    // overhead.
    let sim_body = r#"{"network": {"nodes": 5000, "k_max": 300, "mean_degree": 24}, "tf": 150}"#;
    let cold_start = Instant::now();
    let cold = http_request(&server, "/v1/simulate", sim_body);
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    assert!(
        cold.contains("X-Cache: miss"),
        "first request must be a cache miss"
    );
    // Median of repeated hits: each is a full TCP connect + parse +
    // cache lookup + response, so this is end-to-end hit latency.
    let mut hit_ms: Vec<f64> = (0..25)
        .map(|_| {
            let start = Instant::now();
            let hit = http_request(&server, "/v1/simulate", sim_body);
            assert!(hit.contains("X-Cache: hit"), "repeat must hit the cache");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    hit_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let hit_median_ms = hit_ms[hit_ms.len() / 2];
    println!(
        "serve latency: cold {cold_ms:.2} ms, cache-hit median {hit_median_ms:.3} ms ({:.0}x)",
        cold_ms / hit_median_ms
    );
    let _ = writeln!(
        json,
        "  \"serve_latency\": {{ \"cold_ms\": {cold_ms:.3}, \"cache_hit_median_ms\": {hit_median_ms:.4}, \"hit_speedup\": {:.1} }},",
        cold_ms / hit_median_ms
    );
    server.shutdown_and_join();

    // ---- Workload 6: sustained req/s at the admission limit. --------
    // More always-outstanding clients than `workers + queue_depth` can
    // hold, so the bounded queue must shed the excess with `503` while
    // the served (cache-hit) rate stays high. Counts both outcomes.
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(1),
        queue_depth: 2,
        ..ServeConfig::default()
    })
    .expect("bind admission server");
    let _ = http_request(&server, "/v1/simulate", sim_body); // warm the cache
    let clients = 8;
    let window = Duration::from_millis(600);
    let addr = server.local_addr();
    let (served, shed): (u64, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let (mut ok, mut rejected) = (0u64, 0u64);
                    let start = Instant::now();
                    while start.elapsed() < window {
                        match raw_request(addr, "POST", "/v1/simulate", sim_body) {
                            Some(response) if response.starts_with("HTTP/1.1 200") => ok += 1,
                            Some(response) if response.starts_with("HTTP/1.1 503") => {
                                rejected += 1;
                            }
                            _ => {}
                        }
                    }
                    (ok, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    });
    let served_rate = served as f64 / window.as_secs_f64();
    println!(
        "admission: {clients} clients for {:.1} s: {served} served ({served_rate:.0} req/s), {shed} shed with 503",
        window.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "  \"admission\": {{ \"clients\": {clients}, \"window_s\": {:.2}, \"served\": {served}, \"served_per_s\": {served_rate:.1}, \"shed_503\": {shed} }},",
        window.as_secs_f64()
    );
    server.shutdown_and_join();

    // ---- Workload 7: durable campaign throughput. -------------------
    // A 200-point threshold sweep through the journaled job queue: every
    // point pays the durability tax (journaled transitions, persisted
    // results, periodic checkpoints), so points/s measures the whole
    // durable path, not just the engine.
    let jobs_dir =
        std::env::temp_dir().join(format!("rumor_perfreport_jobs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&jobs_dir);
    std::fs::create_dir_all(&jobs_dir).expect("create jobs dir");
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        jobs_dir: Some(jobs_dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("bind jobs server");
    let campaign = r#"{"kind": "threshold_sweep", "points": 200, "sweep": {"from": 0.01, "to": 0.05}, "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#;
    let jobs_points = 200u64;
    let start = Instant::now();
    let submitted = http_request(&server, "/v1/jobs", campaign);
    let submit_body = submitted.split("\r\n\r\n").nth(1).unwrap_or("");
    let job_id = wire::parse(submit_body)
        .ok()
        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(str::to_string)))
        .expect("submit response carries a job id");
    let status_path = format!("/v1/jobs/{job_id}");
    loop {
        let response =
            raw_request(server.local_addr(), "GET", &status_path, "").expect("job status request");
        if response.contains("\"state\":\"done\"") {
            break;
        }
        assert!(
            !response.contains("\"failed\"") && !response.contains("\"partial\""),
            "benchmark campaign did not finish clean: {response}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(300),
            "benchmark campaign did not finish within 300 s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let jobs_wall = start.elapsed().as_secs_f64();
    let jobs_rate = jobs_points as f64 / jobs_wall;
    println!(
        "jobs: {jobs_points}-point durable threshold sweep in {jobs_wall:.3} s = {jobs_rate:.1} points/s"
    );
    let _ = writeln!(
        json,
        "  \"jobs\": {{ \"points\": {jobs_points}, \"wall_s\": {jobs_wall:.4}, \"points_per_s\": {jobs_rate:.2} }},"
    );
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&jobs_dir);

    // ---- Span rollups accumulated across every workload above. ------
    let rollup = rumor_obs::snapshot();
    println!(
        "rollup: {} span name(s), {} counter(s) aggregated",
        rollup.spans.len(),
        rollup.counters.len()
    );
    let _ = writeln!(json, "  \"span_rollup\": {},", rumor_obs::rollup_json());

    let _ = writeln!(
        json,
        "  \"notes\": [\n    \"parallel ensemble output is bit-identical to the serial run at every thread count (asserted above)\",\n    \"speedups are physical: on a host with {cores} available core(s), thread counts beyond {cores} measure scheduling overhead rather than parallel speedup\",\n    \"serve latencies are end-to-end over a real localhost socket, one connection per request\",\n    \"the admission workload intentionally overloads a queue_depth=8 pool: 503s are the bounded queue working, not a failure\"\n  ]"
    );
    json.push_str("}\n");

    // Relative --out paths land at the workspace root (two up from
    // CARGO_MANIFEST_DIR = crates/bench), absolute paths go verbatim.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = if config.out.is_absolute() {
        config.out.clone()
    } else {
        root.join(&config.out)
    };
    std::fs::write(&path, &json).expect("write report");
    println!("wrote {}", path.display());

    if let Some(baseline_path) = &config.check {
        let baseline_path = if baseline_path.is_absolute() {
            baseline_path.clone()
        } else {
            root.join(baseline_path)
        };
        if !gate(&json, &baseline_path, config.tolerance) {
            std::process::exit(1);
        }
    }
}

/// The headline metrics the regression gate watches: a JSON path and
/// whether larger values are better (throughputs) or worse (wall times).
const GATE_METRICS: [(&str, &str, bool); 4] = [
    ("rhs", "evals_per_s", true),
    ("wire", "parse_validate_per_s", true),
    ("jobs", "points_per_s", true),
    ("fbsm", "wall_s", false),
];

/// Compares the fresh report against the committed baseline. Returns
/// false (→ exit 1) when any watched metric regresses past the
/// tolerance; metrics absent from the baseline are reported and skipped
/// so the gate keeps working across report-format growth.
fn gate(current_json: &str, baseline_path: &std::path::Path, tolerance: f64) -> bool {
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf gate: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return false;
        }
    };
    let baseline = match wire::parse(&baseline_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "perf gate: baseline {} is not valid JSON: {e}",
                baseline_path.display()
            );
            return false;
        }
    };
    let current = wire::parse(current_json).expect("fresh report is valid JSON");
    let metric = |v: &wire::Value, section: &str, key: &str| {
        v.get(section)
            .and_then(|s| s.get(key))
            .and_then(|x| x.as_f64())
    };
    println!(
        "perf gate: comparing against {} (tolerance {tolerance})",
        baseline_path.display()
    );
    let mut ok = true;
    for (section, key, higher_is_better) in GATE_METRICS {
        let Some(base) = metric(&baseline, section, key) else {
            println!("  {section}.{key}: not in baseline, skipped");
            continue;
        };
        let now = metric(&current, section, key).expect("fresh report carries all gate metrics");
        let (passed, limit) = if higher_is_better {
            (now >= base * tolerance, base * tolerance)
        } else {
            (now <= base / tolerance, base / tolerance)
        };
        println!(
            "  {section}.{key}: baseline {base:.2}, current {now:.2}, {} {limit:.2} → {}",
            if higher_is_better { "floor" } else { "ceiling" },
            if passed { "ok" } else { "REGRESSION" }
        );
        ok &= passed;
    }
    if !ok {
        eprintln!("perf gate: regression past {tolerance}x tolerance (see table above)");
    }
    ok
}

/// One full HTTP exchange against the bench server; panics on failure
/// (the server is in-process, so failures are bugs, not flakiness).
fn http_request(server: &Server, path: &str, body: &str) -> String {
    raw_request(server.local_addr(), "POST", path, body).expect("bench request")
}

/// One full HTTP exchange; `None` on connection failure (expected under
/// deliberate overload in the admission workload).
fn raw_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response).ok()?;
    Some(String::from_utf8_lossy(&response).into_owned())
}
