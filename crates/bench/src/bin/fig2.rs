//! Regenerates Fig. 2 — the extinction regime (`r0 = 0.7220 < 1`).
//!
//! * Fig. 2(a): `Dist0(t) = ‖E(t) − E0‖∞` under 10 random initial
//!   conditions, all converging to 0 (global stability of `E0`,
//!   Theorem 3).
//! * Fig. 2(b–d): `S_k(t), I_k(t), R_k(t)` for degree classes spread
//!   across the partition (the paper picks i = 1, 50, …, 800 of 848).
//!
//! Writes `results/fig2a.csv` and `results/fig2bcd.csv`.
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin fig2
//! ```

use rumor_bench::{
    digg_dataset, fig2_regime, random_initial_conditions, spread_classes, write_csv, Scale,
};
use rumor_core::control::ConstantControl;
use rumor_core::equilibrium::zero_equilibrium;
use rumor_core::simulate::{simulate, SimulateOptions};
use rumor_core::state::NetworkState;

fn main() {
    let dataset = digg_dataset(Scale::from_env());
    let regime = fig2_regime(&dataset);
    let (params, eps1, eps2) = (&regime.params, regime.eps1, regime.eps2);
    println!(
        "fig2: extinction regime, r0 = {:.4} < 1 on {} degree classes",
        regime.target_r0,
        params.n_classes()
    );

    let e0 = zero_equilibrium(params, eps1, eps2).expect("E0");
    let tf = 600.0;
    let opts = SimulateOptions {
        n_out: 121,
        ..Default::default()
    };

    // --- Fig. 2(a): Dist0(t) under 10 random initial conditions.
    let initials = random_initial_conditions(params.n_classes(), 10, 0xF1620);
    let mut dist_rows: Vec<Vec<f64>> = Vec::new();
    let mut all_final = Vec::new();
    for (run, init) in initials.iter().enumerate() {
        let traj = simulate(params, ConstantControl::new(eps1, eps2), init, tf, &opts)
            .expect("fig2a simulation");
        let dist = traj.dist_series(&e0).expect("dist series");
        if run == 0 {
            dist_rows = traj.times().iter().map(|&t| vec![t]).collect();
        }
        for (row, d) in dist_rows.iter_mut().zip(&dist) {
            row.push(*d);
        }
        all_final.push(*dist.last().expect("non-empty"));
    }
    let header = {
        let runs: Vec<String> = (1..=10).map(|i| format!("dist0_run{i}")).collect();
        format!("t,{}", runs.join(","))
    };
    let path = write_csv("fig2a.csv", &header, &dist_rows);
    println!(
        "\nfig2(a): Dist0(t) under 10 initial conditions -> {}",
        path.display()
    );
    println!("   t     min(Dist0)  max(Dist0)");
    for row in dist_rows.iter().step_by(20) {
        let (min, max) = row[1..]
            .iter()
            .fold((f64::INFINITY, 0.0_f64), |(lo, hi), &d| {
                (lo.min(d), hi.max(d))
            });
        println!("{:6.1}   {:9.5}   {:9.5}", row[0], min, max);
    }
    let worst = all_final.iter().fold(0.0_f64, |m, &d| m.max(d));
    println!("all 10 runs converge to E0: max final Dist0 = {worst:.2e}");
    assert!(worst < 1e-3, "extinction must reach E0");

    // --- Fig. 2(b,c,d): per-class S/I/R curves from one initial condition.
    let init = NetworkState::initial_uniform(params.n_classes(), 0.1).expect("init");
    let traj = simulate(params, ConstantControl::new(eps1, eps2), &init, tf, &opts)
        .expect("fig2bcd simulation");
    let picks = spread_classes(params.n_classes(), 17);
    let mut rows: Vec<Vec<f64>> = traj.times().iter().map(|&t| vec![t]).collect();
    let mut headers = vec!["t".to_string()];
    for &class in &picks {
        let (s, i, r) = traj.class_series(class).expect("class series");
        let k = params.classes().degree(class);
        headers.push(format!("S_k{k}"));
        headers.push(format!("I_k{k}"));
        headers.push(format!("R_k{k}"));
        for (row, ((sv, iv), rv)) in rows.iter_mut().zip(s.iter().zip(&i).zip(&r)) {
            row.push(*sv);
            row.push(*iv);
            row.push(*rv);
        }
    }
    let path = write_csv("fig2bcd.csv", &headers.join(","), &rows);
    println!(
        "\nfig2(b,c,d): S/I/R for {} classes -> {}",
        picks.len(),
        path.display()
    );

    // Shape summary against the paper: S -> alpha/eps1, I -> 0, R -> 1 - alpha/eps1.
    let last = traj.last_state();
    let s_target = params.alpha() / eps1;
    println!(
        "terminal state vs E0 targets (paper: S -> {:.3}, I -> 0, R -> {:.3}):",
        s_target,
        1.0 - s_target
    );
    for &class in picks.iter().take(5) {
        let k = params.classes().degree(class);
        println!(
            "  k = {k:4}: S = {:.4}, I = {:.2e}, R = {:.4}",
            last.s()[class],
            last.i()[class],
            last.r()[class]
        );
    }
    assert!(last.i().iter().all(|&x| x < 1e-3), "all classes extinguish");
}
