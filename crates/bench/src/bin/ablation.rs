//! Ablation experiments beyond the paper's figures (DESIGN.md §4):
//!
//! 1. **Heterogeneity** — degree-resolved vs degree-blind (homogeneous)
//!    SIR predictions on the same aggregate scenario.
//! 2. **Infectivity family** — constant vs linear vs saturating `ω(k)`,
//!    the design choice the paper argues for in Section III.
//! 3. **ODE solver** — accuracy/steps of Euler, Heun, RK4 and DOPRI5 on
//!    the rumor system.
//! 4. **Mean field vs agent-based** — maximum deviation of the ODE from
//!    ensembles of the microscopic process.
//!
//! Writes `results/ablation_*.csv`.
//!
//! ```sh
//! cargo run --release -p rumor-bench --bin ablation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_bench::write_csv;
use rumor_core::control::ConstantControl;
use rumor_core::equilibrium::r0;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_core::simulate::{simulate, SimulateOptions};
use rumor_core::state::NetworkState;
use rumor_models::homogeneous::HomogeneousSir;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::barabasi_albert;
use rumor_ode::integrator::{Adaptive, FixedStep};
use rumor_ode::steppers::{Euler, Heun, Rk4, Stepper};
use rumor_sim::abm::AbmConfig;
use rumor_sim::ensemble::{max_deviation, mean_field_reference, run_ensemble, Simulator};

fn scale_free_classes(n: usize, seed: u64) -> (rumor_net::graph::Graph, DegreeClasses) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = barabasi_albert(n, 3, &mut rng).expect("ba graph");
    let c = DegreeClasses::from_graph(&g).expect("classes");
    (g, c)
}

fn params_with(classes: DegreeClasses, lambda0: f64, infectivity: Infectivity) -> ModelParams {
    ModelParams::builder(classes)
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
        .infectivity(infectivity)
        .build()
        .expect("params")
}

fn main() {
    heterogeneity_ablation();
    infectivity_ablation();
    solver_ablation();
    abm_ablation();
    allocation_ablation();
    adjoint_ablation();
}

/// Heterogeneous vs homogeneous predictions across spreading strengths.
fn heterogeneity_ablation() {
    println!("=== ablation 1: network heterogeneity ===");
    let (_, classes) = scale_free_classes(3_000, 41);
    let (eps1, eps2) = (0.05, 0.05);
    println!(
        "{:>9}  {:>8}  {:>12}  {:>12}",
        "lambda0", "r0", "het final I", "hom final I"
    );
    let mut rows = Vec::new();
    for lambda0 in [0.002, 0.005, 0.01, 0.02, 0.05] {
        let het = params_with(classes.clone(), lambda0, Infectivity::paper_default());
        let init = NetworkState::initial_uniform(het.n_classes(), 0.1).expect("init");
        let traj = simulate(
            &het,
            ConstantControl::new(eps1, eps2),
            &init,
            120.0,
            &SimulateOptions::default(),
        )
        .expect("het simulation");
        let het_final = traj.last_state().total_infected() / het.n_classes() as f64;

        // Homogeneous surrogate with the matched coupling strength.
        let beta = het.lambda_phi_sum() / het.mean_degree();
        let hom = HomogeneousSir::new(het.alpha(), beta, ConstantControl::new(eps1, eps2));
        let sol = Adaptive::new()
            .integrate(&hom, 0.0, &[0.9, 0.1, 0.0], 120.0)
            .expect("hom simulation");
        let hom_final = sol.last_state()[1];

        let threshold = r0(&het, eps1, eps2).expect("r0");
        println!("{lambda0:>9}  {threshold:>8.3}  {het_final:>12.5}  {hom_final:>12.5}");
        rows.push(vec![lambda0, threshold, het_final, hom_final]);
    }
    let path = write_csv(
        "ablation_heterogeneity.csv",
        "lambda0,r0,het_final_i,hom_final_i",
        &rows,
    );
    println!("-> {}\n", path.display());
}

/// Infectivity families: how ω(k) shapes the threshold and the outcome.
fn infectivity_ablation() {
    println!("=== ablation 2: infectivity family omega(k) ===");
    let (_, classes) = scale_free_classes(3_000, 42);
    let (eps1, eps2) = (0.05, 0.05);
    let families: Vec<(&str, Infectivity)> = vec![
        ("constant(1)", Infectivity::Constant { c: 1.0 }),
        ("linear k", Infectivity::Linear),
        ("saturating", Infectivity::paper_default()),
    ];
    println!("{:>12}  {:>10}  {:>12}", "omega(k)", "r0", "final I");
    let mut rows = Vec::new();
    for (idx, (name, fam)) in families.into_iter().enumerate() {
        let p = params_with(classes.clone(), 0.01, fam);
        let init = NetworkState::initial_uniform(p.n_classes(), 0.1).expect("init");
        let traj = simulate(
            &p,
            ConstantControl::new(eps1, eps2),
            &init,
            120.0,
            &SimulateOptions::default(),
        )
        .expect("simulation");
        let final_i = traj.last_state().total_infected() / p.n_classes() as f64;
        let threshold = r0(&p, eps1, eps2).expect("r0");
        println!("{name:>12}  {threshold:>10.3}  {final_i:>12.5}");
        rows.push(vec![idx as f64, threshold, final_i]);
    }
    let path = write_csv("ablation_infectivity.csv", "family_idx,r0,final_i", &rows);
    println!("(linear omega inflates hub infectivity; the saturating form bounds it)");
    println!("-> {}\n", path.display());
}

/// Fixed-step solver accuracy on the rumor system vs a tight reference.
fn solver_ablation() {
    println!("=== ablation 3: ODE solvers on the rumor system ===");
    let (_, classes) = scale_free_classes(800, 43);
    let p = params_with(classes, 0.02, Infectivity::paper_default());
    let model = RumorModel::new(&p, ConstantControl::new(0.05, 0.05));
    let y0 = NetworkState::initial_uniform(p.n_classes(), 0.1)
        .expect("init")
        .to_flat();
    let tf = 30.0;
    // Reference: tight adaptive run.
    let reference = Adaptive::with_config(rumor_ode::integrator::AdaptiveConfig {
        rtol: 1e-12,
        atol: 1e-13,
        ..Default::default()
    })
    .integrate(&model, 0.0, &y0, tf)
    .expect("reference");
    let y_ref = reference.last_state().to_vec();
    let err_of = |y: &[f64]| -> f64 {
        y.iter()
            .zip(&y_ref)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    };

    println!("{:>16}  {:>8}  {:>12}", "method", "steps", "max error");
    let mut rows = Vec::new();
    let h = 0.05;
    let steppers: Vec<(&str, Box<dyn Stepper>)> = vec![
        ("euler h=0.05", Box::new(Euler::new())),
        ("heun h=0.05", Box::new(Heun::new())),
        ("rk4 h=0.05", Box::new(Rk4::new())),
    ];
    for (idx, (name, mut stepper)) in steppers.into_iter().enumerate() {
        let mut y = y0.clone();
        let mut out = vec![0.0; y.len()];
        let n_steps = (tf / h) as usize;
        for k in 0..n_steps {
            stepper.step(&model, k as f64 * h, &y, h, &mut out);
            y.copy_from_slice(&out);
        }
        let err = err_of(&y);
        println!("{name:>16}  {n_steps:>8}  {err:>12.3e}");
        rows.push(vec![idx as f64, n_steps as f64, err]);
    }
    // Adaptive DOPRI5 at default tolerance.
    let mut drv = Adaptive::new();
    let run = drv.run(&model, 0.0, &y0, tf, None).expect("dopri5");
    let err = err_of(run.solution.last_state());
    println!(
        "{:>16}  {:>8}  {err:>12.3e}",
        "dopri5 adaptive", run.accepted
    );
    rows.push(vec![3.0, run.accepted as f64, err]);
    let path = write_csv("ablation_solvers.csv", "method_idx,steps,max_error", &rows);
    println!("-> {}\n", path.display());
    let _ = FixedStep::new(Rk4::new(), h); // silence unused-import pedantry paths
}

/// Mean-field deviation from the microscopic process.
fn abm_ablation() {
    println!("=== ablation 4: mean field vs agent-based process ===");
    let (g, classes) = scale_free_classes(2_000, 44);
    let p = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params");
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 50.0,
        eps1: 0.01,
        eps2: 0.12,
        initial_infected: 0.05,
        record_every: 50,
    };
    println!("{:>14}  {:>10}  {:>10}", "simulator", "max dev", "tail dev");
    let mut rows = Vec::new();
    for (idx, sim) in [Simulator::Synchronous, Simulator::Gillespie]
        .iter()
        .enumerate()
    {
        let ens = run_ensemble(&g, &p, &cfg, *sim, 8, 17).expect("ensemble");
        let mf = mean_field_reference(&p, &cfg, &ens.times).expect("mean field");
        let dev = max_deviation(&ens, &mf).expect("deviation");
        let tail = (ens.i_mean.last().expect("tail") - mf.last().expect("tail")).abs();
        let name = match sim {
            Simulator::Synchronous => "synchronous",
            Simulator::Gillespie => "gillespie",
        };
        println!("{name:>14}  {dev:>10.4}  {tail:>10.4}");
        rows.push(vec![idx as f64, dev, tail]);
    }
    let path = write_csv(
        "ablation_abm.csv",
        "simulator_idx,max_deviation,tail_deviation",
        &rows,
    );
    println!("-> {}", path.display());
}

/// Countermeasure allocation across degree classes at equal population
/// budget: uniform vs hub-only boost vs the r0-optimal Lagrange profile
/// `ε_i ∝ (C_i/P_i)^(1/3)`.
fn allocation_ablation() {
    use rumor_core::targeted::{targeted_r0, ClassRates, TargetedModel};
    println!("\n=== ablation 5: budget allocation across degree classes ===");
    let (_, classes) = scale_free_classes(3_000, 45);
    let p = params_with(classes, 0.02, Infectivity::paper_default());
    let budget = 0.1;
    let policies: Vec<(&str, ClassRates)> = vec![
        (
            "uniform",
            ClassRates::uniform(p.n_classes(), budget, budget).expect("uniform"),
        ),
        (
            "hub-only",
            ClassRates::hub_targeted(p.classes(), (0.02, 0.02), (0.08, 0.08), 0.2).expect("hub"),
        ),
        (
            "r0-optimal",
            ClassRates::r0_optimal(&p, budget, budget).expect("optimal"),
        ),
    ];
    println!("{:>12}  {:>10}  {:>14}", "policy", "r0", "final I (pop)");
    let mut rows = Vec::new();
    let y0 = NetworkState::initial_uniform(p.n_classes(), 0.1)
        .expect("init")
        .to_flat();
    for (idx, (name, rates)) in policies.into_iter().enumerate() {
        let threshold = targeted_r0(&p, &rates).expect("targeted r0");
        let model = TargetedModel::new(&p, rates).expect("model");
        let sol = Adaptive::new()
            .integrate(&model, 0.0, &y0, 120.0)
            .expect("integrate");
        let st = NetworkState::from_flat(sol.last_state()).expect("state");
        let final_i: f64 = st
            .i()
            .iter()
            .zip(p.classes().probabilities())
            .map(|(i, pr)| i * pr)
            .sum();
        println!("{name:>12}  {threshold:>10.4}  {final_i:>14.6}");
        rows.push(vec![idx as f64, threshold, final_i]);
    }
    let path = write_csv(
        "ablation_allocation.csv",
        "policy_idx,r0,final_i_pop",
        &rows,
    );
    println!("(hub-only starving the periphery backfires: its r0 is ~10x worse; the");
    println!(" smooth optimal profile minimizes r0 at equal budget)");
    println!("-> {}", path.display());
}

/// Exact vs paper-printed (diagonal) adjoint in the forward-backward
/// sweep: schedules and objective values.
fn adjoint_ablation() {
    use rumor_control::costate::AdjointVariant;
    use rumor_control::fbsm::{optimize, FbsmOptions};
    use rumor_control::{ControlBounds, CostWeights};
    println!("\n=== ablation 6: exact vs paper-printed adjoint in the FBSM ===");
    let (_, classes) = scale_free_classes(1_200, 46);
    let p = params_with(classes, 0.01, Infectivity::paper_default());
    let p = p
        .with_acceptance(rumor_core::functions::AcceptanceRate::LinearInDegree { lambda0: 0.15 })
        .expect("params");
    let initial = NetworkState::initial_uniform(p.n_classes(), 0.05).expect("init");
    let bounds = ControlBounds::new(0.7, 0.7).expect("bounds");
    let weights = CostWeights::paper_default();
    println!(
        "{:>16}  {:>8}  {:>10}  {:>10}",
        "adjoint", "iters", "J", "terminal I"
    );
    let mut rows = Vec::new();
    for (idx, (name, variant)) in [
        ("exact", AdjointVariant::Exact),
        ("paper-diagonal", AdjointVariant::PaperDiagonal),
    ]
    .into_iter()
    .enumerate()
    {
        let result = optimize(
            &p,
            &initial,
            60.0,
            &bounds,
            &weights,
            &FbsmOptions {
                n_nodes: 61,
                max_iterations: 250,
                tolerance: 1e-4,
                relaxation: 0.3,
                adjoint: variant,
                ..Default::default()
            },
        )
        .expect("sweep");
        let terminal = result.trajectory.last_state().total_infected();
        println!(
            "{name:>16}  {:>8}  {:>10.4}  {:>10.4}",
            result.iterations,
            result.cost.total(),
            terminal
        );
        rows.push(vec![idx as f64, result.cost.total(), terminal]);
    }
    let path = write_csv(
        "ablation_adjoint.csv",
        "variant_idx,objective,terminal_i",
        &rows,
    );
    println!("(both variants land at comparable objectives on this instance; the exact");
    println!(" adjoint is the true Hamiltonian gradient, the diagonal one drops the");
    println!(" cross-class feedback and steers to a different schedule)");
    println!("-> {}", path.display());
}
