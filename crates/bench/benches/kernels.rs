//! Criterion micro-benchmarks of the computational kernels behind the
//! experiment harness: the ODE right-hand side at Digg scale, threshold
//! and equilibrium computation, single integrator steps, the Jacobian
//! eigenvalue analysis, and agent-based simulation steps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_core::control::ConstantControl;
use rumor_core::equilibrium::{positive_equilibrium, r0, solve_theta_star, zero_equilibrium};
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_core::stability::jacobian_reduced;
use rumor_core::state::NetworkState;
use rumor_datasets::digg::{DiggConfig, DiggDataset};
use rumor_net::generators::barabasi_albert;
use rumor_numerics::eigen::spectral_abscissa;
use rumor_ode::steppers::{Dopri5, Rk4, Stepper};
use rumor_ode::system::OdeSystem;
use rumor_sim::abm::{self, AbmConfig};
use rumor_sim::ensemble;

/// Parameter bundles at two scales: the fast test scale and the full
/// 848-class Digg scale the paper evaluates on.
fn digg_params(full: bool) -> ModelParams {
    let cfg = if full {
        DiggConfig::default()
    } else {
        DiggConfig::small()
    };
    let ds = DiggDataset::synthesize(cfg).expect("dataset");
    ModelParams::builder(ds.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.01 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params")
}

fn bench_rhs(c: &mut Criterion) {
    let mut group = c.benchmark_group("rumor_rhs");
    for (label, full) in [("digg_small", false), ("digg_full", true)] {
        let params = digg_params(full);
        let model = RumorModel::new(&params, ConstantControl::new(0.2, 0.05));
        let y = NetworkState::initial_uniform(params.n_classes(), 0.1)
            .expect("state")
            .to_flat();
        let mut dydt = vec![0.0; y.len()];
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                model.rhs(black_box(0.0), black_box(&y), &mut dydt);
                black_box(dydt[0])
            })
        });
    }
    group.finish();
}

fn bench_threshold_and_equilibria(c: &mut Criterion) {
    let params = digg_params(false);
    c.bench_function("r0_threshold", |b| {
        b.iter(|| r0(black_box(&params), 0.2, 0.05).expect("r0"))
    });
    c.bench_function("zero_equilibrium", |b| {
        b.iter(|| zero_equilibrium(black_box(&params), 0.2, 0.05).expect("E0"))
    });
    // Supercritical setting for the fixed-point solve.
    let sup = ModelParams::builder(params.classes().clone())
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.01 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params");
    assert!(r0(&sup, 0.002, 0.004).expect("r0") > 1.0);
    c.bench_function("theta_star_fixed_point", |b| {
        b.iter(|| solve_theta_star(black_box(&sup), 0.002, 0.004).expect("theta*"))
    });
    c.bench_function("positive_equilibrium", |b| {
        b.iter(|| positive_equilibrium(black_box(&sup), 0.002, 0.004).expect("E+"))
    });
}

fn bench_steppers(c: &mut Criterion) {
    let params = digg_params(false);
    let model = RumorModel::new(&params, ConstantControl::new(0.2, 0.05));
    let y = NetworkState::initial_uniform(params.n_classes(), 0.1)
        .expect("state")
        .to_flat();
    let mut out = vec![0.0; y.len()];
    let mut err = vec![0.0; y.len()];
    let mut group = c.benchmark_group("stepper_single_step");
    group.bench_function("rk4", |b| {
        let mut s = Rk4::new();
        b.iter(|| {
            s.step(&model, 0.0, black_box(&y), 0.01, &mut out);
            black_box(out[0])
        })
    });
    group.bench_function("dopri5_with_error", |b| {
        let mut s = Dopri5::new();
        b.iter(|| {
            s.step_with_error(&model, 0.0, black_box(&y), 0.01, &mut out, &mut err);
            black_box(out[0])
        })
    });
    group.finish();
}

fn bench_stability(c: &mut Criterion) {
    // Moderate class count: the eigenvalue solve is O(n^3)-ish.
    let ds = DiggDataset::synthesize(DiggConfig {
        nodes: 2_000,
        k_max: 120,
        target_mean_degree: 15.0,
        ..DiggConfig::small()
    })
    .expect("dataset");
    let params = ModelParams::builder(ds.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.01 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params");
    let e0 = zero_equilibrium(&params, 0.2, 0.05).expect("E0");
    c.bench_function("jacobian_assembly", |b| {
        b.iter(|| jacobian_reduced(black_box(&params), &e0, 0.2, 0.05).expect("jacobian"))
    });
    let jac = jacobian_reduced(&params, &e0, 0.2, 0.05).expect("jacobian");
    c.bench_function("jacobian_eigenvalues", |b| {
        b.iter(|| spectral_abscissa(black_box(&jac)).expect("abscissa"))
    });
}

fn bench_abm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = barabasi_albert(2_000, 3, &mut rng).expect("graph");
    let classes = rumor_net::degree::DegreeClasses::from_graph(&g).expect("classes");
    let params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params");
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 5.0,
        eps1: 0.01,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 50,
    };
    c.bench_function("abm_sync_2k_nodes_50_steps", |b| {
        b.iter(|| {
            let mut run_rng = StdRng::seed_from_u64(1);
            abm::run(black_box(&g), &params, &cfg, &mut run_rng).expect("abm")
        })
    });
    c.bench_function("gillespie_2k_nodes_5tu", |b| {
        b.iter(|| {
            let mut run_rng = StdRng::seed_from_u64(1);
            rumor_sim::gillespie::run(black_box(&g), &params, &cfg, &mut run_rng).expect("ssa")
        })
    });
}

fn bench_theta_flat(c: &mut Criterion) {
    // The Θ contraction is the inner loop of every RHS call; since the
    // fused `ϕ_j/⟨k⟩` weight table it is a single dot product.
    let mut group = c.benchmark_group("theta_flat");
    for (label, full) in [("digg_small", false), ("digg_full", true)] {
        let params = digg_params(full);
        let model = RumorModel::new(&params, ConstantControl::new(0.2, 0.05));
        let y = NetworkState::initial_uniform(params.n_classes(), 0.1)
            .expect("state")
            .to_flat();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(model.theta_flat(black_box(&y))))
        });
    }
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    // A 16-replica synchronous-ABM ensemble, serial vs. the resolved
    // worker count — the workload the parallel execution layer exists
    // for. On a single-core host both arms measure the same work.
    let mut rng = StdRng::seed_from_u64(7);
    let g = barabasi_albert(1_000, 3, &mut rng).expect("graph");
    let classes = rumor_net::degree::DegreeClasses::from_graph(&g).expect("classes");
    let params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params");
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 2.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 10,
    };
    let mut group = c.benchmark_group("ensemble_16_replicas");
    let resolved = rumor_par::resolve_threads(None);
    let mut counts = vec![1usize];
    if resolved > 1 {
        counts.push(resolved);
    }
    for threads in counts {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                ensemble::run_ensemble_threads(
                    black_box(&g),
                    &params,
                    &cfg,
                    ensemble::Simulator::Synchronous,
                    16,
                    42,
                    Some(threads),
                )
                .expect("ensemble")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_rhs, bench_theta_flat, bench_threshold_and_equilibria, bench_steppers,
        bench_stability, bench_abm, bench_ensemble
}
criterion_main!(kernels);
