//! Property coverage for the generalized flat layout: pack/unpack round
//! trips across the kernel-relevant class counts and structured errors
//! on malformed flat lengths.

use proptest::prelude::*;
use rumor_compartments::layout::CompartmentLayout;

/// Class counts straddling the lane and partition widths, matching the
/// kernel identity suites.
const CLASS_COUNTS: [usize; 5] = [1, 7, 8, 9, 264];

/// Deterministic fill from a seed (SplitMix64), uniformly in [0, 1).
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_round_trips(
        size_idx in 0usize..CLASS_COUNTS.len(),
        n_compartments in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let n = CLASS_COUNTS[size_idx];
        let layout = CompartmentLayout::new(n, n_compartments).unwrap();
        let flat_src = fill(seed, layout.flat_dim());
        let bands: Vec<Vec<f64>> = (0..n_compartments)
            .map(|c| flat_src[c * n..(c + 1) * n].to_vec())
            .collect();
        let flat = layout.pack(&bands).unwrap();
        prop_assert_eq!(flat.len(), layout.flat_dim());
        let back = layout.unpack(&flat).unwrap();
        prop_assert_eq!(&back, &bands);
        // Band views agree with the packed order.
        for (c, band) in bands.iter().enumerate() {
            prop_assert_eq!(layout.band(&flat, c), band.as_slice());
        }
    }

    #[test]
    fn malformed_flat_lengths_are_rejected(
        size_idx in 0usize..CLASS_COUNTS.len(),
        n_compartments in 1usize..6,
        delta in 1usize..5,
        longer in 0usize..2,
        value in 0.0..1.0_f64,
    ) {
        let n = CLASS_COUNTS[size_idx];
        let layout = CompartmentLayout::new(n, n_compartments).unwrap();
        let dim = layout.flat_dim();
        let len = if longer == 1 { dim + delta } else { dim.saturating_sub(delta) };
        prop_assume!(len != dim);
        let flat = vec![value; len];
        prop_assert!(layout.unpack(&flat).is_err());
        let mut buf = flat;
        prop_assert!(layout.sanitize(&mut buf).is_err());
    }

    #[test]
    fn non_finite_values_are_rejected(
        size_idx in 0usize..CLASS_COUNTS.len(),
        poison_num in 0usize..1000,
    ) {
        let n = CLASS_COUNTS[size_idx];
        let layout = CompartmentLayout::new(n, 3).unwrap();
        let mut flat = vec![0.25; layout.flat_dim()];
        let at = poison_num % flat.len();
        flat[at] = f64::NAN;
        prop_assert!(layout.unpack(&flat).is_err());
        flat[at] = f64::INFINITY;
        prop_assert!(layout.sanitize(&mut flat).is_err());
    }
}
