//! The port's bit-identity contract against the legacy `RumorModel`.
//!
//! Same discipline as the PR 7 kernel/arena identity suites: the
//! generalized abstraction earns its keep only if the paper model on top
//! of it reproduces the original implementation bit for bit — RHS
//! evaluations, Θ reductions, and whole adaptive trajectories, serial
//! and pooled.

use rumor_compartments::model::{CompartmentModel, CompartmentOde};
use rumor_compartments::paper::PaperSir;
use rumor_compartments::schedule::PairSchedule;
use rumor_core::control::ConstantControl;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::model::RumorModel;
use rumor_core::params::ModelParams;
use rumor_net::degree::DegreeClasses;
use rumor_ode::integrator::Adaptive;
use rumor_ode::system::OdeSystem;
use rumor_par::InnerPool;
use std::sync::Arc;

/// Class counts straddling the kernel lane width (8) and the partition
/// width (256), matching the PR 7 identity suite.
const SIZES: [usize; 6] = [1, 7, 8, 9, 264, 848];

/// Deterministic pseudo-random fill (SplitMix64 mapped into [lo, hi)).
fn fill(seed: u64, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            lo + (hi - lo) * (z >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn params_for(n: usize) -> ModelParams {
    let degrees: Vec<usize> = (0..n).map(|i| 1 + i % 40).collect();
    let classes = DegreeClasses::from_degrees(&degrees).unwrap();
    ModelParams::builder(classes)
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.01 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap()
}

#[test]
fn rhs_is_bit_identical_to_rumor_model() {
    for &n in &SIZES {
        let p = params_for(n);
        let n = p.n_classes();
        let ctl = ConstantControl::new(0.17, 0.06);
        let legacy = RumorModel::new(&p, ctl);
        let port = PaperSir::from_params(&p, 5.0, 10.0).unwrap();
        let y = fill(0xC0FFEE ^ n as u64, 3 * n, 0.0, 1.0);
        let mut d_legacy = vec![0.0; 3 * n];
        let mut d_port = vec![0.0; 3 * n];
        legacy.rhs(1.3, &y, &mut d_legacy);
        port.rhs(&y, &[0.17, 0.06], None, &mut d_port);
        for (a, b) in d_legacy.iter().zip(&d_port) {
            assert_eq!(a.to_bits(), b.to_bits(), "serial rhs at n = {n}");
        }
        // Θ agrees too.
        assert_eq!(
            legacy.theta_flat(&y).to_bits(),
            port.theta_flat(&y, None).to_bits(),
            "theta at n = {n}"
        );
    }
}

#[test]
fn pooled_rhs_is_bit_identical_to_rumor_model() {
    for &n in &SIZES {
        let p = params_for(n);
        let n = p.n_classes();
        let ctl = ConstantControl::new(0.17, 0.06);
        let port = PaperSir::from_params(&p, 5.0, 10.0).unwrap();
        let y = fill(0xBEEF ^ n as u64, 3 * n, 0.0, 1.0);
        for threads in [2usize, 4] {
            let pool = Arc::new(InnerPool::new(threads));
            let legacy = RumorModel::new(&p, ctl).with_pool(Some(pool.clone()));
            let mut d_legacy = vec![0.0; 3 * n];
            let mut d_port = vec![0.0; 3 * n];
            legacy.rhs(0.0, &y, &mut d_legacy);
            port.rhs(&y, &[0.17, 0.06], Some(&pool), &mut d_port);
            for (a, b) in d_legacy.iter().zip(&d_port) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "pooled rhs at n = {n}, threads = {threads}"
                );
            }
        }
    }
}

#[test]
fn adaptive_trajectories_are_bit_identical() {
    for &n in &[7usize, 264] {
        let p = params_for(n);
        let n = p.n_classes();
        let ctl = ConstantControl::new(0.12, 0.05);
        let legacy = RumorModel::new(&p, ctl);
        let port = PaperSir::from_params(&p, 5.0, 10.0).unwrap();
        let sys = CompartmentOde::new(&port, PairSchedule(ctl));
        assert_eq!(sys.dim(), legacy.dim());
        let mut y0 = vec![0.0; 3 * n];
        for j in 0..n {
            y0[j] = 0.9;
            y0[n + j] = 0.1;
        }
        let a = Adaptive::new().integrate(&legacy, 0.0, &y0, 25.0).unwrap();
        let b = Adaptive::new().integrate(&sys, 0.0, &y0, 25.0).unwrap();
        assert_eq!(a.len(), b.len(), "step counts at n = {n}");
        for (ta, tb) in a.times().iter().zip(b.times()) {
            assert_eq!(ta.to_bits(), tb.to_bits(), "times at n = {n}");
        }
        for (ya, yb) in a.flat_states().iter().zip(b.flat_states()) {
            assert_eq!(ya.to_bits(), yb.to_bits(), "states at n = {n}");
        }
    }
}

#[test]
fn pooled_trajectory_matches_serial_port() {
    let p = params_for(300);
    let n = p.n_classes();
    let port = PaperSir::from_params(&p, 5.0, 10.0).unwrap();
    let ctl = ConstantControl::new(0.1, 0.1);
    let mut y0 = vec![0.0; 3 * n];
    for j in 0..n {
        y0[j] = 0.85;
        y0[n + j] = 0.15;
    }
    let serial_sys = CompartmentOde::new(&port, PairSchedule(ctl));
    let serial = Adaptive::new()
        .integrate(&serial_sys, 0.0, &y0, 10.0)
        .unwrap();
    for threads in [2usize, 4] {
        let pool = Arc::new(InnerPool::new(threads));
        let sys = CompartmentOde::new(&port, PairSchedule(ctl)).with_pool(Some(pool));
        let sol = Adaptive::new().integrate(&sys, 0.0, &y0, 10.0).unwrap();
        assert_eq!(sol.len(), serial.len());
        for (ya, yb) in sol.flat_states().iter().zip(serial.flat_states()) {
            assert_eq!(ya.to_bits(), yb.to_bits(), "threads = {threads}");
        }
    }
}
