//! Control schedules with a model-defined channel count.
//!
//! The legacy [`rumor_core::control::ControlSchedule`] fixes two named
//! channels (`ε1`, `ε2`). Generalized models declare `n_controls ≥ 1`
//! channels instead, and evaluate them all at once into a caller-owned
//! buffer so the ODE hot loop stays allocation-free.

/// A time-varying control vector `u(t) ∈ R^{n_controls}`.
pub trait MultiControlSchedule {
    /// Number of control channels.
    fn n_controls(&self) -> usize;

    /// Evaluates every channel at time `t` into `out`.
    ///
    /// Implementations must fill exactly `out[..n_controls]`.
    fn eval_into(&self, t: f64, out: &mut [f64]);
}

impl<C: MultiControlSchedule + ?Sized> MultiControlSchedule for &C {
    fn n_controls(&self) -> usize {
        (**self).n_controls()
    }

    fn eval_into(&self, t: f64, out: &mut [f64]) {
        (**self).eval_into(t, out)
    }
}

/// Time-constant control levels, the multi-channel analogue of
/// [`rumor_core::control::ConstantControl`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantMultiControl {
    levels: Vec<f64>,
}

impl ConstantMultiControl {
    /// Creates constant levels.
    ///
    /// # Panics
    ///
    /// Panics if any level is negative or non-finite, or if `levels` is
    /// empty — mirroring `ConstantControl::new`, which treats a bad
    /// constant rate as a programming error rather than a runtime
    /// condition.
    pub fn new(levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "need at least one control channel");
        assert!(
            levels.iter().all(|x| x.is_finite() && *x >= 0.0),
            "control levels must be non-negative and finite, got {levels:?}"
        );
        ConstantMultiControl { levels }
    }

    /// All channels off.
    pub fn none(n_controls: usize) -> Self {
        Self::new(vec![0.0; n_controls.max(1)])
    }

    /// The constant levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }
}

impl MultiControlSchedule for ConstantMultiControl {
    fn n_controls(&self) -> usize {
        self.levels.len()
    }

    fn eval_into(&self, _t: f64, out: &mut [f64]) {
        out[..self.levels.len()].copy_from_slice(&self.levels);
    }
}

/// Adapts a two-channel [`rumor_core::control::ControlSchedule`] into the
/// generalized form with `u = [ε1, ε2]` — the bridge that lets legacy
/// schedules (constant, piecewise, heuristic) drive ported models.
#[derive(Debug, Clone, Copy)]
pub struct PairSchedule<C>(pub C);

impl<C: rumor_core::control::ControlSchedule> MultiControlSchedule for PairSchedule<C> {
    fn n_controls(&self) -> usize {
        2
    }

    fn eval_into(&self, t: f64, out: &mut [f64]) {
        out[0] = self.0.eps1(t);
        out[1] = self.0.eps2(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::control::ConstantControl;

    #[test]
    fn constant_levels_everywhere() {
        let c = ConstantMultiControl::new(vec![0.3, 0.1, 0.0]);
        assert_eq!(c.n_controls(), 3);
        let mut u = [0.0; 3];
        for t in [0.0, 1.5, 99.0] {
            c.eval_into(t, &mut u);
            assert_eq!(u, [0.3, 0.1, 0.0]);
        }
        assert_eq!(ConstantMultiControl::none(2).levels(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_level_rejected() {
        let _ = ConstantMultiControl::new(vec![0.1, -0.2]);
    }

    #[test]
    fn pair_schedule_bridges_legacy_controls() {
        let c = PairSchedule(ConstantControl::new(0.2, 0.05));
        assert_eq!(c.n_controls(), 2);
        let mut u = [0.0; 2];
        c.eval_into(3.0, &mut u);
        assert_eq!(u, [0.2, 0.05]);
        // The blanket &C impl forwards.
        let by_ref = &c;
        assert_eq!(by_ref.n_controls(), 2);
    }
}
