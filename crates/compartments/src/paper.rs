//! The paper's heterogeneous S/I/R model ported onto the generalized
//! abstraction — the reference implementation.
//!
//! Every numeric path routes through exactly the same
//! `rumor_core::kernels` calls, in the same order, as
//! [`rumor_core::model::RumorModel`] and
//! `rumor_control::costate::CostateSystem`, so trajectories, adjoints,
//! and FBSM schedules are **bit-identical** to the legacy
//! implementation (pinned in `tests/paper_identity.rs` and
//! `crates/control/tests/compartment_identity.rs`). That identity is the
//! port's whole point: the generalized layer provably changes nothing
//! for the paper model, so the new models built on it inherit a
//! trustworthy foundation.

use crate::model::CompartmentModel;
use crate::{CoreError, Result};
use rumor_core::kernels;
use rumor_core::model::MassConvention;
use rumor_core::params::ModelParams;
use rumor_par::InnerPool;

/// The paper model as a [`CompartmentModel`]: 3 compartments
/// `[S, I, R]`, 2 controls `[ε1, ε2]`, 2 costates `[ψ, φ]`.
#[derive(Debug, Clone)]
pub struct PaperSir {
    lambda: Vec<f64>,
    theta_w: Vec<f64>,
    alpha: f64,
    c1: f64,
    c2: f64,
    convention: MassConvention,
}

impl PaperSir {
    /// Builds the port from validated model parameters and the cost
    /// weights `(c1, c2)` of paper Eq. (13).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-positive or
    /// non-finite cost weights.
    pub fn from_params(params: &ModelParams, c1: f64, c2: f64) -> Result<Self> {
        Self::from_parts(
            params.lambda().to_vec(),
            params.theta_weights().to_vec(),
            params.alpha(),
            c1,
            c2,
        )
    }

    /// Builds a model from raw per-class tables — the seam the
    /// tie-strength variant uses to install its `ω(k)`-modulated
    /// acceptance rates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] when the tables differ in
    /// length or are empty, and [`CoreError::InvalidParameter`] for bad
    /// scalars.
    pub fn from_parts(
        lambda: Vec<f64>,
        theta_w: Vec<f64>,
        alpha: f64,
        c1: f64,
        c2: f64,
    ) -> Result<Self> {
        if lambda.is_empty() || lambda.len() != theta_w.len() {
            return Err(CoreError::DimensionMismatch {
                expected: lambda.len().max(1),
                found: theta_w.len(),
            });
        }
        if !(alpha >= 0.0) || !alpha.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                message: format!("must be non-negative and finite, got {alpha}"),
            });
        }
        for (name, w) in [("c1", c1), ("c2", c2)] {
            if !(w > 0.0) || !w.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "cost_weight",
                    message: format!("{name} must be positive and finite, got {w}"),
                });
            }
        }
        Ok(PaperSir {
            lambda,
            theta_w,
            alpha,
            c1,
            c2,
            convention: MassConvention::default(),
        })
    }

    /// Selects the `R`-inflow convention (default: mass-conserving, the
    /// same default as `RumorModel`).
    pub fn with_convention(mut self, convention: MassConvention) -> Self {
        self.convention = convention;
        self
    }

    /// The per-class acceptance rates `λ(k_i)`.
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// The fused `ϕ_i/⟨k⟩` table used by the Θ reduction.
    pub fn theta_weights(&self) -> &[f64] {
        &self.theta_w
    }

    /// `Θ` from a flat state, via the same partitioned reduction as
    /// `RumorModel::theta_flat`.
    pub fn theta_flat(&self, y: &[f64], pool: Option<&InnerPool>) -> f64 {
        let n = self.lambda.len();
        let i = &y[n..2 * n];
        match pool {
            Some(pool) => kernels::dot_pooled(pool, &self.theta_w, i),
            None => kernels::dot_partitioned(&self.theta_w, i),
        }
    }
}

impl CompartmentModel for PaperSir {
    fn n_classes(&self) -> usize {
        self.lambda.len()
    }

    fn n_compartments(&self) -> usize {
        3
    }

    fn n_controls(&self) -> usize {
        2
    }

    fn n_costates(&self) -> usize {
        2
    }

    fn compartment_names(&self) -> &'static [&'static str] {
        &["s", "i", "r"]
    }

    fn control_names(&self) -> &'static [&'static str] {
        &["eps1", "eps2"]
    }

    fn rhs(&self, y: &[f64], u: &[f64], pool: Option<&InnerPool>, dydt: &mut [f64]) {
        let n = self.lambda.len();
        let alpha = self.alpha;
        let (eps1, eps2) = (u[0], u[1]);
        let theta = self.theta_flat(y, pool);
        let recycle = match self.convention {
            MassConvention::Conserving => alpha,
            MassConvention::AsPrinted => 0.0,
        };
        let (s, rest) = y.split_at(n);
        let inf = &rest[..n];
        let (ds, rest) = dydt.split_at_mut(n);
        let (di, dr) = rest.split_at_mut(n);
        match pool {
            Some(pool) => kernels::sir_rhs_pooled(
                pool,
                s,
                inf,
                &self.lambda,
                theta,
                alpha,
                eps1,
                eps2,
                recycle,
                ds,
                di,
                dr,
            ),
            None => kernels::sir_rhs(
                s,
                inf,
                &self.lambda,
                theta,
                alpha,
                eps1,
                eps2,
                recycle,
                ds,
                di,
                dr,
            ),
        }
    }

    fn adjoint_rhs(
        &self,
        state: &[f64],
        p: &[f64],
        u: &[f64],
        pool: Option<&InnerPool>,
        dpdt: &mut [f64],
    ) {
        let n = self.lambda.len();
        let (eps1, eps2) = (u[0], u[1]);
        let s = &state[..n];
        let i = &state[n..2 * n];
        let theta = match pool {
            Some(pool) => kernels::dot_pooled(pool, &self.theta_w, i),
            None => kernels::dot_partitioned(&self.theta_w, i),
        };
        let (psi, phi) = p.split_at(n);
        let (dpsi, dphi) = dpdt.split_at_mut(n);
        let c1e1sq2 = 2.0 * self.c1 * eps1 * eps1;
        let c2e2sq2 = 2.0 * self.c2 * eps2 * eps2;
        match pool {
            Some(pool) => {
                let coupling = kernels::coupling_sum_pooled(pool, psi, phi, &self.lambda, s);
                kernels::costate_rhs_pooled(
                    pool,
                    s,
                    i,
                    psi,
                    phi,
                    &self.lambda,
                    &self.theta_w,
                    theta,
                    coupling,
                    c1e1sq2,
                    c2e2sq2,
                    eps1,
                    eps2,
                    dpsi,
                    dphi,
                );
            }
            None => {
                let coupling = kernels::coupling_sum_partitioned(psi, phi, &self.lambda, s);
                kernels::costate_rhs(
                    s,
                    i,
                    psi,
                    phi,
                    &self.lambda,
                    &self.theta_w,
                    theta,
                    coupling,
                    c1e1sq2,
                    c2e2sq2,
                    eps1,
                    eps2,
                    dpsi,
                    dphi,
                );
            }
        }
    }

    fn terminal_condition(&self, weight: f64, out: &mut [f64]) {
        let n = self.lambda.len();
        for v in out[..n].iter_mut() {
            *v = 0.0;
        }
        for v in out[n..2 * n].iter_mut() {
            *v = weight;
        }
    }

    fn stationary_controls(&self, state: &[f64], p: &[f64], out: &mut [f64]) {
        let n = self.lambda.len();
        let (s, i) = (&state[..n], &state[n..2 * n]);
        let (psi, phi) = (&p[..n], &p[n..2 * n]);
        let s2 = kernels::dot(s, s);
        let i2 = kernels::dot(i, i);
        let num1 = kernels::dot(psi, s);
        let num2 = kernels::dot(phi, i);
        out[0] = if s2 > 0.0 {
            num1 / (2.0 * self.c1 * s2)
        } else {
            0.0
        };
        out[1] = if i2 > 0.0 {
            num2 / (2.0 * self.c2 * i2)
        } else {
            0.0
        };
    }

    fn running_cost(&self, state: &[f64], u: &[f64], out: &mut [f64]) {
        let n = self.lambda.len();
        // Naive left-fold sums, matching `rumor_control::cost::evaluate`
        // bit for bit.
        let s2: f64 = state[..n].iter().map(|x| x * x).sum();
        let i2: f64 = state[n..2 * n].iter().map(|x| x * x).sum();
        out[0] = self.c1 * u[0] * u[0] * s2;
        out[1] = self.c2 * u[1] * u[1] * i2;
    }

    fn terminal_objective(&self, state: &[f64]) -> f64 {
        let n = self.lambda.len();
        state[n..2 * n].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_validates() {
        assert!(PaperSir::from_parts(vec![], vec![], 0.0, 5.0, 10.0).is_err());
        assert!(PaperSir::from_parts(vec![0.1], vec![0.2, 0.3], 0.0, 5.0, 10.0).is_err());
        assert!(PaperSir::from_parts(vec![0.1], vec![0.2], -1.0, 5.0, 10.0).is_err());
        assert!(PaperSir::from_parts(vec![0.1], vec![0.2], 0.0, 0.0, 10.0).is_err());
        assert!(PaperSir::from_parts(vec![0.1], vec![0.2], 0.0, 5.0, f64::NAN).is_err());
        let m = PaperSir::from_parts(vec![0.1, 0.2], vec![0.3, 0.4], 0.01, 5.0, 10.0).unwrap();
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.state_dim(), 6);
        assert_eq!(m.costate_dim(), 4);
        assert_eq!(m.compartment_names(), &["s", "i", "r"]);
        assert_eq!(m.control_names(), &["eps1", "eps2"]);
    }

    #[test]
    fn terminal_condition_and_objective() {
        let m = PaperSir::from_parts(vec![0.1, 0.2], vec![0.3, 0.4], 0.01, 5.0, 10.0).unwrap();
        let mut term = vec![f64::NAN; 4];
        m.terminal_condition(2.5, &mut term);
        assert_eq!(term, vec![0.0, 0.0, 2.5, 2.5]);
        let state = [0.5, 0.6, 0.2, 0.1, 0.3, 0.3];
        assert!((m.terminal_objective(&state) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn stationary_controls_match_closed_form() {
        // Mirrors `costate::stationary_controls_formula` with c1=2, c2=4.
        let m = PaperSir::from_parts(vec![0.1; 2], vec![0.3; 2], 0.0, 2.0, 4.0).unwrap();
        // state = [s0,s1, i0,i1, r0,r1]; adjoint = [psi0,psi1, phi0,phi1].
        // Use a 2-class embedding of the 1-class doc example for i/phi.
        let state = [0.5, 0.5, 0.2, 0.0, 0.0, 0.0];
        let p = [1.0, 2.0, 3.0, 0.0];
        let mut u = [0.0; 2];
        m.stationary_controls(&state, &p, &mut u);
        assert!((u[0] - 0.75).abs() < 1e-12);
        assert!((u[1] - 1.875).abs() < 1e-12);
    }

    #[test]
    fn mass_convention_switches_recycle_term() {
        let m = PaperSir::from_parts(vec![0.5], vec![1.0], 0.01, 5.0, 10.0).unwrap();
        let y = [0.8, 0.15, 0.05];
        let mut d = [0.0; 3];
        m.rhs(&y, &[0.1, 0.2], None, &mut d);
        // Conserving: class mass derivative sums to zero.
        assert!((d[0] + d[1] + d[2]).abs() < 1e-15);
        let printed = m.clone().with_convention(MassConvention::AsPrinted);
        printed.rhs(&y, &[0.1, 0.2], None, &mut d);
        assert!((d[0] + d[1] + d[2] - 0.01).abs() < 1e-15);
    }
}
