//! The flat-state layout contract shared by every compartment model.
//!
//! A state is stored compartment-major: band `c` occupies
//! `flat[c·n .. (c+1)·n]` for `n = n_classes`. The paper's
//! `[S.., I.., R..]` layout is the `n_compartments = 3` special case, so
//! [`rumor_core::state::NetworkState::to_flat`] already produces this
//! shape and the generalized code paths interoperate with the legacy
//! ones without any reshuffling.

use crate::{CoreError, Result};

/// A fixed `(n_classes, n_compartments)` flat layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompartmentLayout {
    n_classes: usize,
    n_compartments: usize,
}

impl CompartmentLayout {
    /// Creates a layout.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if either dimension is
    /// zero.
    pub fn new(n_classes: usize, n_compartments: usize) -> Result<Self> {
        if n_classes == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n_classes",
                message: "layout needs at least one degree class".into(),
            });
        }
        if n_compartments == 0 {
            return Err(CoreError::InvalidParameter {
                name: "n_compartments",
                message: "layout needs at least one compartment".into(),
            });
        }
        Ok(CompartmentLayout {
            n_classes,
            n_compartments,
        })
    }

    /// Number of degree classes per band.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of compartment bands.
    pub fn n_compartments(&self) -> usize {
        self.n_compartments
    }

    /// Length of a flat state vector: `n_classes × n_compartments`.
    pub fn flat_dim(&self) -> usize {
        self.n_classes * self.n_compartments
    }

    /// Band `c` of a flat state.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_compartments` or the slice is shorter than the
    /// layout's flat dimension.
    pub fn band<'a>(&self, flat: &'a [f64], c: usize) -> &'a [f64] {
        assert!(c < self.n_compartments, "band {c} out of range");
        &flat[c * self.n_classes..(c + 1) * self.n_classes]
    }

    /// Mutable band `c` of a flat state.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_compartments` or the slice is too short.
    pub fn band_mut<'a>(&self, flat: &'a mut [f64], c: usize) -> &'a mut [f64] {
        assert!(c < self.n_compartments, "band {c} out of range");
        &mut flat[c * self.n_classes..(c + 1) * self.n_classes]
    }

    /// Packs per-compartment bands into the flat form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] on a wrong band count or
    /// band length, and [`CoreError::InvalidParameter`] on a negative or
    /// non-finite density (same contract as
    /// [`rumor_core::state::NetworkState::new`]).
    pub fn pack(&self, bands: &[Vec<f64>]) -> Result<Vec<f64>> {
        if bands.len() != self.n_compartments {
            return Err(CoreError::DimensionMismatch {
                expected: self.n_compartments,
                found: bands.len(),
            });
        }
        let mut flat = Vec::with_capacity(self.flat_dim());
        for band in bands {
            if band.len() != self.n_classes {
                return Err(CoreError::DimensionMismatch {
                    expected: self.n_classes,
                    found: band.len(),
                });
            }
            if band.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(CoreError::InvalidParameter {
                    name: "density",
                    message: "compartment band contains a negative or non-finite value".into(),
                });
            }
            flat.extend_from_slice(band);
        }
        Ok(flat)
    }

    /// Unpacks a flat state into per-compartment bands, clamping tiny
    /// integrator-induced negatives to zero — the generalized analogue of
    /// [`rumor_core::state::NetworkState::from_flat`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] on a malformed length and
    /// [`CoreError::InvalidParameter`] on non-finite values.
    pub fn unpack(&self, flat: &[f64]) -> Result<Vec<Vec<f64>>> {
        if flat.len() != self.flat_dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.flat_dim(),
                found: flat.len(),
            });
        }
        if flat.iter().any(|x| !x.is_finite()) {
            return Err(CoreError::InvalidParameter {
                name: "flat",
                message: "state contains non-finite values".into(),
            });
        }
        let n = self.n_classes;
        Ok((0..self.n_compartments)
            .map(|c| {
                flat[c * n..(c + 1) * n]
                    .iter()
                    .map(|x| x.max(0.0))
                    .collect()
            })
            .collect())
    }

    /// Validates a flat state in place: length must match, values must be
    /// finite, and tiny negatives are clamped to zero with exactly the
    /// `x.max(0.0)` rule of
    /// [`rumor_core::state::NetworkState::from_flat`] — so sanitized
    /// samples are bit-identical to the legacy path on the 3-band layout.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] on a malformed length and
    /// [`CoreError::InvalidParameter`] on non-finite values.
    pub fn sanitize(&self, flat: &mut [f64]) -> Result<()> {
        if flat.len() != self.flat_dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.flat_dim(),
                found: flat.len(),
            });
        }
        if flat.iter().any(|x| !x.is_finite()) {
            return Err(CoreError::InvalidParameter {
                name: "flat",
                message: "state contains non-finite values".into(),
            });
        }
        for x in flat.iter_mut() {
            *x = x.max(0.0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(CompartmentLayout::new(0, 3).is_err());
        assert!(CompartmentLayout::new(3, 0).is_err());
        let l = CompartmentLayout::new(5, 4).unwrap();
        assert_eq!(l.n_classes(), 5);
        assert_eq!(l.n_compartments(), 4);
        assert_eq!(l.flat_dim(), 20);
    }

    #[test]
    fn bands_slice_compartment_major() {
        let l = CompartmentLayout::new(2, 3).unwrap();
        let flat = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(l.band(&flat, 0), &[1.0, 2.0]);
        assert_eq!(l.band(&flat, 1), &[3.0, 4.0]);
        assert_eq!(l.band(&flat, 2), &[5.0, 6.0]);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let l = CompartmentLayout::new(3, 2).unwrap();
        let bands = vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]];
        let flat = l.pack(&bands).unwrap();
        assert_eq!(flat, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(l.unpack(&flat).unwrap(), bands);
    }

    #[test]
    fn pack_rejects_bad_shapes_and_values() {
        let l = CompartmentLayout::new(2, 2).unwrap();
        assert!(l.pack(&[vec![0.1, 0.2]]).is_err());
        assert!(l.pack(&[vec![0.1], vec![0.2, 0.3]]).is_err());
        assert!(l.pack(&[vec![0.1, -0.2], vec![0.2, 0.3]]).is_err());
        assert!(l.pack(&[vec![0.1, f64::NAN], vec![0.2, 0.3]]).is_err());
    }

    #[test]
    fn unpack_rejects_malformed_lengths() {
        let l = CompartmentLayout::new(2, 2).unwrap();
        assert!(l.unpack(&[0.1; 3]).is_err());
        assert!(l.unpack(&[]).is_err());
        assert!(l.unpack(&[0.1, 0.2, 0.3, f64::INFINITY]).is_err());
    }

    #[test]
    fn unpack_and_sanitize_clamp_negatives() {
        let l = CompartmentLayout::new(1, 3).unwrap();
        let bands = l.unpack(&[-1e-12, 0.5, 0.5]).unwrap();
        assert_eq!(bands[0][0], 0.0);
        let mut flat = [-1e-12, 0.5, 0.5];
        l.sanitize(&mut flat).unwrap();
        assert_eq!(flat[0], 0.0);
        let mut short = [0.1, 0.2];
        assert!(l.sanitize(&mut short).is_err());
    }
}
