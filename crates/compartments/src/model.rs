//! The generalized compartment-model trait and its ODE adapters.

use crate::layout::CompartmentLayout;
use crate::schedule::MultiControlSchedule;
use rumor_ode::solution::Solution;
use rumor_ode::system::OdeSystem;
use rumor_par::InnerPool;
use std::cell::RefCell;
use std::sync::Arc;

/// A propagation model with a model-defined number of compartments per
/// degree class and `n_controls ≥ 1` countermeasure channels.
///
/// The contract generalizes exactly what `RumorModel`, `CostateSystem`
/// and the FBSM stationary conditions hardwire for the paper's S/I/R
/// system:
///
/// * **State** lives in the compartment-major flat layout of
///   [`CompartmentLayout`] (`n_compartments` bands of `n_classes`).
/// * **Controls** arrive pre-evaluated as a slice `u[..n_controls]`, so
///   the model never touches schedules or time directly and the ODE hot
///   loop stays allocation-free.
/// * **Kernels** stay on the hot path: both RHS methods receive an
///   optional [`InnerPool`] and implementations are expected to route
///   their Θ-style reductions and element-wise bodies through the
///   partitioned `rumor_core::kernels`, which keeps every trajectory
///   bit-identical at any thread count.
/// * **Adjoint** (`n_costates` bands) plus the stationary controls and
///   the per-channel cost integrands are what the generic multi-control
///   FBSM in `rumor-control` sweeps over; a model that only simulates
///   may leave the adjoint methods at their panicking defaults.
pub trait CompartmentModel {
    /// Number of degree classes.
    fn n_classes(&self) -> usize;

    /// Number of state compartments per class.
    fn n_compartments(&self) -> usize;

    /// Number of control channels.
    fn n_controls(&self) -> usize;

    /// Number of adjoint (costate) bands per class.
    fn n_costates(&self) -> usize;

    /// Compartment band names, in layout order (for serialization and
    /// display; must have length `n_compartments`).
    fn compartment_names(&self) -> &'static [&'static str];

    /// Control channel names, in `u` index order (length `n_controls`).
    fn control_names(&self) -> &'static [&'static str];

    /// Flat state dimension.
    fn state_dim(&self) -> usize {
        self.n_classes() * self.n_compartments()
    }

    /// Flat costate dimension.
    fn costate_dim(&self) -> usize {
        self.n_classes() * self.n_costates()
    }

    /// The model's state layout.
    fn layout(&self) -> CompartmentLayout {
        CompartmentLayout::new(self.n_classes(), self.n_compartments())
            .expect("model dimensions are positive")
    }

    /// State derivative `dy/dt` at state `y` under controls `u`.
    fn rhs(&self, y: &[f64], u: &[f64], pool: Option<&InnerPool>, dydt: &mut [f64]);

    /// Adjoint derivative `dp/dt` at forward state `state`, costate `p`,
    /// controls `u`.
    fn adjoint_rhs(
        &self,
        state: &[f64],
        p: &[f64],
        u: &[f64],
        pool: Option<&InnerPool>,
        dpdt: &mut [f64],
    );

    /// Transversality condition at `tf` for terminal weight `w`, written
    /// into `out[..costate_dim]`.
    fn terminal_condition(&self, weight: f64, out: &mut [f64]);

    /// The unclamped stationary controls at one `(state, costate)`
    /// sample, written into `out[..n_controls]`.
    fn stationary_controls(&self, state: &[f64], p: &[f64], out: &mut [f64]);

    /// Per-channel running-cost integrands at one sample, written into
    /// `out[..n_controls]` (channel `c` carries the expenditure of
    /// control `c`, e.g. `c1 u1² Σ S_i²`).
    fn running_cost(&self, state: &[f64], u: &[f64], out: &mut [f64]);

    /// The terminal objective (e.g. `Σ I_i(tf)`).
    fn terminal_objective(&self, state: &[f64]) -> f64;
}

impl<M: CompartmentModel + ?Sized> CompartmentModel for &M {
    fn n_classes(&self) -> usize {
        (**self).n_classes()
    }

    fn n_compartments(&self) -> usize {
        (**self).n_compartments()
    }

    fn n_controls(&self) -> usize {
        (**self).n_controls()
    }

    fn n_costates(&self) -> usize {
        (**self).n_costates()
    }

    fn compartment_names(&self) -> &'static [&'static str] {
        (**self).compartment_names()
    }

    fn control_names(&self) -> &'static [&'static str] {
        (**self).control_names()
    }

    fn rhs(&self, y: &[f64], u: &[f64], pool: Option<&InnerPool>, dydt: &mut [f64]) {
        (**self).rhs(y, u, pool, dydt)
    }

    fn adjoint_rhs(
        &self,
        state: &[f64],
        p: &[f64],
        u: &[f64],
        pool: Option<&InnerPool>,
        dpdt: &mut [f64],
    ) {
        (**self).adjoint_rhs(state, p, u, pool, dpdt)
    }

    fn terminal_condition(&self, weight: f64, out: &mut [f64]) {
        (**self).terminal_condition(weight, out)
    }

    fn stationary_controls(&self, state: &[f64], p: &[f64], out: &mut [f64]) {
        (**self).stationary_controls(state, p, out)
    }

    fn running_cost(&self, state: &[f64], u: &[f64], out: &mut [f64]) {
        (**self).running_cost(state, u, out)
    }

    fn terminal_objective(&self, state: &[f64]) -> f64 {
        (**self).terminal_objective(state)
    }
}

/// Binds a compartment model to a control schedule as a forward
/// [`OdeSystem`] — the generalized counterpart of
/// [`rumor_core::model::RumorModel`].
pub struct CompartmentOde<'m, M, C> {
    model: &'m M,
    control: C,
    /// Optional intra-replica worker pool, forwarded to the model's
    /// kernels; bit-identical with and without a pool at every size.
    pool: Option<Arc<InnerPool>>,
    /// Scratch for the evaluated control vector (no allocation in `rhs`).
    u_scratch: RefCell<Vec<f64>>,
}

impl<'m, M: CompartmentModel, C: MultiControlSchedule> CompartmentOde<'m, M, C> {
    /// Binds model and schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's channel count differs from the model's.
    pub fn new(model: &'m M, control: C) -> Self {
        assert_eq!(
            control.n_controls(),
            model.n_controls(),
            "schedule channel count must match the model"
        );
        let n_controls = model.n_controls();
        CompartmentOde {
            model,
            control,
            pool: None,
            u_scratch: RefCell::new(vec![0.0; n_controls]),
        }
    }

    /// Attaches (or detaches, with `None`) an intra-replica worker pool.
    pub fn with_pool(mut self, pool: Option<Arc<InnerPool>>) -> Self {
        self.pool = pool;
        self
    }

    /// The bound model.
    pub fn model(&self) -> &M {
        self.model
    }
}

impl<M: CompartmentModel, C: MultiControlSchedule> OdeSystem for CompartmentOde<'_, M, C> {
    fn dim(&self) -> usize {
        self.model.state_dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let mut u = self.u_scratch.borrow_mut();
        self.control.eval_into(t, &mut u);
        self.model.rhs(y, &u, self.pool.as_deref(), dydt);
    }
}

impl<M, C> std::fmt::Debug for CompartmentOde<'_, M, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompartmentOde").finish_non_exhaustive()
    }
}

/// The backward adjoint system of a compartment model, bound to a stored
/// forward trajectory — the generalized counterpart of
/// `rumor_control::costate::CostateSystem`.
pub struct CompartmentAdjoint<'a, M, C> {
    model: &'a M,
    forward: &'a Solution,
    control: C,
    pool: Option<Arc<InnerPool>>,
    u_scratch: RefCell<Vec<f64>>,
    /// Scratch for sampling the forward state inside `rhs` without
    /// allocating.
    state_scratch: RefCell<Vec<f64>>,
}

impl<'a, M: CompartmentModel, C: MultiControlSchedule> CompartmentAdjoint<'a, M, C> {
    /// Binds the adjoint to a forward trajectory and its schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's channel count differs from the model's,
    /// or the forward solution's dimension is not the model's state
    /// dimension.
    pub fn new(model: &'a M, forward: &'a Solution, control: C) -> Self {
        assert_eq!(
            control.n_controls(),
            model.n_controls(),
            "schedule channel count must match the model"
        );
        assert_eq!(
            forward.dim(),
            model.state_dim(),
            "forward trajectory dimension must match the model"
        );
        let n_controls = model.n_controls();
        let dim = forward.dim();
        CompartmentAdjoint {
            model,
            forward,
            control,
            pool: None,
            u_scratch: RefCell::new(vec![0.0; n_controls]),
            state_scratch: RefCell::new(vec![0.0; dim]),
        }
    }

    /// Attaches (or detaches, with `None`) an intra-replica worker pool.
    pub fn with_pool(mut self, pool: Option<Arc<InnerPool>>) -> Self {
        self.pool = pool;
        self
    }

    /// The transversality condition at `tf` for terminal weight `w`.
    pub fn weighted_terminal_condition(&self, weight: f64) -> Vec<f64> {
        let mut y = vec![0.0; self.model.costate_dim()];
        self.model.terminal_condition(weight, &mut y);
        y
    }
}

impl<M: CompartmentModel, C: MultiControlSchedule> OdeSystem for CompartmentAdjoint<'_, M, C> {
    fn dim(&self) -> usize {
        self.model.costate_dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let mut u = self.u_scratch.borrow_mut();
        self.control.eval_into(t, &mut u);
        let mut state = self.state_scratch.borrow_mut();
        self.forward
            .sample_into(t, &mut state)
            .expect("forward trajectory must cover the adjoint's time span");
        self.model
            .adjoint_rhs(&state, y, &u, self.pool.as_deref(), dydt);
    }
}

impl<M, C> std::fmt::Debug for CompartmentAdjoint<'_, M, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompartmentAdjoint").finish_non_exhaustive()
    }
}
