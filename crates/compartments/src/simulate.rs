//! Grid simulation of compartment models — the generalized counterpart
//! of [`rumor_core::simulate`].

use crate::layout::CompartmentLayout;
use crate::model::{CompartmentModel, CompartmentOde};
use crate::schedule::MultiControlSchedule;
use crate::{CoreError, Result};
use rumor_ode::integrator::{Adaptive, AdaptiveConfig};
use rumor_par::InnerPool;
use std::sync::Arc;

/// Output grid and integrator tolerances, mirroring the defaults of
/// [`rumor_core::simulate::SimulateOptions`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompartmentSimOptions {
    /// Number of uniformly spaced output samples (including both ends).
    pub n_out: usize,
    /// Integrator tolerances.
    pub ode: AdaptiveConfig,
}

impl Default for CompartmentSimOptions {
    fn default() -> Self {
        CompartmentSimOptions {
            n_out: 201,
            ode: AdaptiveConfig {
                rtol: 1e-8,
                atol: 1e-10,
                ..AdaptiveConfig::default()
            },
        }
    }
}

/// A sampled trajectory of a compartment model: sanitized flat states on
/// an output grid, with band access through the model's layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CompartmentTrajectory {
    layout: CompartmentLayout,
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
}

impl CompartmentTrajectory {
    /// Assembles a trajectory from parts (lengths must agree and states
    /// must match the layout).
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or an empty grid, mirroring
    /// `Trajectory::from_parts`.
    pub fn from_parts(layout: CompartmentLayout, times: Vec<f64>, states: Vec<Vec<f64>>) -> Self {
        assert_eq!(times.len(), states.len(), "times/states length mismatch");
        assert!(!times.is_empty(), "trajectory cannot be empty");
        assert!(
            states.iter().all(|s| s.len() == layout.flat_dim()),
            "state length must match the layout"
        );
        CompartmentTrajectory {
            layout,
            times,
            states,
        }
    }

    /// The state layout.
    pub fn layout(&self) -> CompartmentLayout {
        self.layout
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled flat states.
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trajectory is empty (never true for a constructed
    /// trajectory).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The final flat state.
    pub fn last_state(&self) -> &[f64] {
        self.states.last().expect("non-empty trajectory")
    }

    /// Band `c` of sample `idx`.
    pub fn band(&self, idx: usize, c: usize) -> &[f64] {
        self.layout.band(&self.states[idx], c)
    }

    /// The per-sample total density of compartment `c`
    /// (`Σ_i C_{c,i}(t)`).
    pub fn total_series(&self, c: usize) -> Vec<f64> {
        self.states
            .iter()
            .map(|s| self.layout.band(s, c).iter().sum())
            .collect()
    }
}

/// Simulates a compartment model on an explicit output grid
/// (`grid[0] == 0`, non-decreasing). Samples are sanitized through
/// [`CompartmentLayout::sanitize`], which mirrors the clamping of
/// `NetworkState::from_flat`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for a malformed grid or
/// initial state, and propagates integration failures.
pub fn simulate_compartments_grid<M: CompartmentModel, C: MultiControlSchedule>(
    model: &M,
    control: C,
    y0: &[f64],
    grid: &[f64],
    options: &CompartmentSimOptions,
    pool: Option<Arc<InnerPool>>,
) -> Result<CompartmentTrajectory> {
    if grid.len() < 2 || grid[0] != 0.0 || grid.windows(2).any(|w| w[1] < w[0]) {
        return Err(CoreError::InvalidParameter {
            name: "grid",
            message: "output grid must start at 0 and be non-decreasing with >= 2 nodes".into(),
        });
    }
    if y0.len() != model.state_dim() {
        return Err(CoreError::DimensionMismatch {
            expected: model.state_dim(),
            found: y0.len(),
        });
    }
    let layout = model.layout();
    let tf = *grid.last().expect("non-empty grid");
    let sys = CompartmentOde::new(model, control).with_pool(pool);
    let sol = Adaptive::with_config(options.ode).integrate(&sys, 0.0, y0, tf)?;
    let mut states = Vec::with_capacity(grid.len());
    for &t in grid {
        let mut flat = sol.sample(t)?;
        layout.sanitize(&mut flat)?;
        states.push(flat);
    }
    Ok(CompartmentTrajectory::from_parts(
        layout,
        grid.to_vec(),
        states,
    ))
}

/// Simulates over `[0, tf]` on a uniform `options.n_out`-point grid.
///
/// # Errors
///
/// As [`simulate_compartments_grid`], plus
/// [`CoreError::InvalidParameter`] for a non-positive horizon or fewer
/// than two output points.
pub fn simulate_compartments<M: CompartmentModel, C: MultiControlSchedule>(
    model: &M,
    control: C,
    y0: &[f64],
    tf: f64,
    options: &CompartmentSimOptions,
    pool: Option<Arc<InnerPool>>,
) -> Result<CompartmentTrajectory> {
    if !(tf > 0.0) || !tf.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "tf",
            message: format!("final time must be positive and finite, got {tf}"),
        });
    }
    if options.n_out < 2 {
        return Err(CoreError::InvalidParameter {
            name: "n_out",
            message: "need at least two output samples".into(),
        });
    }
    let grid: Vec<f64> = (0..options.n_out)
        .map(|i| tf * i as f64 / (options.n_out - 1) as f64)
        .collect();
    simulate_compartments_grid(model, control, y0, &grid, options, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::PaperSir;
    use crate::schedule::ConstantMultiControl;

    fn model() -> PaperSir {
        PaperSir::from_parts(vec![0.1, 0.2, 0.4], vec![0.05, 0.1, 0.2], 0.01, 5.0, 10.0).unwrap()
    }

    fn y0() -> Vec<f64> {
        vec![0.9, 0.9, 0.9, 0.1, 0.1, 0.1, 0.0, 0.0, 0.0]
    }

    #[test]
    fn uniform_simulation_runs_and_conserves_mass() {
        let m = model();
        let traj = simulate_compartments(
            &m,
            ConstantMultiControl::new(vec![0.05, 0.02]),
            &y0(),
            10.0,
            &CompartmentSimOptions {
                n_out: 21,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(traj.len(), 21);
        assert_eq!(traj.times()[0], 0.0);
        assert!(!traj.is_empty());
        let last = traj.last_state();
        for j in 0..3 {
            let mass = last[j] + last[3 + j] + last[6 + j];
            assert!((mass - 1.0).abs() < 1e-6, "class {j}: mass {mass}");
        }
        // Band access agrees with the total series.
        let i_tot: f64 = traj.band(traj.len() - 1, 1).iter().sum();
        assert!((traj.total_series(1).last().unwrap() - i_tot).abs() < 1e-15);
    }

    #[test]
    fn grid_validation() {
        let m = model();
        let c = ConstantMultiControl::none(2);
        let opts = CompartmentSimOptions::default();
        assert!(simulate_compartments_grid(&m, &c, &y0(), &[0.0], &opts, None).is_err());
        assert!(simulate_compartments_grid(&m, &c, &y0(), &[1.0, 2.0], &opts, None).is_err());
        assert!(simulate_compartments_grid(&m, &c, &y0(), &[0.0, 2.0, 1.0], &opts, None).is_err());
        assert!(simulate_compartments_grid(&m, &c, &[0.1; 4], &[0.0, 1.0], &opts, None).is_err());
        assert!(simulate_compartments(&m, &c, &y0(), 0.0, &opts, None).is_err());
        assert!(simulate_compartments(
            &m,
            &c,
            &y0(),
            1.0,
            &CompartmentSimOptions {
                n_out: 1,
                ..Default::default()
            },
            None
        )
        .is_err());
    }
}
