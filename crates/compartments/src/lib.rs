//! Generalized multi-compartment propagation models.
//!
//! The paper's model is a fixed S/I/R-per-degree-class system, and the
//! original `rumor-core` types hardwire that shape: `NetworkState` owns
//! exactly three bands, `RumorModel` assumes a `3n` flat layout, and the
//! costate sweep knows the two control channels by name. None of the
//! scenario extensions named by ROADMAP (competing rumors, tie-strength
//! variants, hesitation compartments) fit in that mold.
//!
//! This crate is the generalization seam:
//!
//! * [`layout::CompartmentLayout`] — the flat-state contract. A model
//!   declares `n_compartments` bands over `n_classes` degree classes and
//!   the layout packs them compartment-major
//!   (`[C0_0..C0_{n-1}, C1_0.., …]`), exactly the convention the
//!   existing `[S.., I.., R..]` layout is a special case of.
//! * [`model::CompartmentModel`] — the model trait: compartment count,
//!   control channels, RHS coupling terms, adjoint system, stationary
//!   controls, and cost integrands are all model-defined. Kernels stay
//!   on the hot path: implementations receive an optional
//!   [`rumor_par::InnerPool`] and are expected to route reductions
//!   through the partitioned `rumor_core::kernels` so results stay
//!   bit-identical at every thread count.
//! * [`model::CompartmentOde`] / [`model::CompartmentAdjoint`] — the
//!   adapters that bind a model plus a [`schedule::MultiControlSchedule`]
//!   into [`rumor_ode::system::OdeSystem`]s for the forward and backward
//!   passes.
//! * [`paper::PaperSir`] — the existing paper model ported onto the
//!   abstraction, pinned bit-identical against
//!   [`rumor_core::model::RumorModel`] and the `rumor-control` costate
//!   (see `tests/paper_identity.rs` here and
//!   `crates/control/tests/compartment_identity.rs`).
//! * [`simulate`] — grid simulation of any compartment model, the
//!   counterpart of [`rumor_core::simulate::simulate_grid`].
//!
//! The concrete scenario models (competing two-rumor, degree-dependent
//! tie strength) live in `rumor-models`; the multi-control FBSM that
//! optimizes over `n_controls ≥ 1` channels lives in `rumor-control`.

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod layout;
pub mod model;
pub mod paper;
pub mod schedule;
pub mod simulate;

pub use rumor_core::CoreError;

/// Convenient result alias used across the crate (layout and model
/// validation reuse the core error taxonomy).
pub type Result<T> = std::result::Result<T, CoreError>;
