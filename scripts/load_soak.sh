#!/usr/bin/env bash
# Load/soak gate for the serving layer.
#
# Boots a release-build `rumor serve` on the epoll backend, then drives
# it with `loadgen`: a wall of concurrent keep-alive status pollers plus
# streaming consumers following one long throttled campaign. The gate
# fails on any non-shed 5xx, a blown p99 latency bound, or server fd
# growth across the soak (leaked connection slots).
#
# Usage: scripts/load_soak.sh [short|long]
#   short  PR-sized smoke: ~12 s soak           (default)
#   long   nightly soak:   60 s
#
# Overrides: LOADSOAK_CONNECTIONS, LOADSOAK_STREAMS, LOADSOAK_P99_MS.
set -euo pipefail

MODE="${1:-short}"
case "$MODE" in
short) DURATION=12 ;;
long) DURATION=60 ;;
*)
    echo "usage: $0 [short|long]" >&2
    exit 2
    ;;
esac
CONNECTIONS="${LOADSOAK_CONNECTIONS:-1000}"
STREAMS="${LOADSOAK_STREAMS:-4}"
P99_MS="${LOADSOAK_P99_MS:-750}"

cd "$(dirname "$0")/.."

# The poller fleet needs ~1k fds on each side of the socket; lift the
# soft nofile limit as far as the environment allows.
ulimit -n 16384 2>/dev/null || ulimit -n 4096 2>/dev/null || true

cargo build --release -q -p rumor-cli -p rumor-bench --bins

JOBS_DIR="$(mktemp -d)"
SERVER_LOG="$(mktemp)"
cleanup() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$JOBS_DIR" "$SERVER_LOG"
}

target/release/rumor serve \
    --addr 127.0.0.1:0 \
    --io-backend epoll \
    --max-connections 2048 \
    --jobs-dir "$JOBS_DIR" \
    >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap cleanup EXIT

ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's#.*listening on http://\([^ ]*\).*#\1#p' "$SERVER_LOG" | head -n 1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "load_soak: server did not print its listening banner" >&2
    cat "$SERVER_LOG" >&2
    exit 1
fi
echo "load_soak: mode=$MODE server=$ADDR pid=$SERVER_PID"

LOADGEN_STATUS=0
target/release/loadgen \
    --addr "$ADDR" \
    --connections "$CONNECTIONS" \
    --streams "$STREAMS" \
    --duration-secs "$DURATION" \
    --p99-ms "$P99_MS" \
    --server-pid "$SERVER_PID" || LOADGEN_STATUS=$?

# The soak ends with a graceful drain: SIGTERM must stop the server
# cleanly even right after a thousand clients hung up.
kill -TERM "$SERVER_PID"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
trap - EXIT
rm -rf "$JOBS_DIR"

if [ "$SERVER_STATUS" -ne 0 ]; then
    echo "load_soak: server exited $SERVER_STATUS after SIGTERM" >&2
    cat "$SERVER_LOG" >&2
    rm -f "$SERVER_LOG"
    exit 1
fi
rm -f "$SERVER_LOG"

exit "$LOADGEN_STATUS"
