#!/usr/bin/env bash
# Fetch-or-synthesize the Digg2009 degree sequence.
#
# The paper evaluates on the Digg2009 friendship network (71,367 voters,
# 848 distinct degree classes). The original distribution link is dead
# and the data is not redistributable, so this helper:
#
#   1. tries any mirror URLs passed via DIGG_URLS (space-separated) or
#      a local file passed via DIGG_LOCAL_EDGELIST — in which case the
#      degree sequence is extracted from the real edge list;
#   2. otherwise falls back to the calibrated deterministic synthesis
#      (`degseq`), which reproduces the published profile — node count,
#      degree span, mean degree, and the 848 distinct classes — with
#      identical bytes on every machine.
#
# Usage: scripts/fetch_digg.sh [OUT_FILE]
# Default output: results/digg_degrees.txt
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-results/digg_degrees.txt}"
mkdir -p "$(dirname "$out")"

degrees_from_edgelist() {
  # Degree per node id from a "u v" edge list (comments ignored),
  # written one degree per line, sorted by node id.
  awk '!/^[[:space:]]*#/ && NF >= 2 { d[$1]++; d[$2]++ }
       END { for (u in d) print d[u] }' "$1" | sort -n
}

if [ -n "${DIGG_LOCAL_EDGELIST:-}" ] && [ -f "${DIGG_LOCAL_EDGELIST}" ]; then
  echo "extracting degree sequence from local edge list ${DIGG_LOCAL_EDGELIST}"
  degrees_from_edgelist "${DIGG_LOCAL_EDGELIST}" > "$out"
  echo "wrote $(wc -l < "$out") degrees to $out"
  exit 0
fi

for url in ${DIGG_URLS:-}; do
  echo "trying $url"
  tmp="$(mktemp)"
  if curl --fail --silent --show-error --location --max-time 120 -o "$tmp" "$url"; then
    degrees_from_edgelist "$tmp" > "$out"
    rm -f "$tmp"
    echo "wrote $(wc -l < "$out") degrees to $out (fetched from $url)"
    exit 0
  fi
  rm -f "$tmp"
  echo "fetch failed, trying next source"
done

echo "no real dataset available; synthesizing the calibrated equivalent (deterministic)"
cargo run --release -q -p rumor-bench --bin degseq -- --scale full --out "$out"
