#!/usr/bin/env bash
# Dependency-hygiene gate: the workspace is std-only by policy — every
# crate in the normal (non-dev) dependency graph must be either a
# workspace crate or a vendored path dependency under vendor/.
#
# `cargo tree` prints path dependencies with their filesystem location
# in parentheses (e.g. `rumor-core v0.1.0 (/repo/crates/core)`) and
# registry crates without one (e.g. `rand v0.8.5`), so any line lacking
# a path is an external crate that slipped into the build graph.
set -euo pipefail
cd "$(dirname "$0")/.."

external=$(cargo tree --workspace --edges normal --prefix none \
  | sed 's/ (\*)$//' \
  | sort -u \
  | grep -v ' (' \
  | grep -v '^$' || true)

if [ -n "$external" ]; then
  echo "dependency hygiene violation: registry (non-path) crates in the normal dependency graph:" >&2
  echo "$external" >&2
  echo "workspace crates must stay std-only; vendor a path crate or drop the dependency" >&2
  exit 1
fi
echo "dependency hygiene OK: every normal dependency is a workspace or vendored path crate"
