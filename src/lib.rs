//! # rumor-repro
//!
//! A full reproduction of *“Modeling Propagation Dynamics and Developing
//! Optimized Countermeasures for Rumor Spreading in Online Social
//! Networks”* (He, Cai, Wang — ICDCS 2015) as a Rust workspace.
//!
//! This facade crate re-exports every subsystem so downstream users can
//! depend on a single crate:
//!
//! | Re-export | Subsystem |
//! |---|---|
//! | [`core`] | the heterogeneous SIR rumor model, threshold `r0`, equilibria, stability |
//! | [`control`] | Pontryagin-optimized countermeasures (FBSM) and the heuristic baseline |
//! | [`net`] | CSR graphs, scale-free generators, degree classes, metrics |
//! | [`datasets`] | the calibrated Digg2009-equivalent dataset and edge-list I/O |
//! | [`sim`] | agent-based Monte Carlo validation (synchronous ABM + Gillespie SSA) |
//! | [`models`] | baselines: homogeneous SIR, Daley–Kendall, Maki–Thompson, SIS |
//! | [`ode`] | ODE integration substrate (Euler/Heun/RK4/DOPRI5/implicit Euler) |
//! | [`numerics`] | dense linear algebra, eigenvalues, roots, quadrature, interpolation |
//! | [`par`] | std-only parallel executor with deterministic ordered collection |
//! | [`serve`] | std-only HTTP/1.1 JSON service with admission control and result caching |
//!
//! ## Quickstart
//!
//! ```
//! use rumor_repro::core::control::ConstantControl;
//! use rumor_repro::core::equilibrium::r0;
//! use rumor_repro::core::functions::AcceptanceRate;
//! use rumor_repro::core::params::ModelParams;
//! use rumor_repro::core::simulate::{simulate, SimulateOptions};
//! use rumor_repro::core::state::NetworkState;
//! use rumor_repro::net::degree::DegreeClasses;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small heterogeneous network: degree classes from a degree sequence.
//! let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6])?;
//! let params = ModelParams::builder(classes)
//!     .alpha(0.01)
//!     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
//!     .build()?;
//!
//! // Is the rumor subcritical under countermeasures (ε1, ε2) = (0.2, 0.05)?
//! let threshold = r0(&params, 0.2, 0.05)?;
//!
//! // Simulate the propagation dynamics.
//! let initial = NetworkState::initial_uniform(params.n_classes(), 0.1)?;
//! let trajectory = simulate(
//!     &params,
//!     ConstantControl::new(0.2, 0.05),
//!     &initial,
//!     100.0,
//!     &SimulateOptions::default(),
//! )?;
//! if threshold < 1.0 {
//!     assert!(trajectory.last_state().total_infected() < 0.05);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `rumor-bench` crate for the harness that regenerates every table and
//! figure of the paper.

pub use rumor_control as control;
pub use rumor_core as core;
pub use rumor_datasets as datasets;
pub use rumor_models as models;
pub use rumor_net as net;
pub use rumor_numerics as numerics;
pub use rumor_ode as ode;
pub use rumor_par as par;
pub use rumor_serve as serve;
pub use rumor_sim as sim;

/// A convenience prelude importing the most commonly used items.
pub mod prelude {
    pub use rumor_control::fbsm::{optimize, FbsmOptions, SweepResult};
    pub use rumor_control::schedule::PiecewiseControl;
    pub use rumor_control::watchdog::{optimize_guarded, GuardedSweep, WatchdogOptions};
    pub use rumor_control::{ControlBounds, CostWeights};
    pub use rumor_core::control::{ConstantControl, ControlSchedule};
    pub use rumor_core::equilibrium::{
        calibrate_acceptance, positive_equilibrium, r0, zero_equilibrium,
    };
    pub use rumor_core::functions::{AcceptanceRate, Infectivity};
    pub use rumor_core::model::{MassConvention, RumorModel};
    pub use rumor_core::params::ModelParams;
    pub use rumor_core::simulate::{simulate, simulate_grid, SimulateOptions, Trajectory};
    pub use rumor_core::state::NetworkState;
    pub use rumor_datasets::digg::{DiggConfig, DiggDataset};
    pub use rumor_net::degree::DegreeClasses;
    pub use rumor_net::graph::{EdgeKind, Graph};
    pub use rumor_ode::fault::{FaultSchedule, FaultyRhs};
    pub use rumor_ode::recovery::{Guarded, GuardedRun, RecoveryPolicy, RecoveryReport};
    pub use rumor_par::{par_map, par_map_indexed, resolve_threads, set_thread_override};
    pub use rumor_sim::ensemble::{
        run_ensemble_isolated, run_ensemble_isolated_threads, IsolatedEnsemble, IsolationPolicy,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_items_resolve() {
        use crate::prelude::*;
        let classes = DegreeClasses::from_degrees(&[1, 2]).unwrap();
        let params = ModelParams::builder(classes).alpha(0.01).build().unwrap();
        assert_eq!(params.n_classes(), 2);
        let _ = ConstantControl::new(0.1, 0.1);
        let _ = CostWeights::paper_default();
    }
}
