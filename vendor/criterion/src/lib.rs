//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`]/
//! [`criterion_main!`] macros — backed by a simple median-of-samples
//! wall-clock timer instead of criterion's statistical machinery.
//! Good enough to keep `cargo bench` compiling and producing honest
//! relative numbers without network access to crates.io.

use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples of one call each.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call outside the timed region.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:50} no samples");
        return;
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    let fmt = |s: f64| {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            format!("{:.3} µs", s * 1e6)
        } else {
            format!("{:.1} ns", s * 1e9)
        }
    };
    println!(
        "{name:50} median {:>12}   [{} .. {}]",
        fmt(median),
        fmt(lo),
        fmt(hi)
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<O>(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<O>(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Overrides the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| black_box(1))
        });
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(2)));
        group.finish();
    }
}
