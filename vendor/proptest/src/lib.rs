//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range and tuple strategies,
//! `collection::vec`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` assertion macros. Failing inputs are reported with
//! their generated values but are **not shrunk** — acceptable for a CI
//! gate, and the honest trade-off for an offline, dependency-free build.
//!
//! Case generation is fully deterministic: the RNG seed is derived from
//! the test function's name, so failures reproduce run-to-run.

use rand::rngs::StdRng;
use rand::Rng;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// A failed or rejected test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the payload is the formatted message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given reason (upstream constructor).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection (upstream constructor; the reason is dropped).
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Result type threaded through generated test-case bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification: an exact size or a half-open range
    /// (upstream's `SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Vectors of values from `element`, with a length drawn from `len`
    /// (an exact `usize` or a `Range<usize>` with exclusive upper bound,
    /// as upstream).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.end <= self.len.start + 1 {
                self.len.start
            } else {
                rng.gen_range(self.len.start..self.len.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Run-loop configuration and the case driver behind [`crate::proptest!`].

    use super::{Strategy, TestCaseError, TestCaseResult, TestRng};
    use rand::SeedableRng;

    /// How many cases each property runs, and how many rejections
    /// (`prop_assume!`) are tolerated before giving up.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections across the run.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// FNV-1a, used to derive a per-test deterministic seed.
    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `config.cases` cases of `body` over values from `strategy`.
    /// Panics (failing the enclosing `#[test]`) on the first failed case.
    pub fn run_cases<S: Strategy>(
        test_name: &str,
        config: &ProptestConfig,
        strategy: &S,
        body: impl Fn(S::Value) -> TestCaseResult,
    ) {
        let mut rng = TestRng::seed_from_u64(fnv1a(test_name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            let display = format!("{value:?}");
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "property {test_name}: too many prop_assume! rejections \
                             ({rejected}) before reaching {} cases",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property {test_name} failed after {passed} passing case(s)\n\
                         input: {display}\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) so the driver can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (skips it without counting as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the upstream surface this
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn prop(x in 0.0..1.0_f64, v in proptest::collection::vec(0usize..4, 1..9)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal recursive expander for [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |__vals| -> $crate::TestCaseResult {
                    let ($($pat,)+) = __vals;
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 0.1..0.9_f64, v in crate::collection::vec(0usize..5, 1..10)) {
            prop_assert!((0.1..0.9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_destructure((a, b) in (0u64..10, 0.0..1.0_f64), c in 1usize..4) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(c.min(3), c);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn failing_property_panics_with_input() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                "always_fails",
                &ProptestConfig::with_cases(4),
                &(0usize..10),
                |_n| -> crate::TestCaseResult {
                    crate::prop_assert!(false, "doomed");
                    Ok(())
                },
            );
        });
        let msg = *result
            .expect_err("must panic")
            .downcast::<String>()
            .expect("string");
        assert!(
            msg.contains("always_fails") && msg.contains("input:"),
            "{msg}"
        );
    }

    #[test]
    fn seeds_are_stable_across_runs() {
        let mut first = Vec::new();
        for round in 0..2 {
            let collected = std::cell::RefCell::new(Vec::new());
            crate::test_runner::run_cases(
                "seed_probe",
                &ProptestConfig::with_cases(8),
                &(0u64..1_000_000),
                |n| {
                    collected.borrow_mut().push(n);
                    Ok(())
                },
            );
            let seq = collected.into_inner();
            if round == 0 {
                first = seq;
            } else {
                assert_eq!(first, seq);
            }
        }
    }
}
