//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator
//! behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 —
//! not the upstream ChaCha12, so seeded streams differ from real `rand`,
//! but statistical quality is more than adequate for the simulators and
//! tests in this repository.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Returns a uniform `f64` in `[0, 1)` from one 64-bit draw.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits → the standard 2^-53 mantissa construction.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up onto the exclusive bound.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // bias at astronomical spans is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $ty
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

/// The user-facing sampling interface (auto-implemented for every
/// [`RngCore`], mirroring rand 0.8).
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (`0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices (rand 0.8's `SliceRandom` subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single_usize(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (0..self.len()).sample_single_usize(rng);
                self.get(idx)
            }
        }
    }

    /// Object-safe-friendly uniform index sampling used by `shuffle` and
    /// `choose` (the generic [`super::SampleRange`] path requires
    /// `Self: Sized` on the rng).
    trait SampleIdx {
        fn sample_single_usize<R: RngCore + ?Sized>(self, rng: &mut R) -> usize;
    }

    impl SampleIdx for std::ops::Range<usize> {
        fn sample_single_usize<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
            let span = (self.end - self.start) as u64;
            let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
            self.start + hi as usize
        }
    }

    impl SampleIdx for std::ops::RangeInclusive<usize> {
        fn sample_single_usize<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
            let span = (*self.end() - *self.start()) as u64 + 1;
            let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
            *self.start() + hi as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<usize> = (0..16).map(|_| c.gen_range(0usize..1000)).collect();
        assert!(
            first.iter().any(|&v| v != first[0]),
            "stream is not constant"
        );
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn integer_ranges_cover_support_uniformly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10 000; a ±10% corridor is ~30σ.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
        assert!([1, 2, 3].choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
