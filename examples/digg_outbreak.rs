//! Digg-scale outbreak analysis: synthesize the Digg2009-equivalent
//! network, calibrate the acceptance rate to the paper's thresholds, and
//! contrast the extinction (r0 < 1) and persistence (r0 > 1) regimes.
//!
//! ```sh
//! cargo run --release --example digg_outbreak
//! ```

use rumor_repro::core::equilibrium;
use rumor_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced-scale Digg-like network (fast); swap in DiggConfig::default()
    // for the full 71,367-node dataset.
    let dataset = DiggDataset::synthesize(DiggConfig::small())?;
    println!("{}", dataset.summary());
    println!(
        "calibrated power-law exponent gamma = {:.4}\n",
        dataset.gamma()
    );

    let base = ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()?;

    // --- Extinction regime (paper Fig. 2): r0 = 0.7220 under (0.2, 0.05).
    let (eps1, eps2) = (0.2, 0.05);
    let (params, factor) = calibrate_acceptance(&base, 0.7220, eps1, eps2)?;
    println!(
        "extinction regime: lambda scaled by {factor:.3e} so that r0 = {:.4}",
        r0(&params, eps1, eps2)?
    );
    let e0 = zero_equilibrium(&params, eps1, eps2)?;
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.1)?;
    let traj = simulate(
        &params,
        ConstantControl::new(eps1, eps2),
        &initial,
        600.0,
        &SimulateOptions::default(),
    )?;
    let dist = traj.dist_series(&e0)?;
    println!(
        "  Dist0(0) = {:.4} -> Dist0(600) = {:.2e} (convergence to E0)",
        dist[0],
        dist.last().unwrap()
    );

    // --- Persistence regime (paper Fig. 3): r0 = 2.1661. The paper prints
    // ε2 = 0.0001, but α/ε2 = 20 forces I+ = 20·(1−S+) per class, outside
    // the density simplex for any acceptance rate — its own Fig. 3 (I ≤
    // 0.45) cannot come from those values. We use ε2 = 0.004, which keeps
    // r0 = 2.1661 after calibration and a valid endemic equilibrium
    // (EXPERIMENTS.md documents the substitution).
    let base2 = ModelParams::builder(dataset.classes().clone())
        .alpha(0.002)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()?;
    let (eps1, eps2) = (0.002, 0.004);
    let (params, factor) = calibrate_acceptance(&base2, 2.1661, eps1, eps2)?;
    println!(
        "\npersistence regime: lambda scaled by {factor:.3e} so that r0 = {:.4}",
        r0(&params, eps1, eps2)?
    );
    let eplus = equilibrium::positive_equilibrium(&params, eps1, eps2)?;
    println!(
        "  endemic equilibrium: total infected density {:.4} across {} classes",
        eplus.total_infected(),
        params.n_classes()
    );
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.1)?;
    let traj = simulate(
        &params,
        ConstantControl::new(eps1, eps2),
        &initial,
        3000.0,
        &SimulateOptions {
            n_out: 301,
            ..Default::default()
        },
    )?;
    let dist = traj.dist_series(&eplus)?;
    println!(
        "  Dist+(0) = {:.4} -> Dist+(3000) = {:.2e} (convergence to E+)",
        dist[0],
        dist.last().unwrap()
    );
    println!(
        "  final infected density stays endemic: {:.4}",
        traj.last_state().total_infected()
    );
    Ok(())
}
