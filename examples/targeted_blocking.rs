//! Targeted countermeasures: compare budget allocations across degree
//! classes — uniform, hub-only ("rumor ends with sage"), and the
//! r0-optimal Lagrange profile — at the *same* population budget.
//!
//! ```sh
//! cargo run --release --example targeted_blocking
//! ```

use rumor_repro::core::targeted::{targeted_r0, ClassRates, TargetedModel};
use rumor_repro::ode::integrator::Adaptive;
use rumor_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DiggDataset::synthesize(DiggConfig::small())?;
    let params = ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
        .infectivity(Infectivity::paper_default())
        .build()?;
    println!(
        "digg-like network: {} classes, <k> = {:.1}",
        params.n_classes(),
        params.mean_degree()
    );

    let budget = 0.08; // population-weighted rate budget per channel
    let policies: Vec<(&str, ClassRates)> = vec![
        (
            "uniform",
            ClassRates::uniform(params.n_classes(), budget, budget)?,
        ),
        (
            "hub-only (top 20%)",
            ClassRates::hub_targeted(params.classes(), (0.016, 0.016), (0.064, 0.064), 0.2)?,
        ),
        (
            "r0-optimal",
            ClassRates::r0_optimal(&params, budget, budget)?,
        ),
    ];

    println!("\nall policies spend the same population budget ({budget} per channel):\n");
    println!("{:<20} {:>10} {:>16}", "policy", "r0", "final infection");
    let y0 = NetworkState::initial_uniform(params.n_classes(), 0.1)?.to_flat();
    for (name, rates) in policies {
        let (b1, b2) = rates.population_budget(params.classes())?;
        assert!((b1 - budget).abs() < 1e-9 && (b2 - budget).abs() < 1e-9);
        let threshold = targeted_r0(&params, &rates)?;
        let model = TargetedModel::new(&params, rates)?;
        let sol = Adaptive::new().integrate(&model, 0.0, &y0, 150.0)?;
        let st = NetworkState::from_flat(sol.last_state())?;
        let final_i: f64 = st
            .i()
            .iter()
            .zip(params.classes().probabilities())
            .map(|(i, p)| i * p)
            .sum();
        println!("{name:<20} {threshold:>10.4} {final_i:>16.6}");
    }

    println!("\ntakeaway: in the mean-field model every class feeds the same coupling");
    println!("theta, and each threshold term scales as 1/eps^2 — so concentrating the");
    println!("entire budget on hubs *raises* r0 (the periphery keeps the rumor alive),");
    println!("while the smooth optimal profile eps_k ~ (lambda_k phi_k / P_k)^(1/3)");
    println!("favours hubs without starving anyone.");
    Ok(())
}
