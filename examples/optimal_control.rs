//! Optimized countermeasures: run the Pontryagin forward–backward sweep
//! on a Digg-like network and compare the optimized schedule against the
//! myopic heuristic at equal effectiveness (paper Fig. 4).
//!
//! ```sh
//! cargo run --release --example optimal_control
//! ```

use rumor_repro::control::{fbsm, heuristic};
use rumor_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DiggDataset::synthesize(DiggConfig {
        nodes: 2_000,
        k_max: 200,
        ..DiggConfig::small()
    })?;
    // An aggressive rumor: supercritical and fast within the horizon
    // (uncontrolled, the mean infected density saturates by t ≈ 40).
    let params = ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.15 })
        .infectivity(Infectivity::paper_default())
        .build()?;

    let tf = 100.0;
    let bounds = ControlBounds::new(0.7, 0.7)?;
    let weights = CostWeights::paper_default(); // c1 = 5, c2 = 10
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.05)?;

    println!("running forward-backward sweep (tf = {tf}, c1 = 5, c2 = 10)...");
    let result = fbsm::optimize(
        &params,
        &initial,
        tf,
        &bounds,
        &weights,
        &FbsmOptions {
            n_nodes: 101,
            max_iterations: 300,
            relaxation: 0.3,
            tolerance: 1e-4,
            ..Default::default()
        },
    )?;
    println!(
        "sweep finished after {} iterations (converged: {}); objective J = {:.4}\n",
        result.iterations,
        result.converged,
        result.cost.total()
    );

    println!("optimized schedule (Fig. 4a shape: truth-spreading dominates the");
    println!("early/middle phase, blocking ramps up near the deadline):");
    println!("   t      eps1(t)   eps2(t)");
    for idx in (0..result.control.grid().len()).step_by(10) {
        println!(
            "{:6.1}   {:7.4}   {:7.4}",
            result.control.grid()[idx],
            result.control.eps1_values()[idx],
            result.control.eps2_values()[idx]
        );
    }
    // The qualitative Fig. 4a checks.
    let e1 = result.control.eps1_values();
    let e2 = result.control.eps2_values();
    let mid = e1.len() / 2;
    assert!(
        e1[mid] > e2[mid],
        "truth-spreading should dominate mid-horizon"
    );
    assert!(
        e2[e2.len() - 1] > e1[e1.len() - 1],
        "blocking should dominate at the deadline"
    );

    // r0 under the running-average (cumulative effective) countermeasure
    // level (Fig. 4b shape: above 1 early — the rumor propagates mildly —
    // then pushed below 1 as the countermeasures accumulate).
    println!("\nr0 under the cumulative effective countermeasures (Fig. 4b):");
    let grid = result.control.grid().to_vec();
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    for (idx, w) in grid.windows(2).enumerate() {
        let dt = w[1] - w[0];
        acc1 += 0.5 * dt * (e1[idx] + e1[idx + 1]);
        acc2 += 0.5 * dt * (e2[idx] + e2[idx + 1]);
        if (idx + 1) % 10 == 0 {
            let t = w[1];
            let avg1 = (acc1 / t).max(1e-6);
            let avg2 = (acc2 / t).max(1e-6);
            println!("  t = {t:5.1}: r0 = {:9.3}", r0(&params, avg1, avg2)?);
        }
    }

    // Heuristic comparison at equal terminal infection (Fig. 4c).
    let target = result.trajectory.last_state().total_infected().max(1e-6);
    println!("\ntuning myopic heuristic to the same terminal infection ({target:.3e})...");
    let heur = heuristic::tune(&params, &initial, tf, &bounds, &weights, target, 101)?;
    println!(
        "cost comparison at equal effectiveness:\n  optimized: {:.4}\n  heuristic: {:.4}",
        result.cost.running(),
        heur.cost.running()
    );
    assert!(
        result.cost.running() < heur.cost.running(),
        "optimized countermeasures must be cheaper (Fig. 4c)"
    );
    println!("the optimized countermeasures are cheaper, as in Fig. 4(c)");
    Ok(())
}
