//! Model zoo: contrast the paper's heterogeneous SIR against the
//! homogeneous ablation and the classical rumor models (Daley–Kendall,
//! Maki–Thompson) on comparable scenarios.
//!
//! ```sh
//! cargo run --example model_zoo
//! ```

use rumor_repro::models::dk::DaleyKendall;
use rumor_repro::models::homogeneous::HomogeneousSir;
use rumor_repro::models::mt::MakiThompson;
use rumor_repro::ode::integrator::Adaptive;
use rumor_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Shared scenario: 10% initial spreaders.
    let tf = 60.0;

    // 1. Heterogeneous SIR on a skewed degree distribution.
    let degrees: Vec<usize> = (0..300).map(|i| if i % 30 == 0 { 40 } else { 3 }).collect();
    let classes = DegreeClasses::from_degrees(&degrees)?;
    let het = ModelParams::builder(classes)
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
        .infectivity(Infectivity::paper_default())
        .build()?;
    let initial = NetworkState::initial_uniform(het.n_classes(), 0.1)?;
    let (eps1, eps2) = (0.05, 0.05);
    let het_traj = simulate(
        &het,
        ConstantControl::new(eps1, eps2),
        &initial,
        tf,
        &SimulateOptions::default(),
    )?;
    println!(
        "heterogeneous SIR: r0 = {:.3}, final infected = {:.4}",
        r0(&het, eps1, eps2)?,
        het_traj.last_state().total_infected() / het.n_classes() as f64
    );

    // 2. Homogeneous ablation with a degree-blind contact rate matched
    //    to the heterogeneous coupling strength.
    let beta = het.lambda_phi_sum() / het.mean_degree();
    let hom = HomogeneousSir::new(het.alpha(), beta, ConstantControl::new(eps1, eps2));
    let sol = Adaptive::new().integrate(&hom, 0.0, &[0.9, 0.1, 0.0], tf)?;
    println!(
        "homogeneous SIR:   r0 = {:.3}, final infected = {:.4}",
        hom.r0(eps1, eps2),
        sol.last_state()[1]
    );
    println!("  (degree-blind mixing changes the predicted outcome — the paper's motivation)");

    // 3. Classical rumor models: spreaders always terminate, leaving a
    //    final fraction of never-informed ignorants.
    let dk = DaleyKendall::new(1.0, 1.0, 1.0);
    let dk_sol = Adaptive::new().integrate(&dk, 0.0, &[0.99, 0.01, 0.0], 500.0)?;
    println!(
        "daley-kendall:     final ignorants = {:.4} (classic ~0.203), spreaders = {:.2e}",
        dk_sol.last_state()[0],
        dk_sol.last_state()[1]
    );

    let mt = MakiThompson::new(1.0, 1.0, 1.0);
    let mt_sol = Adaptive::new().integrate(&mt, 0.0, &[0.99, 0.01, 0.0], 500.0)?;
    println!(
        "maki-thompson:     final ignorants = {:.4} (stifles less, spreads further)",
        mt_sol.last_state()[0]
    );

    println!("\ntakeaway: classical models have no countermeasure channels and no");
    println!("heterogeneity; the paper's model adds both, with r0 as the control knob.");
    Ok(())
}
