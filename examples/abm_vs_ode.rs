//! Mean-field validation: compare the heterogeneous SIR ODE against the
//! microscopic agent-based process it approximates, on a scale-free
//! graph.
//!
//! ```sh
//! cargo run --release --example abm_vs_ode
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_repro::net::generators::barabasi_albert;
use rumor_repro::prelude::*;
use rumor_repro::sim::abm::AbmConfig;
use rumor_repro::sim::ensemble::{max_deviation, mean_field_reference, run_ensemble, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2009);
    let graph = barabasi_albert(3_000, 3, &mut rng)?;
    let classes = DegreeClasses::from_graph(&graph)?;
    println!(
        "barabasi-albert graph: {} nodes, {} edges, <k> = {:.2}",
        graph.node_count(),
        graph.edge_count(),
        graph.mean_degree()
    );

    let params = ModelParams::builder(classes)
        .alpha(0.0) // the microscopic process carries no demography
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()?;

    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 40.0,
        eps1: 0.01,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 20,
    };

    for (name, sim) in [
        ("synchronous ABM", Simulator::Synchronous),
        ("gillespie SSA", Simulator::Gillespie),
    ] {
        let ens = run_ensemble(&graph, &params, &cfg, sim, 10, 7)?;
        let mf = mean_field_reference(&params, &cfg, &ens.times)?;
        let dev = max_deviation(&ens, &mf)?;
        println!("\n{name} (10 runs) vs mean-field ODE:");
        println!("   t     ABM mean   ABM std    ODE");
        for idx in (0..ens.times.len()).step_by(4) {
            println!(
                "{:5.1}   {:8.5}  {:8.5}  {:8.5}",
                ens.times[idx], ens.i_mean[idx], ens.i_std[idx], mf[idx]
            );
        }
        println!("max |ABM − ODE| deviation: {dev:.4}");
    }
    println!("\nthe mean field tracks the microscopic process; transient gaps");
    println!("reflect degree correlations the annealed approximation ignores.");
    Ok(())
}
