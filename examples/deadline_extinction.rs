//! Deadline-constrained countermeasures: the paper's literal problem —
//! "ensure a rumor becomes extinct at the end of an expected time period
//! with lowest cost" — solved by escalating the terminal penalty of the
//! Pontryagin sweep until the extinction target is met.
//!
//! ```sh
//! cargo run --release --example deadline_extinction
//! ```

use rumor_repro::control::fbsm::{optimize_to_target, FbsmOptions};
use rumor_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DiggDataset::synthesize(DiggConfig {
        nodes: 2_000,
        k_max: 200,
        ..DiggConfig::small()
    })?;
    let params = ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.15 })
        .infectivity(Infectivity::paper_default())
        .build()?;
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.05)?;
    let bounds = ControlBounds::new(0.7, 0.7)?;
    let weights = CostWeights::paper_default();
    let opts = FbsmOptions {
        n_nodes: 61,
        max_iterations: 200,
        tolerance: 1e-4,
        relaxation: 0.3,
        ..Default::default()
    };

    // Growing deadlines, same extinction target: the rumor must be down
    // to a mean infected density of 1e-4 per class by tf.
    let target = 1e-4 * params.n_classes() as f64;
    println!(
        "extinction target: total infected <= {target:.4} ({} classes x 1e-4)\n",
        params.n_classes()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "tf", "terminal I", "running cost", "weight"
    );
    for tf in [20.0, 40.0, 60.0, 80.0] {
        match optimize_to_target(&params, &initial, tf, &bounds, &weights, target, &opts) {
            Ok((result, weight)) => {
                println!(
                    "{tf:>6} {:>14.6} {:>14.4} {:>12.1}",
                    result.trajectory.last_state().total_infected(),
                    result.cost.running(),
                    weight
                );
            }
            Err(e) => println!("{tf:>6} unreachable: {e}"),
        }
    }
    println!("\nacting early is cheap: over short horizons the rumor has no room to");
    println!("grow and a light touch meets the target. Longer horizons let the rumor");
    println!("expand before the deadline bites, so the sweep spends far more (and");
    println!("escalates the terminal penalty) to claw the infection back down.");
    Ok(())
}
