//! Quickstart: build a small heterogeneous network, check the
//! propagation threshold, and simulate the rumor dynamics under fixed
//! countermeasures.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rumor_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy social network: mostly low-degree users plus a few hubs.
    let degrees: Vec<usize> = (0..200)
        .map(|i| match i % 20 {
            0 => 50,
            1..=3 => 10,
            _ => 2,
        })
        .collect();
    let classes = DegreeClasses::from_degrees(&degrees)?;
    println!(
        "network: {} degree classes, <k> = {:.2}, k in [{}, {}]",
        classes.len(),
        classes.mean_degree(),
        classes.min_degree(),
        classes.max_degree()
    );

    let params = ModelParams::builder(classes)
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.01 })
        .infectivity(Infectivity::paper_default())
        .build()?;

    // Countermeasures: spread truth at ε1 = 0.2, block rumors at ε2 = 0.05.
    let (eps1, eps2) = (0.2, 0.05);
    let threshold = r0(&params, eps1, eps2)?;
    println!("propagation threshold r0 = {threshold:.4}");
    println!(
        "theorem 5 predicts the rumor will {}",
        if threshold <= 1.0 {
            "become extinct"
        } else {
            "persist"
        }
    );

    // Simulate from 10% initially infected in every class.
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.1)?;
    let trajectory = simulate(
        &params,
        ConstantControl::new(eps1, eps2),
        &initial,
        150.0,
        &SimulateOptions::default(),
    )?;

    println!("\n  t      S_total   I_total   R_total");
    for idx in (0..trajectory.len()).step_by(25) {
        let st = &trajectory.states()[idx];
        println!(
            "{:6.1}   {:8.5}  {:8.5}  {:8.5}",
            trajectory.times()[idx],
            st.total_susceptible() / params.n_classes() as f64,
            st.total_infected() / params.n_classes() as f64,
            st.total_recovered() / params.n_classes() as f64,
        );
    }

    let final_infected = trajectory.last_state().total_infected();
    println!("\nfinal total infected density: {final_infected:.2e}");
    if threshold <= 1.0 {
        assert!(final_infected < 0.05, "subcritical rumor must die out");
        println!("consistent with the r0 < 1 extinction prediction");
    }
    Ok(())
}
